"""Conformance report: structured divergence diagnostics.

Differential, metamorphic and fuzzing checks all fold their findings
into one :class:`ConformanceReport` built from the same
:class:`~repro.lint.diagnostics.Diagnostic` records the lint subsystem
uses, and the JSON rendering rides the shared ``repro-report`` envelope
(:func:`repro.lint.reporters.json_document`) — so CI consumes ``repro
conformance --format json`` and ``repro lint --format json`` with one
parser.

Check identifiers:

======== ==============================================================
CONF001  oracle vs production tree structure diverged
CONF002  oracle vs production predictions diverged
CONF003  oracle vs production leaf (class) assignment diverged
CONF004  compiled vs interpreted inference diverged
CONF005  JSON round trip altered the tree or its predictions
CONF006  serial vs parallel cross-validation diverged
CONF007  static verification failed or certified bounds were escaped
META001  row-permutation invariance violated
META002  feature-permutation invariance violated
META003  affine target scaling did not scale leaf models
META004  duplicated-dataset invariance violated
META005  min-leaf-population monotonicity violated
FUZZ001  loader raised an untyped exception (crash) on fuzzed input
FAST001  fastsim calibration is stale (fingerprint mismatch)
FAST002  fastsim per-section CPI error exceeded the p95 tolerance
FAST003  fastsim per-workload mean CPI error exceeded tolerance
FAST004  fastsim dataset violated Table I metric invariants
FAST005  fastsim fast engine repeat run was not bit-identical
======== ==============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.reporters import json_document


@dataclass
class ConformanceReport:
    """The outcome of one conformance run.

    Attributes:
        diagnostics: Every divergence found (empty = fully conformant).
        n_checks: Individual assertions executed (clean ones included).
        n_cases: Dataset/parameter cases the differential runner covered.
        tier: The tier that ran (``"quick"`` or ``"deep"``).
        seed: Master seed of the run (every case derives from it).
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)
    n_checks: int = 0
    n_cases: int = 0
    tier: str = "quick"
    seed: int = 0

    @property
    def n_divergences(self) -> int:
        return sum(
            1 for d in self.diagnostics if d.severity is Severity.ERROR
        )

    @property
    def is_clean(self) -> bool:
        return not self.diagnostics

    def add(self, check_id: str, message: str, location: str = "") -> None:
        """Record one divergence (always an ERROR — conformance is binary)."""
        self.diagnostics.append(
            Diagnostic(
                rule_id=check_id,
                severity=Severity.ERROR,
                message=message,
                location=location,
            )
        )

    def merge(self, other: "ConformanceReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.n_checks += other.n_checks
        self.n_cases += other.n_cases

    def exit_code(self) -> int:
        """CI contract: 0 fully conformant, 2 on any divergence."""
        return 2 if self.diagnostics else 0

    def summary(self) -> str:
        if self.is_clean:
            return (
                f"conformant: {self.n_checks} check(s) over {self.n_cases} "
                f"case(s), tier {self.tier}, seed {self.seed}"
            )
        return (
            f"{self.n_divergences} divergence(s) in {self.n_checks} check(s) "
            f"over {self.n_cases} case(s), tier {self.tier}, seed {self.seed}"
        )

    def render_text(self) -> str:
        lines = [diagnostic.render() for diagnostic in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tier": self.tier,
            "seed": self.seed,
            "n_cases": self.n_cases,
            "n_checks": self.n_checks,
            "n_divergences": self.n_divergences,
            "clean": self.is_clean,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render_json(self) -> str:
        return json_document("conformance", self.to_dict())

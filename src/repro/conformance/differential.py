"""The differential runner: oracle vs every production execution path.

For each :class:`~repro.conformance.corpus.ConformanceCase` the runner
fits the naive :class:`~repro.conformance.oracle.ReferenceM5Prime` and
the production :class:`~repro.core.tree.m5.M5Prime` on the same data and
asserts *bit identity* across every way the package can evaluate the
model:

* tree structure (every node field, every model coefficient) — CONF001
* predictions: oracle walk vs production ``predict`` (which routes
  through :class:`~repro.serve.compiled.CompiledTree`) — CONF002
* leaf (class) assignment — CONF003
* compiled vs *interpreted* inference on the production tree (the
  linked-node walk the compiler replaced) — CONF004
* a JSON serialization round trip of the production model — CONF005
* serial vs parallel cross-validation predictions (flagged cases) —
  CONF006
* compiled-forest arena vs interpreted member-by-member ensemble
  evaluation, per tree and for the averaged mean (flagged cases) —
  CONF008

Divergences are reported as structured diagnostics; a clean report is
the package's strongest correctness statement short of a proof.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

import numpy as np

from repro.conformance.corpus import ConformanceCase, build_corpus
from repro.conformance.oracle import ReferenceM5Prime
from repro.conformance.report import ConformanceReport
from repro.conformance.structure import diff_trees
from repro.core.tree.m5 import M5Prime
from repro.core.tree.node import route
from repro.core.tree.serialize import model_from_dict, model_to_dict
from repro.core.tree.smoothing import smoothed_predict

#: Folds used by the serial-vs-parallel cross-validation check.
PARALLEL_CV_FOLDS = 4


def _identical_arrays(a: np.ndarray, b: np.ndarray) -> bool:
    """Bitwise array equality with NaN treated as equal to NaN."""
    if a.shape != b.shape:
        return False
    return bool(np.array_equal(a, b, equal_nan=True))


def _first_mismatch(a: np.ndarray, b: np.ndarray) -> str:
    """Human-readable pointer at the first differing element."""
    if a.shape != b.shape:
        return f"shape {a.shape} vs {b.shape}"
    both_nan = np.isnan(a) & np.isnan(b) if a.dtype.kind == "f" else np.zeros(a.shape, bool)
    different = ~both_nan & (a != b)
    index = int(np.argmax(different))
    return f"row {index}: {a[index]!r} vs {b[index]!r}"


def _interpreted_predict(model: M5Prime, X: np.ndarray) -> np.ndarray:
    """The pre-compilation per-row walk over the production tree."""
    root = model.root_
    assert root is not None
    out = np.empty(X.shape[0], dtype=np.float64)
    for i in range(X.shape[0]):
        if model.smoothing:
            out[i] = smoothed_predict(root, X[i], model.smoothing_k)
        else:
            leaf = route(root, X[i])
            assert leaf.model is not None
            out[i] = leaf.model.predict_one(X[i])
    return out


def run_case(case: ConformanceCase, report: ConformanceReport) -> None:
    """Execute every differential check for one corpus case."""
    dataset = case.dataset
    production = M5Prime(**case.params).fit(dataset)
    oracle = ReferenceM5Prime(**case.params).fit(dataset)
    where = f"case {case.name}"
    report.n_cases += 1

    # CONF001 — bit-identical trees (and recorded training ranges).
    report.n_checks += 1
    assert oracle.root_ is not None and production.root_ is not None
    differences = diff_trees(oracle.root_, production.root_)
    if oracle.feature_ranges_ != production.feature_ranges_:
        differences.append("feature_ranges_ differ")
    for difference in differences:
        report.add("CONF001", difference, where)
    if differences:
        # The trees already disagree; downstream prediction mismatches
        # would only repeat the same root cause.
        return

    X = dataset.X
    oracle_predictions = oracle.predict(X)

    # CONF002 — oracle walk vs production (compiled) predictions.
    report.n_checks += 1
    production_predictions = production.predict(X)
    if not _identical_arrays(oracle_predictions, production_predictions):
        report.add(
            "CONF002",
            "oracle and production predictions diverge: "
            + _first_mismatch(oracle_predictions, production_predictions),
            where,
        )

    # CONF003 — identical class (leaf) assignment.
    report.n_checks += 1
    oracle_leaves = oracle.leaf_ids(X)
    production_leaves = production.leaf_ids(X)
    if not _identical_arrays(oracle_leaves, production_leaves):
        report.add(
            "CONF003",
            "leaf assignment diverges: "
            + _first_mismatch(oracle_leaves, production_leaves),
            where,
        )

    # CONF004 — compiled inference vs the interpreted linked-node walk.
    report.n_checks += 1
    interpreted = _interpreted_predict(production, X)
    if not _identical_arrays(interpreted, production_predictions):
        report.add(
            "CONF004",
            "compiled and interpreted predictions diverge: "
            + _first_mismatch(interpreted, production_predictions),
            where,
        )

    # CONF005 — JSON round trip preserves the tree bit for bit.
    report.n_checks += 1
    document = json.loads(json.dumps(model_to_dict(production)))
    restored = model_from_dict(document)
    assert restored.root_ is not None
    round_trip_differences = diff_trees(
        production.root_, restored.root_, compare_estimated_error=False
    )
    if restored.feature_ranges_ != production.feature_ranges_:
        round_trip_differences.append("feature_ranges_ differ after round trip")
    restored_predictions = restored.predict(X)
    if not _identical_arrays(restored_predictions, production_predictions):
        round_trip_differences.append(
            "predictions diverge after round trip: "
            + _first_mismatch(restored_predictions, production_predictions)
        )
    for difference in round_trip_differences:
        report.add("CONF005", difference, where)

    # CONF006 — parallel fold execution is bit-identical to serial.
    if case.check_parallel_cv:
        report.n_checks += 1
        _check_parallel_cv(case, report, where)

    # CONF008 — compiled forest arena vs interpreted ensemble.
    if case.check_forest:
        report.n_checks += 1
        _check_forest(case, report, where)


def _check_parallel_cv(
    case: ConformanceCase, report: ConformanceReport, where: str
) -> None:
    import functools

    from repro.evaluation import cross_validate

    factory = functools.partial(M5Prime, **case.params)
    serial = cross_validate(
        factory, case.dataset, n_folds=PARALLEL_CV_FOLDS,
        rng=report.seed, n_jobs=1,
    )
    parallel = cross_validate(
        factory, case.dataset, n_folds=PARALLEL_CV_FOLDS,
        rng=report.seed, n_jobs=2,
    )
    if not _identical_arrays(serial.predictions, parallel.predictions):
        report.add(
            "CONF006",
            "serial and parallel cross-validation predictions diverge: "
            + _first_mismatch(serial.predictions, parallel.predictions),
            where,
        )


def _check_forest(
    case: ConformanceCase, report: ConformanceReport, where: str
) -> None:
    """Compiled-arena ensemble evaluation vs member-by-member walks.

    Fits a small :class:`~repro.baselines.bagging.BaggedM5` on the case
    dataset and asserts the single-pass arena (``predict_trees`` /
    ``predict``) is bit-identical to interpreting every member tree
    separately and averaging, and that the leaf-indicator matrix has
    exactly one live column per (row, tree) pair.
    """
    from repro.baselines.bagging import BaggedM5

    forest = BaggedM5(
        n_estimators=5,
        min_instances=int(case.params.get("min_instances", 25)),
        seed=report.seed,
    ).fit(case.dataset)
    X = case.dataset.X
    compiled = forest.compiled_

    per_tree = compiled.predict_trees(X)
    interpreted = np.vstack(
        [_interpreted_predict(member, X) for member in forest]
    )
    for index in range(compiled.n_trees):
        if not _identical_arrays(per_tree[index], interpreted[index]):
            report.add(
                "CONF008",
                f"compiled forest tree[{index}] diverges from the "
                "interpreted member walk: "
                + _first_mismatch(per_tree[index], interpreted[index]),
                where,
            )
            return

    ensemble = forest.predict(X)
    mean = interpreted.mean(axis=0)
    if not _identical_arrays(ensemble, mean):
        report.add(
            "CONF008",
            "compiled forest ensemble mean diverges from the stacked "
            "member mean: " + _first_mismatch(ensemble, mean),
            where,
        )

    indicator = compiled.leaf_indicator(X)
    row_sums = indicator.toarray().sum(axis=1)
    if not np.array_equal(row_sums, np.full(X.shape[0], compiled.n_trees)):
        report.add(
            "CONF008",
            "leaf-indicator rows do not each carry exactly one live "
            "column per tree",
            where,
        )


def run_differential(
    seed: int = 2007,
    tier: str = "quick",
    cases: Optional[Sequence[ConformanceCase]] = None,
    max_cases: Optional[int] = None,
) -> ConformanceReport:
    """Differential-test the corpus; returns the structured report.

    Args:
        seed: Master seed for corpus generation and CV fold assignment.
        tier: ``"quick"`` (CI pull-request budget) or ``"deep"``.
        cases: Explicit case list (overrides corpus generation).
        max_cases: Truncate the corpus (test/debug convenience).
    """
    report = ConformanceReport(tier=tier, seed=seed)
    selected = list(cases) if cases is not None else build_corpus(seed, tier)
    if max_cases is not None:
        selected = selected[:max_cases]
    for case in selected:
        run_case(case, report)
    return report

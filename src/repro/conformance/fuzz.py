"""Deterministic, corpus-backed fuzzing of the package's parsers.

The loaders (:func:`~repro.datasets.arff.loads_arff`,
:func:`~repro.datasets.csvio.loads_csv`,
:func:`~repro.core.tree.serialize.loads_model`) promise exactly one
failure mode on bad input: a typed
:class:`~repro.errors.ParseError`.  The fuzzer holds them to it by
mutating valid seed documents with seeded byte- and line-level edits and
triaging every outcome:

* a successful parse — fine (the mutation kept the document valid);
* a :class:`ParseError` — fine (the contract);
* anything else — a **crash**, recorded as a FUZZ001 diagnostic with the
  reproducer bytes quarantined under
  ``<cache>/conformance/reproducers/`` so the failure replays anywhere.

Every mutation derives from ``SeedSequence([seed, target_index,
iteration])``: the same seed always fuzzes the same byte strings in the
same order, so a CI crash reproduces locally from the (seed, target,
iteration) triple alone — the quarantined file is a convenience, not a
necessity.  Every eighth iteration routes through the *file* loaders
(``load_arff``/``load_csv``/``load_model``) with raw — possibly
non-UTF-8 — bytes on disk, covering the decode-and-name-the-path layer
the string entry points never see.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.conformance.report import ConformanceReport
from repro.errors import ParseError

#: Recognised fuzz targets, in deterministic order.
TARGETS = ("arff", "csv", "model")

#: Every Nth iteration exercises the file-based loader layer.
FILE_ITERATION_PERIOD = 8

#: Hostile tokens spliced into documents by the token mutator.
_TOKENS = (
    b"NaN", b"nan", b"Infinity", b"-inf", b"1e309", b"-1e309", b"",
    b"null", b'"x"', b"@data", b"@attribute", b",", b",,", b"0x10",
    b"1_0", b" ", b"'", b"{", b"%", b"#w",
)


@dataclass
class FuzzCrash:
    """One contract violation: a loader raised something untyped."""

    target: str
    iteration: int
    seed: int
    exception: str
    message: str
    reproducer: Optional[str]


@dataclass
class FuzzResult:
    """The outcome of one fuzz run (all targets)."""

    seed: int
    n_iterations: int = 0
    n_parse_errors: int = 0
    n_valid: int = 0
    elapsed_seconds: float = 0.0
    crashes: List[FuzzCrash] = field(default_factory=list)

    def to_report(self) -> ConformanceReport:
        """Fold into the shared conformance report shape for CI."""
        report = ConformanceReport(tier="fuzz", seed=self.seed)
        report.n_checks = self.n_iterations
        report.n_cases = len(TARGETS)
        for crash in self.crashes:
            where = (
                f"target {crash.target}, iteration {crash.iteration}, "
                f"seed {crash.seed}"
            )
            message = f"{crash.exception}: {crash.message}"
            if crash.reproducer:
                message += f" (reproducer: {crash.reproducer})"
            report.add("FUZZ001", message, where)
        return report


# ----------------------------------------------------------------------
# Seed corpus
# ----------------------------------------------------------------------
def _seed_documents(seed: int) -> Dict[str, List[bytes]]:
    """Small valid documents per target, all derived from ``seed``."""
    import json

    from repro.core.tree.m5 import M5Prime
    from repro.core.tree.serialize import model_to_dict
    from repro.datasets.arff import dumps_arff
    from repro.datasets.synthetic import figure1_dataset, linear_dataset

    small = figure1_dataset(n=40, noise_sd=0.05, rng=seed)
    narrow = linear_dataset((2.0, -1.0), n=24, noise_sd=0.02, rng=seed + 1)

    def csv_text(dataset, meta: bool) -> str:
        lines = []
        header = (["#workload"] if meta else []) + list(dataset.attributes)
        lines.append(",".join(header + [dataset.target_name]))
        for i in range(dataset.n_instances):
            cells = (["w%d" % (i % 3)] if meta else [])
            cells += [repr(float(v)) for v in dataset.X[i]]
            cells.append(repr(float(dataset.y[i])))
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    model = M5Prime(min_instances=8).fit(small)
    tiny_model = M5Prime(min_instances=6, prune=False).fit(narrow)
    return {
        "arff": [
            dumps_arff(small).encode(),
            dumps_arff(narrow, relation="two words").encode(),
        ],
        "csv": [
            csv_text(small, meta=False).encode(),
            csv_text(narrow, meta=True).encode(),
        ],
        "model": [
            json.dumps(model_to_dict(model)).encode(),
            json.dumps(model_to_dict(tiny_model), indent=1).encode(),
        ],
    }


# ----------------------------------------------------------------------
# Mutators (bytearray -> bytearray, driven by one Generator)
# ----------------------------------------------------------------------
def _mutate_flip(data: bytearray, rng: np.random.Generator) -> bytearray:
    if data:
        i = int(rng.integers(len(data)))
        data[i] ^= int(rng.integers(1, 256))
    return data


def _mutate_delete(data: bytearray, rng: np.random.Generator) -> bytearray:
    if data:
        i = int(rng.integers(len(data)))
        span = int(rng.integers(1, 9))
        del data[i:i + span]
    return data


def _mutate_insert(data: bytearray, rng: np.random.Generator) -> bytearray:
    i = int(rng.integers(len(data) + 1))
    blob = bytes(rng.integers(0, 256, size=int(rng.integers(1, 9))).tolist())
    data[i:i] = blob
    return data


def _mutate_token(data: bytearray, rng: np.random.Generator) -> bytearray:
    parts = bytes(data).split(b",")
    if len(parts) > 1:
        parts[int(rng.integers(len(parts)))] = _TOKENS[
            int(rng.integers(len(_TOKENS)))
        ]
        return bytearray(b",".join(parts))
    i = int(rng.integers(len(data) + 1))
    data[i:i] = _TOKENS[int(rng.integers(len(_TOKENS)))]
    return data


def _mutate_line_duplicate(data: bytearray, rng: np.random.Generator) -> bytearray:
    lines = bytes(data).split(b"\n")
    i = int(rng.integers(len(lines)))
    lines.insert(i, lines[i])
    return bytearray(b"\n".join(lines))


def _mutate_line_delete(data: bytearray, rng: np.random.Generator) -> bytearray:
    lines = bytes(data).split(b"\n")
    if len(lines) > 1:
        del lines[int(rng.integers(len(lines)))]
    return bytearray(b"\n".join(lines))


def _mutate_truncate(data: bytearray, rng: np.random.Generator) -> bytearray:
    if data:
        del data[int(rng.integers(len(data))):]
    return data


_MUTATORS: Tuple[Callable[[bytearray, np.random.Generator], bytearray], ...] = (
    _mutate_flip,
    _mutate_flip,  # weighted: byte flips find the most parser edges
    _mutate_delete,
    _mutate_insert,
    _mutate_token,
    _mutate_token,
    _mutate_line_duplicate,
    _mutate_line_delete,
    _mutate_truncate,
)


def mutate_document(seed_doc: bytes, seed: int, target_index: int,
                    iteration: int) -> bytes:
    """The deterministic mutation for one (seed, target, iteration)."""
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, target_index, iteration])
    )
    data = bytearray(seed_doc)
    for _ in range(int(rng.integers(1, 5))):
        data = _MUTATORS[int(rng.integers(len(_MUTATORS)))](data, rng)
    return bytes(data)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _loaders() -> Dict[str, Tuple[Callable[[str], object],
                                  Callable[[Path], object], str]]:
    from repro.core.tree.serialize import load_model, loads_model
    from repro.datasets.arff import load_arff, loads_arff
    from repro.datasets.csvio import load_csv, loads_csv

    return {
        "arff": (loads_arff, load_arff, ".arff"),
        "csv": (loads_csv, load_csv, ".csv"),
        "model": (loads_model, load_model, ".json"),
    }


def default_reproducer_dir() -> Path:
    """Quarantine directory for crash-reproducing inputs."""
    from repro.experiments.config import default_cache_dir

    return default_cache_dir() / "conformance" / "reproducers"


def _quarantine(document: bytes, target: str, directory: Path) -> str:
    digest = hashlib.sha256(document).hexdigest()[:16]
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{target}-{digest}.bin"
    path.write_bytes(document)
    return str(path)


def run_fuzz(
    seed: int = 2007,
    iterations: Optional[int] = None,
    seconds: Optional[float] = None,
    targets: Sequence[str] = TARGETS,
    reproducer_dir: Optional[Path] = None,
    scratch_dir: Optional[Path] = None,
) -> FuzzResult:
    """Fuzz the selected loaders under an iteration or wall-clock budget.

    Args:
        seed: Master seed; fully determines every mutated document.
        iterations: Per-target iteration budget (mutually exclusive
            framing with ``seconds``; both given means whichever runs
            out first, neither means 200 iterations per target).
        seconds: Wall-clock budget across all targets.
        targets: Subset of :data:`TARGETS` to fuzz.
        reproducer_dir: Crash quarantine override (defaults under the
            artifact cache root).
        scratch_dir: Where file-mode iterations write their temp file
            (defaults to a fresh temporary directory).
    """
    from repro.errors import ConfigError

    unknown = [t for t in targets if t not in TARGETS]
    if unknown:
        raise ConfigError(f"unknown fuzz target(s) {unknown}; pick from {TARGETS}")
    if iterations is None and seconds is None:
        iterations = 200

    import tempfile

    loaders = _loaders()
    corpus = _seed_documents(seed)
    result = FuzzResult(seed=seed)
    started = time.monotonic()
    deadline = None if seconds is None else started + seconds

    with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
        scratch = Path(scratch_dir) if scratch_dir is not None else Path(tmp)
        iteration = 0
        while True:
            if iterations is not None and iteration >= iterations:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            for target in targets:
                target_index = TARGETS.index(target)
                seeds = corpus[target]
                seed_doc = seeds[iteration % len(seeds)]
                document = mutate_document(seed_doc, seed, target_index, iteration)
                loads, load, suffix = loaders[target]
                use_file = iteration % FILE_ITERATION_PERIOD == (
                    FILE_ITERATION_PERIOD - 1
                )
                result.n_iterations += 1
                try:
                    if use_file:
                        path = scratch / f"fuzz-{target}{suffix}"
                        path.write_bytes(document)
                        load(path)
                    else:
                        loads(document.decode("utf-8", errors="replace"))
                except ParseError:
                    result.n_parse_errors += 1
                except Exception as exc:  # noqa: BLE001 — triage is the point
                    reproducer = _quarantine(
                        document, target,
                        reproducer_dir if reproducer_dir is not None
                        else default_reproducer_dir(),
                    )
                    result.crashes.append(FuzzCrash(
                        target=target,
                        iteration=iteration,
                        seed=seed,
                        exception=type(exc).__name__,
                        message=str(exc),
                        reproducer=reproducer,
                    ))
                else:
                    result.n_valid += 1
            iteration += 1
    result.elapsed_seconds = time.monotonic() - started
    return result

"""The seeded dataset/parameter corpus the differential runner fits.

Each :class:`ConformanceCase` pairs a deterministic dataset with one
M5' configuration, chosen so the corpus collectively exercises every
algorithm path: deep and shallow trees, pruning on and off, smoothing on
and off, every ``model_attributes`` policy, ridge and exact least
squares, the collinearity filters, non-negative coefficient constraints,
tied/discrete attribute values (stable-sort tie handling), constant
targets, single-attribute problems, and Table-I-shaped data from the
synthetic suite simulator.

Everything derives from one master seed, so a CI failure names a case
that reproduces anywhere with ``build_corpus(seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from repro.datasets.dataset import Dataset
from repro.datasets.synthetic import (
    constant_dataset,
    figure1_dataset,
    interaction_dataset,
    linear_dataset,
    step_dataset,
)

#: Cases per tier; ``deep`` is a superset of ``quick``.
TIERS = ("quick", "deep")


@dataclass(frozen=True)
class ConformanceCase:
    """One differential-test unit: a dataset plus an M5' configuration."""

    name: str
    dataset: Dataset
    params: Dict[str, Any] = field(default_factory=dict)
    #: Also run the serial-vs-parallel cross-validation check (slower).
    check_parallel_cv: bool = False
    #: Also run the compiled-forest vs interpreted-ensemble check
    #: (fits a small BaggedM5 on the case dataset; slower).
    check_forest: bool = False


def _rng(seed: int, *salt: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence([seed, *salt]))


def collinear_dataset(seed: int, n: int = 160) -> Dataset:
    """Near-duplicate attribute pairs — the collinearity-filter stress."""
    generator = _rng(seed, 101)
    base = generator.uniform(0.0, 1.0, size=(n, 2))
    twin = base[:, 0] + generator.normal(0.0, 0.004, size=n)
    noise = generator.uniform(0.0, 1.0, size=n)
    X = np.column_stack([base[:, 0], twin, base[:, 1], noise])
    y = 0.4 + 3.0 * base[:, 0] + 1.5 * base[:, 1]
    y += generator.normal(0.0, 0.05, size=n)
    return Dataset(X, y, ("A", "A_twin", "B", "Z"), target_name="Y")


def discrete_dataset(seed: int, n: int = 200) -> Dataset:
    """Heavily tied attribute values — exercises stable-sort boundaries."""
    generator = _rng(seed, 202)
    levels = generator.integers(0, 5, size=(n, 3)).astype(np.float64) / 4.0
    extra = generator.uniform(0.0, 1.0, size=(n, 1))
    X = np.column_stack([levels, extra])
    y = 1.0 + 2.0 * levels[:, 0] - 1.2 * levels[:, 1] + 0.5 * extra[:, 0]
    y += np.where(levels[:, 2] > 0.5, 1.5, 0.0)
    y += generator.normal(0.0, 0.08, size=n)
    return Dataset(X, y, ("D1", "D2", "D3", "C1"), target_name="Y")


def ramp_dataset(seed: int, n: int = 180) -> Dataset:
    """A single-attribute three-segment piecewise line."""
    generator = _rng(seed, 303)
    x = generator.uniform(0.0, 3.0, size=n)
    y = np.where(
        x < 1.0, 0.5 + 0.2 * x,
        np.where(x < 2.0, 2.0 - 0.5 * (x - 1.0), 0.8 + 1.4 * (x - 2.0)),
    )
    y += generator.normal(0.0, 0.04, size=n)
    return Dataset(x.reshape(-1, 1), y, ("X1",), target_name="Y")


def _suite_dataset(seed: int, sections: int = 8) -> Dataset:
    """Table-I-shaped data (20 predictor metrics, CPI target)."""
    from repro.workloads import simulate_suite

    return simulate_suite(
        sections_per_workload=sections, instructions_per_section=256, seed=seed
    ).dataset


def build_corpus(seed: int = 2007, tier: str = "quick") -> List[ConformanceCase]:
    """The seeded case list for one tier (quick: 25+ cases, deep: more)."""
    if tier not in TIERS:
        from repro.errors import ConfigError

        raise ConfigError(f"tier must be one of {TIERS}, got {tier!r}")

    cases: List[ConformanceCase] = []

    def add(name: str, dataset: Dataset, check_parallel_cv: bool = False,
            check_forest: bool = False, **params: Any) -> None:
        cases.append(ConformanceCase(
            name=name, dataset=dataset, params=params,
            check_parallel_cv=check_parallel_cv,
            check_forest=check_forest,
        ))

    # Figure-1-structured piecewise data across the knob space.
    add("figure1-default", figure1_dataset(n=260, noise_sd=0.05, rng=seed),
        min_instances=15, check_parallel_cv=True, check_forest=True)
    add("figure1-smoothed", figure1_dataset(n=240, noise_sd=0.05, rng=seed + 1),
        min_instances=15, smoothing=True)
    add("figure1-unpruned", figure1_dataset(n=220, noise_sd=0.08, rng=seed + 2),
        min_instances=12, prune=False)
    add("figure1-nosimplify", figure1_dataset(n=200, noise_sd=0.05, rng=seed + 3),
        min_instances=12, simplify=False)
    add("figure1-exact-ls", figure1_dataset(n=200, noise_sd=0.02, rng=seed + 4),
        min_instances=14, ridge=0.0, collinearity_threshold=1.0)
    add("figure1-policy-all", figure1_dataset(n=180, noise_sd=0.05, rng=seed + 5),
        min_instances=12, model_attributes="all")
    add("figure1-policy-path", figure1_dataset(n=180, noise_sd=0.05, rng=seed + 6),
        min_instances=12, model_attributes="path")
    add("figure1-policy-subtree",
        figure1_dataset(n=180, noise_sd=0.05, rng=seed + 7),
        min_instances=12, model_attributes="subtree")
    add("figure1-tiny-leaves", figure1_dataset(n=160, noise_sd=0.05, rng=seed + 8),
        min_instances=2)
    add("figure1-high-sdfrac", figure1_dataset(n=200, noise_sd=0.05, rng=seed + 9),
        min_instances=10, sd_fraction=0.25)

    # Plain relationships: a single line needs no splits at all.
    add("linear-narrow", linear_dataset((2.0,), intercept=0.5, n=120,
                                        noise_sd=0.02, rng=seed + 10),
        min_instances=10)
    add("linear-wide", linear_dataset((1.0, -0.5, 0.25, 2.0, 0.0, 1.5), n=150,
                                      noise_sd=0.05, rng=seed + 11),
        min_instances=12)
    add("linear-noiseless", linear_dataset((3.0, 1.0), n=100, rng=seed + 12),
        min_instances=8, ridge=0.0)

    # Step functions: the smallest genuine tree problems.
    add("step-clean", step_dataset(n=140, rng=seed + 13), min_instances=10,
        check_forest=True)
    add("step-noisy", step_dataset(n=160, noise_sd=0.15, rng=seed + 14),
        min_instances=12, smoothing=True)

    # Interactions: region-local lines approximating X1 * X2.
    add("interaction", interaction_dataset(n=220, noise_sd=0.02, rng=seed + 15),
        min_instances=15, check_parallel_cv=True, check_forest=True)
    add("interaction-smoothed",
        interaction_dataset(n=200, noise_sd=0.05, rng=seed + 16),
        min_instances=15, smoothing=True, smoothing_k=25.0)

    # Degenerate and adversarial shapes.
    add("constant-target", constant_dataset(value=2.5, n=90, p=3),
        min_instances=10)
    add("collinear-pairs", collinear_dataset(seed + 17), min_instances=12)
    add("collinear-nofilter", collinear_dataset(seed + 18), min_instances=12,
        collinearity_threshold=1.0)
    add("discrete-ties", discrete_dataset(seed + 19), min_instances=14)
    add("discrete-ties-smoothed", discrete_dataset(seed + 20),
        min_instances=14, smoothing=True)
    add("single-attribute-ramp", ramp_dataset(seed + 21), min_instances=12)
    add("single-attribute-unpruned", ramp_dataset(seed + 22), min_instances=10,
        prune=False, simplify=False)

    # Table-I-shaped suite data, the paper's own regime (in miniature).
    suite = _suite_dataset(seed + 23)
    add("suite-table1", suite, min_instances=10, check_forest=True)
    from repro.counters import STALL_METRICS

    add("suite-nonnegative", suite, min_instances=12,
        nonnegative_attributes=STALL_METRICS)

    if tier == "deep":
        for i in range(8):
            add(f"figure1-deep-{i}",
                figure1_dataset(n=500, noise_sd=0.05, rng=seed + 100 + i),
                min_instances=20, check_parallel_cv=(i < 2))
        add("figure1-deep-smoothed",
            figure1_dataset(n=600, noise_sd=0.05, rng=seed + 120),
            min_instances=25, smoothing=True)
        add("suite-table1-deep", _suite_dataset(seed + 121, sections=16),
            min_instances=14, check_parallel_cv=True, check_forest=True)
        add("discrete-deep", discrete_dataset(seed + 122, n=500),
            min_instances=20)
        add("interaction-deep",
            interaction_dataset(n=600, noise_sd=0.03, rng=seed + 123),
            min_instances=25)

    return cases

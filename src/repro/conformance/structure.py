"""Tree comparison and skeleton helpers for the conformance harness.

Two fitted trees are *bit-identical* when every node agrees on kind,
population, statistics, split test and linear model down to the last
float bit.  :func:`diff_trees` walks two trees in lockstep and returns a
human-readable list of every disagreement (empty means identical);
:func:`tree_skeleton` reduces a tree to a stable, JSON-friendly outline
(split tests, populations, model term names) used for golden-structure
tests and metamorphic relations where full bit-identity is not the
contract.
"""

from __future__ import annotations

from typing import Any, Dict, List, Union

from repro.core.tree.linear import LinearModel
from repro.core.tree.node import Node, SplitNode


def _same_float(a: float, b: float) -> bool:
    """Bitwise equality that also treats two NaNs / same-signed infs as equal."""
    if a == b:
        return True
    return a != a and b != b  # both NaN


def _diff_models(a: LinearModel, b: LinearModel, where: str, out: List[str]) -> None:
    if a.indices != b.indices or a.names != b.names:
        out.append(
            f"{where}: model terms differ ({list(a.names)} vs {list(b.names)})"
        )
        return
    if not _same_float(a.intercept, b.intercept):
        out.append(
            f"{where}: model intercept {a.intercept!r} vs {b.intercept!r}"
        )
    for name, ca, cb in zip(a.names, a.coefficients, b.coefficients):
        if not _same_float(ca, cb):
            out.append(f"{where}: coefficient of {name} {ca!r} vs {cb!r}")
    if a.n_training != b.n_training:
        out.append(f"{where}: model n_training {a.n_training} vs {b.n_training}")
    if not _same_float(a.training_error, b.training_error):
        out.append(
            f"{where}: training_error {a.training_error!r} vs {b.training_error!r}"
        )


def diff_trees(
    a: Node,
    b: Node,
    path: str = "root",
    limit: int = 20,
    compare_estimated_error: bool = True,
) -> List[str]:
    """Every field-level disagreement between two trees (empty = identical).

    The walk stops descending a branch after the first structural
    mismatch on it and truncates the overall list at ``limit`` entries,
    so a totally different tree reports compactly instead of exploding.

    ``compare_estimated_error=False`` skips the pruning-time
    ``estimated_error`` field — it is deliberately not serialized, so
    round-trip comparisons must ignore it.
    """
    out: List[str] = []
    _diff_nodes(a, b, path, out, compare_estimated_error)
    if len(out) > limit:
        out = out[:limit] + [f"... {len(out) - limit} further difference(s)"]
    return out


def _diff_nodes(
    a: Node, b: Node, path: str, out: List[str], compare_estimated_error: bool
) -> None:
    if a.is_leaf != b.is_leaf:
        kind_a = "leaf" if a.is_leaf else "split"
        kind_b = "leaf" if b.is_leaf else "split"
        out.append(f"{path}: node kind {kind_a} vs {kind_b}")
        return
    if a.n_instances != b.n_instances:
        out.append(f"{path}: n_instances {a.n_instances} vs {b.n_instances}")
    if not _same_float(a.sd, b.sd):
        out.append(f"{path}: sd {a.sd!r} vs {b.sd!r}")
    if not _same_float(a.mean, b.mean):
        out.append(f"{path}: mean {a.mean!r} vs {b.mean!r}")
    if a.leaf_id != b.leaf_id:
        out.append(f"{path}: leaf_id {a.leaf_id} vs {b.leaf_id}")
    if compare_estimated_error and not _same_float(
        a.estimated_error, b.estimated_error
    ):
        out.append(
            f"{path}: estimated_error {a.estimated_error!r} "
            f"vs {b.estimated_error!r}"
        )
    if a.model is not None and b.model is not None:
        _diff_models(a.model, b.model, path, out)
    elif (a.model is None) != (b.model is None):
        out.append(f"{path}: one tree lacks a node model")
    if isinstance(a, SplitNode) and isinstance(b, SplitNode):
        if a.attribute_index != b.attribute_index:
            out.append(
                f"{path}: split attribute {a.attribute_name} "
                f"vs {b.attribute_name}"
            )
            return
        if not _same_float(a.threshold, b.threshold):
            out.append(f"{path}: threshold {a.threshold!r} vs {b.threshold!r}")
            return
        _diff_nodes(a.left, b.left, path + ".L", out, compare_estimated_error)
        _diff_nodes(a.right, b.right, path + ".R", out, compare_estimated_error)


def trees_identical(a: Node, b: Node) -> bool:
    """True when :func:`diff_trees` finds nothing."""
    return not diff_trees(a, b)


def tree_skeleton(root: Node, digits: int = 10) -> Dict[str, Any]:
    """A stable structural outline of a fitted tree.

    Thresholds are rounded to ``digits`` significant digits and model
    coefficients are omitted, so the skeleton is insensitive to BLAS /
    platform last-bit drift — the right granularity for golden-structure
    tests checked into the repository.
    """
    node: Union[Node, SplitNode] = root
    if isinstance(node, SplitNode):
        return {
            "kind": "split",
            "attribute": node.attribute_name,
            "threshold": float(f"{node.threshold:.{digits}g}"),
            "n_instances": node.n_instances,
            "left": tree_skeleton(node.left, digits),
            "right": tree_skeleton(node.right, digits),
        }
    return {
        "kind": "leaf",
        "leaf_id": node.leaf_id,
        "n_instances": node.n_instances,
        "model_terms": list(node.model.names) if node.model is not None else [],
    }

"""Metamorphic relations the M5' algorithm must satisfy.

Differential testing answers "do two implementations agree?"; metamorphic
testing answers "does the implementation behave like the *algorithm*?"
by checking input/output relations that hold regardless of any oracle:

META001  **Row permutation.**  Shuffling training rows must not change
         the tree's split structure, and predictions may move only by
         floating-point noise (sums over permuted rows round
         differently; the splits themselves are order-free on data
         without tied attribute values).
META002  **Feature permutation.**  Permuting attribute columns (with
         their names) must yield the same tests on the same named
         attributes and the same predictions up to solver rounding.
META003  **Affine target scaling.**  Fitting on ``a*y + b`` (a > 0)
         must keep the split structure and scale every prediction to
         ``a*p + b`` — leaf models are linear in the target.
META004  **Dataset duplication.**  Doubling every row while doubling
         ``min_instances`` (with pruning/simplification off, whose
         pessimistic (n+v)/(n-v) corrections legitimately depend on
         absolute n) must keep structure and predictions, with every
         node population exactly doubled.
META005  **Min-leaf monotonicity.**  Raising ``min_instances`` must not
         grow the (unpruned) tree, and no leaf may hold fewer than
         ``min_instances`` training rows.

Relations run on continuous synthetic datasets: with tied attribute
values, row order legitimately perturbs prefix sums at tie boundaries,
which is covered bit-exactly by the differential suite instead.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.conformance.report import ConformanceReport
from repro.core.tree.m5 import M5Prime
from repro.core.tree.node import Node, SplitNode
from repro.datasets.dataset import Dataset
from repro.datasets.synthetic import figure1_dataset, interaction_dataset

#: Solver-noise tolerance for prediction comparisons.  Reordering rows
#: or columns changes summation order inside BLAS; the result must stay
#: within a hair of the original, but not bit-identical.
RELATIVE_TOLERANCE = 1e-6
ABSOLUTE_TOLERANCE = 1e-9


def _split_signature(root: Node) -> List[Tuple[str, float]]:
    """Sorted (attribute name, threshold) pairs — the structural identity."""
    signature = [
        (node.attribute_name, node.threshold)
        for node in root.iter_nodes()
        if isinstance(node, SplitNode)
    ]
    return sorted(signature)


def _close(a: np.ndarray, b: np.ndarray) -> bool:
    return bool(
        np.allclose(a, b, rtol=RELATIVE_TOLERANCE, atol=ABSOLUTE_TOLERANCE)
    )


def _worst_gap(a: np.ndarray, b: np.ndarray) -> str:
    gap = np.abs(a - b)
    index = int(np.argmax(gap))
    return f"max |gap| {gap[index]:.3e} at row {index}"


def default_metamorphic_datasets(seed: int) -> List[Tuple[str, Dataset]]:
    """Continuous (tie-free) datasets the relations run over."""
    return [
        ("figure1", figure1_dataset(n=240, noise_sd=0.05, rng=seed)),
        ("figure1-b", figure1_dataset(n=200, noise_sd=0.08, rng=seed + 1)),
        ("interaction", interaction_dataset(n=220, noise_sd=0.03, rng=seed + 2)),
    ]


# ----------------------------------------------------------------------
# Relations
# ----------------------------------------------------------------------
def check_row_permutation(
    name: str, dataset: Dataset, seed: int, report: ConformanceReport
) -> None:
    report.n_checks += 1
    where = f"meta {name}"
    rng = np.random.default_rng(seed)
    base = M5Prime(min_instances=15).fit(dataset)
    shuffled = M5Prime(min_instances=15).fit(dataset.shuffled(rng))
    assert base.root_ is not None and shuffled.root_ is not None
    if _split_signature(base.root_) != _split_signature(shuffled.root_):
        report.add(
            "META001",
            "row permutation changed the split structure "
            f"({base.n_leaves} vs {shuffled.n_leaves} leaves)",
            where,
        )
        return
    a = base.predict(dataset.X)
    b = shuffled.predict(dataset.X)
    if not _close(a, b):
        report.add(
            "META001",
            "row permutation moved predictions beyond solver noise: "
            + _worst_gap(a, b),
            where,
        )


def check_feature_permutation(
    name: str, dataset: Dataset, seed: int, report: ConformanceReport
) -> None:
    report.n_checks += 1
    where = f"meta {name}"
    rng = np.random.default_rng(seed + 1)
    permutation = rng.permutation(dataset.n_attributes)
    permuted = Dataset(
        dataset.X[:, permutation],
        dataset.y,
        tuple(dataset.attributes[i] for i in permutation),
        target_name=dataset.target_name,
    )
    base = M5Prime(min_instances=15).fit(dataset)
    other = M5Prime(min_instances=15).fit(permuted)
    assert base.root_ is not None and other.root_ is not None
    if _split_signature(base.root_) != _split_signature(other.root_):
        report.add(
            "META002",
            "feature permutation changed the named split structure",
            where,
        )
        return
    a = base.predict(dataset.X)
    b = other.predict(dataset.X[:, permutation])
    if not _close(a, b):
        report.add(
            "META002",
            "feature permutation moved predictions beyond solver noise: "
            + _worst_gap(a, b),
            where,
        )


def check_affine_target(
    name: str,
    dataset: Dataset,
    seed: int,
    report: ConformanceReport,
    scale: float = 2.5,
    shift: float = 1.25,
) -> None:
    report.n_checks += 1
    where = f"meta {name}"
    scaled = Dataset(
        dataset.X, scale * dataset.y + shift, dataset.attributes,
        target_name=dataset.target_name,
    )
    base = M5Prime(min_instances=15).fit(dataset)
    other = M5Prime(min_instances=15).fit(scaled)
    assert base.root_ is not None and other.root_ is not None
    if _split_signature(base.root_) != _split_signature(other.root_):
        report.add(
            "META003",
            f"affine target scaling (a={scale}, b={shift}) changed the "
            "split structure",
            where,
        )
        return
    expected = scale * base.predict(dataset.X) + shift
    actual = other.predict(dataset.X)
    if not _close(expected, actual):
        report.add(
            "META003",
            "scaled-target predictions are not the scaled baseline "
            "predictions: " + _worst_gap(expected, actual),
            where,
        )


def check_duplication(
    name: str, dataset: Dataset, seed: int, report: ConformanceReport
) -> None:
    report.n_checks += 1
    where = f"meta {name}"
    # Pruning/simplification pessimism and smoothing weights depend on
    # absolute population (see the module docstring), so the invariance
    # is stated for the raw grown tree.
    params = dict(prune=False, simplify=False, smoothing=False)
    doubled = Dataset.concat([dataset, dataset])
    base = M5Prime(min_instances=10, **params).fit(dataset)
    other = M5Prime(min_instances=20, **params).fit(doubled)
    assert base.root_ is not None and other.root_ is not None
    if _split_signature(base.root_) != _split_signature(other.root_):
        report.add(
            "META004",
            "duplicating every row (with min_instances doubled) changed "
            "the split structure",
            where,
        )
        return
    populations = [
        (a.n_instances, b.n_instances)
        for a, b in zip(base.root_.iter_nodes(), other.root_.iter_nodes())
    ]
    wrong = [(a, b) for a, b in populations if b != 2 * a]
    if wrong:
        report.add(
            "META004",
            f"node populations did not exactly double: {wrong[:3]}",
            where,
        )
    a = base.predict(dataset.X)
    b = other.predict(dataset.X)
    if not _close(a, b):
        report.add(
            "META004",
            "duplication moved predictions beyond solver noise: "
            + _worst_gap(a, b),
            where,
        )


def check_min_leaf_monotonic(
    name: str,
    dataset: Dataset,
    seed: int,
    report: ConformanceReport,
    ladder: Sequence[int] = (5, 10, 20, 40),
) -> None:
    report.n_checks += 1
    where = f"meta {name}"
    previous_leaves: Optional[int] = None
    for min_instances in ladder:
        model = M5Prime(min_instances=min_instances, prune=False).fit(dataset)
        assert model.root_ is not None
        floor = min(min_instances, dataset.n_instances)
        starved = [
            leaf.n_instances
            for leaf in model.root_.leaves()
            if leaf.n_instances < floor
        ]
        if starved:
            report.add(
                "META005",
                f"min_instances={min_instances} produced leaves below the "
                f"floor: populations {starved[:5]}",
                where,
            )
        if previous_leaves is not None and model.n_leaves > previous_leaves:
            report.add(
                "META005",
                f"tree grew from {previous_leaves} to {model.n_leaves} "
                f"leaves when min_instances rose to {min_instances}",
                where,
            )
        previous_leaves = model.n_leaves


ALL_RELATIONS = (
    check_row_permutation,
    check_feature_permutation,
    check_affine_target,
    check_duplication,
    check_min_leaf_monotonic,
)


def run_metamorphic(
    seed: int = 2007,
    datasets: Optional[Sequence[Tuple[str, Dataset]]] = None,
) -> ConformanceReport:
    """Check every relation over every (named) dataset."""
    report = ConformanceReport(tier="metamorphic", seed=seed)
    selected = (
        list(datasets) if datasets is not None
        else default_metamorphic_datasets(seed)
    )
    for name, dataset in selected:
        report.n_cases += 1
        for relation in ALL_RELATIONS:
            relation(name, dataset, seed, report)
    return report

"""Conformance harness: oracle differential testing, metamorphic
relations and loader fuzzing for the M5' implementation.

Three independent evidence streams, one report shape:

* :mod:`repro.conformance.differential` — a deliberately naive
  reference implementation (:class:`ReferenceM5Prime`) fitted against
  the optimized production pipeline on a seeded corpus, asserting *bit
  identity* of trees, predictions and leaf assignment.
* :mod:`repro.conformance.metamorphic` — algebraic relations (row and
  feature permutation, affine target scaling, dataset duplication,
  min-leaf monotonicity) the algorithm must satisfy independent of any
  oracle.
* :mod:`repro.conformance.fuzz` — deterministic mutation fuzzing of the
  ARFF/CSV/model-JSON parsers, holding them to their one-failure-mode
  (:class:`~repro.errors.ParseError`) contract.
* :mod:`repro.conformance.certified` — every corpus-fitted model must
  pass the static verifier (:mod:`repro.verify`) and keep 10k uniform
  in-domain predictions inside its certified per-leaf intervals.
* :mod:`repro.conformance.fastsim` — differential drift gates (FAST00x)
  bounding the fast suite engine's CPI error against the trace oracle
  on a seeded corpus; tolerance-based, never bit-identical, because the
  fast path is an approximation by contract.
"""

from repro.conformance.certified import run_certified
from repro.conformance.corpus import ConformanceCase, build_corpus
from repro.conformance.differential import run_case, run_differential
from repro.conformance.fastsim import (
    FastsimTolerance,
    corpus_profiles,
    run_fastsim,
)
from repro.conformance.fuzz import FuzzCrash, FuzzResult, run_fuzz
from repro.conformance.metamorphic import run_metamorphic
from repro.conformance.oracle import ReferenceM5Prime
from repro.conformance.report import ConformanceReport
from repro.conformance.structure import diff_trees, tree_skeleton, trees_identical

__all__ = [
    "ConformanceCase",
    "ConformanceReport",
    "FastsimTolerance",
    "FuzzCrash",
    "FuzzResult",
    "ReferenceM5Prime",
    "build_corpus",
    "corpus_profiles",
    "diff_trees",
    "run_case",
    "run_certified",
    "run_differential",
    "run_fastsim",
    "run_fuzz",
    "run_metamorphic",
    "tree_skeleton",
    "trees_identical",
]

"""Deterministic per-task seed derivation.

Parallel and serial runs can only be bit-identical when no task reads a
shared, sequentially-consumed random stream.  The rule throughout this
package is therefore: derive one child seed per task *up front* (in the
submission order, which is deterministic), then hand each task its own
:class:`numpy.random.SeedSequence`.  How many workers execute the tasks
— or in what order — can then no longer influence any draw.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro._util import RandomState

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def spawn_seeds(seed: SeedLike, n_tasks: int) -> List[np.random.SeedSequence]:
    """``n_tasks`` independent child seed sequences derived from ``seed``.

    An ``int`` or ``None`` seeds a fresh root sequence; an existing
    ``SeedSequence`` is spawned from directly; a ``Generator`` spawns
    from its internal bit generator's sequence, advancing the generator's
    spawn counter (not its stream), so repeated calls yield fresh,
    non-overlapping children.
    """
    if isinstance(seed, np.random.Generator):
        return list(seed.bit_generator.seed_seq.spawn(n_tasks))  # type: ignore[union-attr]
    if isinstance(seed, np.random.SeedSequence):
        return list(seed.spawn(n_tasks))
    return list(np.random.SeedSequence(seed).spawn(n_tasks))


def generator_for(seed: Union[np.random.SeedSequence, int, None]) -> np.random.Generator:
    """A fresh :class:`numpy.random.Generator` for one task's seed."""
    return np.random.default_rng(seed)


def derive_fold_seeds(
    rng: RandomState, n_folds: int
) -> List[Optional[np.random.SeedSequence]]:
    """Per-fold seeds for cross-validation.

    ``None`` inputs produce per-fold ``None`` (factories that ignore
    seeds stay untouched); everything else spawns proper children.
    """
    if rng is None:
        return [None] * n_folds
    return list(spawn_seeds(rng, n_folds))


def seeds_as_ints(seeds: Sequence[np.random.SeedSequence]) -> List[int]:
    """Collapse seed sequences to plain ints (for logs and cache keys)."""
    return [int(s.generate_state(1)[0]) for s in seeds]

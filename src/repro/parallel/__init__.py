"""Parallel execution and artifact caching for the hot paths.

See :mod:`repro.parallel.executor` for the pluggable map layer,
:mod:`repro.parallel.seeding` for the deterministic per-task seed
derivation that keeps serial and parallel runs bit-identical, and
:mod:`repro.parallel.cache` for the content-addressed on-disk store of
simulated datasets and fitted models.
"""

from repro.parallel.cache import (
    ArtifactCache,
    CacheInfo,
    EntryStatus,
    get_artifact_cache,
)
from repro.parallel.executor import (
    EXECUTOR_ENV,
    EXECUTOR_KINDS,
    JOBS_ENV,
    parallel_map,
    parallel_starmap,
    resolve_executor,
    resolve_jobs,
)
from repro.parallel.seeding import (
    derive_fold_seeds,
    generator_for,
    seeds_as_ints,
    spawn_seeds,
)

__all__ = [
    "ArtifactCache",
    "CacheInfo",
    "EXECUTOR_ENV",
    "EXECUTOR_KINDS",
    "EntryStatus",
    "JOBS_ENV",
    "derive_fold_seeds",
    "generator_for",
    "get_artifact_cache",
    "parallel_map",
    "parallel_starmap",
    "resolve_executor",
    "resolve_jobs",
    "seeds_as_ints",
    "spawn_seeds",
]

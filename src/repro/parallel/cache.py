"""Content-addressed on-disk artifact cache.

Simulating the suite dataset and fitting paper-regime trees are the two
expensive steps every experiment, benchmark and CLI session repeats.
This cache stores both — section datasets as CSV, fitted models as JSON
— under names derived from a stable hash of everything that determines
their content: the :class:`~repro.experiments.config.ExperimentConfig`
fields, the workload and machine fingerprints, and the package version.
Identical inputs always map to the same file, so concurrent sessions
share artifacts; any input change produces a different digest, so stale
artifacts are never served (they are merely orphaned until ``repro
cache clear``).

Layout (under :func:`repro.experiments.config.default_cache_dir`, i.e.
``~/.cache/repro`` or ``$REPRO_CACHE_DIR``)::

    artifacts/
        dataset-<digest>.csv         simulated section datasets
        dataset-<digest>.csv.sha256  integrity checksum sidecar
        model-<digest>.json          fitted model trees
        model-<digest>.json.sha256   integrity checksum sidecar
        json-<digest>.json           generic JSON artifacts (fastsim
                                     calibrations and similar payloads)
        json-<digest>.json.sha256    integrity checksum sidecar
        quarantine/                  corrupt entries, kept for autopsy

Integrity: every store writes a SHA-256 sidecar of the artifact bytes.
A load first verifies the sidecar (when present — pre-checksum entries
are still honored but ``repro lint --cache-dir`` flags them), then
parses.  A truncated, tampered, or unparsable entry is *quarantined* —
moved into ``quarantine/`` with a warning — and reported as a miss, so
corruption costs one recomputation, never a crash or a wrong result.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro._util import stable_hash
from repro.errors import FaultInjected, ReproError
from repro.resilience.faults import maybe_inject

KeyPart = Union[str, int, float]

_SUFFIXES = {"dataset": ".csv", "model": ".json", "json": ".json"}

#: Suffix of the integrity sidecar written next to every artifact.
CHECKSUM_SUFFIX = ".sha256"

#: Subdirectory corrupt entries are moved into.
QUARANTINE_DIR = "quarantine"

#: Entry integrity states reported by :meth:`ArtifactCache.scan`.
STATUS_OK = "ok"
STATUS_NO_CHECKSUM = "no-checksum"
STATUS_MISMATCH = "mismatch"


def _file_digest(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class CacheInfo:
    """A snapshot of the cache directory's contents."""

    directory: Path
    n_entries: int
    total_bytes: int
    entries: Sequence[str]
    n_quarantined: int = 0

    def render(self) -> str:
        lines = [
            f"cache directory: {self.directory}",
            f"entries: {self.n_entries}",
            f"total size: {self.total_bytes / 1024:.1f} KiB",
        ]
        if self.n_quarantined:
            lines.append(f"quarantined entries: {self.n_quarantined}")
        for name in self.entries:
            lines.append(f"  {name}")
        return "\n".join(lines)


@dataclass(frozen=True)
class EntryStatus:
    """One cache entry's integrity verdict (see :meth:`ArtifactCache.scan`)."""

    name: str
    status: str


class ArtifactCache:
    """Content-addressed store for datasets and fitted models.

    Args:
        directory: Cache root; defaults to ``<default_cache_dir>/artifacts``.
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        if directory is None:
            from repro.experiments.config import default_cache_dir

            directory = default_cache_dir() / "artifacts"
        self.directory = Path(directory)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, kind: str, key_parts: Sequence[KeyPart]) -> Path:
        """The (deterministic) file path for an artifact identity.

        ``kind`` namespaces the digest — a dataset and a model derived
        from the same configuration never collide.
        """
        if kind not in _SUFFIXES:
            raise ReproError(
                f"unknown artifact kind {kind!r}; choose from {sorted(_SUFFIXES)}"
            )
        digest = stable_hash([kind] + [str(p) for p in key_parts])
        return self.directory / f"{kind}-{digest}{_SUFFIXES[kind]}"

    def has(self, kind: str, key_parts: Sequence[KeyPart]) -> bool:
        return self.path_for(kind, key_parts).exists()

    def checksum_path(self, path: Path) -> Path:
        """The sidecar path recording ``path``'s expected SHA-256."""
        return path.with_suffix(path.suffix + CHECKSUM_SUFFIX)

    @property
    def quarantine_directory(self) -> Path:
        return self.directory / QUARANTINE_DIR

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def _write_checksum(self, path: Path) -> None:
        sidecar = self.checksum_path(path)
        tmp = sidecar.with_suffix(sidecar.suffix + f".tmp{os.getpid()}")
        tmp.write_text(_file_digest(path) + "\n", encoding="utf-8")
        os.replace(tmp, sidecar)

    def _verify(self, path: Path) -> bool:
        """Whether ``path`` matches its sidecar (absent sidecar passes)."""
        sidecar = self.checksum_path(path)
        if not sidecar.exists():
            return True
        try:
            expected = sidecar.read_text(encoding="utf-8").strip()
        except OSError:
            return True
        return _file_digest(path) == expected

    def quarantine(self, path: Path) -> None:
        """Move a corrupt entry (and its sidecar) aside with a warning."""
        self.quarantine_directory.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, self.quarantine_directory / path.name)
        except OSError:
            path.unlink(missing_ok=True)
        sidecar = self.checksum_path(path)
        if sidecar.exists():
            try:
                os.replace(
                    sidecar, self.quarantine_directory / sidecar.name
                )
            except OSError:
                sidecar.unlink(missing_ok=True)
        warnings.warn(
            f"quarantined corrupt cache entry {path.name}; it will be "
            "recomputed on the next request",
            RuntimeWarning,
            stacklevel=3,
        )

    def _readable(self, path: Path) -> bool:
        """Integrity gate every load passes through.

        Injected ``cache_read`` faults and checksum mismatches both
        surface as a miss: the former silently (it models a transient
        read error), the latter via quarantine.
        """
        try:
            maybe_inject("cache_read", path.name)
        except FaultInjected:
            return False
        if not self._verify(path):
            self.quarantine(path)
            return False
        return True

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------
    def load_dataset(self, key_parts: Sequence[KeyPart]):
        """The cached dataset for this identity, or ``None`` on a miss."""
        path = self.path_for("dataset", key_parts)
        if not path.exists() or not self._readable(path):
            return None
        from repro.datasets.csvio import load_csv

        try:
            return load_csv(path)
        except ReproError:
            self.quarantine(path)
            return None

    def store_dataset(self, key_parts: Sequence[KeyPart], dataset) -> Path:
        from repro.datasets.csvio import save_csv

        path = self.path_for("dataset", key_parts)
        try:
            maybe_inject("cache_write", path.name)
        except FaultInjected:
            warnings.warn(
                f"cache write for {path.name} failed (injected); "
                "continuing uncached",
                RuntimeWarning,
                stacklevel=2,
            )
            return path
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        save_csv(dataset, tmp)
        os.replace(tmp, path)
        self._write_checksum(path)
        return path

    # ------------------------------------------------------------------
    # Fitted models
    # ------------------------------------------------------------------
    def load_model(self, key_parts: Sequence[KeyPart]):
        """The cached fitted model for this identity, or ``None``.

        Dispatches on the stored document's ``format`` key, so both
        single trees (``repro-m5prime``) and forests (``repro-forest``)
        round-trip through the same cache slot.
        """
        path = self.path_for("model", key_parts)
        if not path.exists() or not self._readable(path):
            return None
        from repro.serve.forest_io import load_any_model

        try:
            return load_any_model(path)
        except ReproError:
            self.quarantine(path)
            return None

    def store_model(self, key_parts: Sequence[KeyPart], model) -> Path:
        from repro.serve.forest_io import store_any_model

        path = self.path_for("model", key_parts)
        try:
            maybe_inject("cache_write", path.name)
        except FaultInjected:
            warnings.warn(
                f"cache write for {path.name} failed (injected); "
                "continuing uncached",
                RuntimeWarning,
                stacklevel=2,
            )
            return path
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(store_any_model(model), handle, indent=1)
        os.replace(tmp, path)
        self._write_checksum(path)
        return path

    # ------------------------------------------------------------------
    # Generic JSON artifacts (calibrations, certificates, reports)
    # ------------------------------------------------------------------
    def load_json(self, key_parts: Sequence[KeyPart]):
        """The cached JSON payload for this identity, or ``None``.

        A payload that fails to parse is quarantined and reported as a
        miss, exactly like a corrupt dataset or model entry.
        """
        path = self.path_for("json", key_parts)
        if not path.exists() or not self._readable(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            self.quarantine(path)
            return None

    def store_json(self, key_parts: Sequence[KeyPart], payload) -> Path:
        path = self.path_for("json", key_parts)
        try:
            maybe_inject("cache_write", path.name)
        except FaultInjected:
            warnings.warn(
                f"cache write for {path.name} failed (injected); "
                "continuing uncached",
                RuntimeWarning,
                stacklevel=2,
            )
            return path
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        os.replace(tmp, path)
        self._write_checksum(path)
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _entries(self) -> List[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(
            p for p in self.directory.iterdir()
            if p.is_file()
            and not p.name.endswith(CHECKSUM_SUFFIX)
            and any(p.name.startswith(k + "-") for k in _SUFFIXES)
        )

    def _quarantined(self) -> List[Path]:
        quarantine = self.quarantine_directory
        if not quarantine.is_dir():
            return []
        return sorted(
            p for p in quarantine.iterdir()
            if p.is_file() and not p.name.endswith(CHECKSUM_SUFFIX)
        )

    def scan(self) -> List[EntryStatus]:
        """Integrity verdict per live entry (``repro lint --cache-dir``).

        ``ok`` — bytes match the sidecar; ``no-checksum`` — a
        pre-hardening entry with no sidecar; ``mismatch`` — bytes
        disagree with the sidecar (corruption; loads would quarantine).
        """
        verdicts = []
        for path in self._entries():
            sidecar = self.checksum_path(path)
            if not sidecar.exists():
                verdicts.append(EntryStatus(path.name, STATUS_NO_CHECKSUM))
            elif self._verify(path):
                verdicts.append(EntryStatus(path.name, STATUS_OK))
            else:
                verdicts.append(EntryStatus(path.name, STATUS_MISMATCH))
        return verdicts

    def info(self) -> CacheInfo:
        entries = self._entries()
        return CacheInfo(
            directory=self.directory,
            n_entries=len(entries),
            total_bytes=sum(p.stat().st_size for p in entries),
            entries=tuple(p.name for p in entries),
            n_quarantined=len(self._quarantined()),
        )

    def clear(self) -> int:
        """Delete every cached artifact; returns the number removed.

        Checksum sidecars and quarantined copies are deleted too but
        not counted — the count stays "artifacts removed".
        """
        removed = 0
        for path in self._entries():
            self.checksum_path(path).unlink(missing_ok=True)
            path.unlink(missing_ok=True)
            removed += 1
        quarantine = self.quarantine_directory
        if quarantine.is_dir():
            for path in quarantine.iterdir():
                if path.is_file():
                    path.unlink(missing_ok=True)
            try:
                quarantine.rmdir()
            except OSError:
                pass
        return removed


def get_artifact_cache(directory: Optional[Path] = None) -> ArtifactCache:
    """The artifact cache rooted at ``directory`` (or the default root)."""
    return ArtifactCache(directory)

"""Content-addressed on-disk artifact cache.

Simulating the suite dataset and fitting paper-regime trees are the two
expensive steps every experiment, benchmark and CLI session repeats.
This cache stores both — section datasets as CSV, fitted models as JSON
— under names derived from a stable hash of everything that determines
their content: the :class:`~repro.experiments.config.ExperimentConfig`
fields, the workload and machine fingerprints, and the package version.
Identical inputs always map to the same file, so concurrent sessions
share artifacts; any input change produces a different digest, so stale
artifacts are never served (they are merely orphaned until ``repro
cache clear``).

Layout (under :func:`repro.experiments.config.default_cache_dir`, i.e.
``~/.cache/repro`` or ``$REPRO_CACHE_DIR``)::

    artifacts/
        dataset-<digest>.csv     simulated section datasets
        model-<digest>.json      fitted model trees

Corrupt entries are treated as misses and deleted, never raised.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro._util import stable_hash
from repro.errors import ReproError

KeyPart = Union[str, int, float]

_SUFFIXES = {"dataset": ".csv", "model": ".json", "json": ".json"}


@dataclass(frozen=True)
class CacheInfo:
    """A snapshot of the cache directory's contents."""

    directory: Path
    n_entries: int
    total_bytes: int
    entries: Sequence[str]

    def render(self) -> str:
        lines = [
            f"cache directory: {self.directory}",
            f"entries: {self.n_entries}",
            f"total size: {self.total_bytes / 1024:.1f} KiB",
        ]
        for name in self.entries:
            lines.append(f"  {name}")
        return "\n".join(lines)


class ArtifactCache:
    """Content-addressed store for datasets and fitted models.

    Args:
        directory: Cache root; defaults to ``<default_cache_dir>/artifacts``.
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        if directory is None:
            from repro.experiments.config import default_cache_dir

            directory = default_cache_dir() / "artifacts"
        self.directory = Path(directory)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, kind: str, key_parts: Sequence[KeyPart]) -> Path:
        """The (deterministic) file path for an artifact identity.

        ``kind`` namespaces the digest — a dataset and a model derived
        from the same configuration never collide.
        """
        if kind not in _SUFFIXES:
            raise ReproError(
                f"unknown artifact kind {kind!r}; choose from {sorted(_SUFFIXES)}"
            )
        digest = stable_hash([kind] + [str(p) for p in key_parts])
        return self.directory / f"{kind}-{digest}{_SUFFIXES[kind]}"

    def has(self, kind: str, key_parts: Sequence[KeyPart]) -> bool:
        return self.path_for(kind, key_parts).exists()

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------
    def load_dataset(self, key_parts: Sequence[KeyPart]):
        """The cached dataset for this identity, or ``None`` on a miss."""
        path = self.path_for("dataset", key_parts)
        if not path.exists():
            return None
        from repro.datasets.csvio import load_csv

        try:
            return load_csv(path)
        except ReproError:
            path.unlink(missing_ok=True)
            return None

    def store_dataset(self, key_parts: Sequence[KeyPart], dataset) -> Path:
        from repro.datasets.csvio import save_csv

        path = self.path_for("dataset", key_parts)
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        save_csv(dataset, tmp)
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # Fitted models
    # ------------------------------------------------------------------
    def load_model(self, key_parts: Sequence[KeyPart]):
        """The cached fitted model for this identity, or ``None``."""
        path = self.path_for("model", key_parts)
        if not path.exists():
            return None
        from repro.core.tree.serialize import load_model

        try:
            return load_model(path)
        except ReproError:
            path.unlink(missing_ok=True)
            return None

    def store_model(self, key_parts: Sequence[KeyPart], model) -> Path:
        from repro.core.tree.serialize import model_to_dict

        path = self.path_for("model", key_parts)
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(model_to_dict(model), handle, indent=1)
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _entries(self) -> List[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(
            p for p in self.directory.iterdir()
            if p.is_file() and any(
                p.name.startswith(k + "-") for k in _SUFFIXES
            )
        )

    def info(self) -> CacheInfo:
        entries = self._entries()
        return CacheInfo(
            directory=self.directory,
            n_entries=len(entries),
            total_bytes=sum(p.stat().st_size for p in entries),
            entries=tuple(p.name for p in entries),
        )

    def clear(self) -> int:
        """Delete every cached artifact; returns the number removed."""
        removed = 0
        for path in self._entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed


def get_artifact_cache(directory: Optional[Path] = None) -> ArtifactCache:
    """The artifact cache rooted at ``directory`` (or the default root)."""
    return ArtifactCache(directory)

"""Pluggable map-style executor for the package's hot loops.

Every repeated-fit path in the reproduction — cross-validation folds,
bagged ensemble members, per-workload suite simulation — is a map of an
independent, deterministic task over a list of inputs.  This module
gives those paths one shared knob:

* ``n_jobs=1`` (the default) runs the plain serial loop, byte-for-byte
  the behavior the package always had;
* ``n_jobs=N`` fans the map out over ``N`` workers;
* ``n_jobs=-1`` uses every available core;
* ``n_jobs=None`` defers to the ``REPRO_JOBS`` environment variable
  (falling back to serial), so the CLI and CI can set a machine-wide
  default without touching call sites.

The backend is chosen by :func:`resolve_executor`: processes for
CPU-bound work (the default when ``n_jobs > 1``), threads when the
mapped function or its arguments cannot be pickled, or an explicit
override through ``REPRO_EXECUTOR`` (``serial`` / ``threads`` /
``processes``).  Whatever the backend, results come back in input
order, so callers are agnostic to where the work actually ran.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.errors import ConfigError

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable forcing a backend (serial / threads / processes).
EXECUTOR_ENV = "REPRO_EXECUTOR"

EXECUTOR_KINDS = ("serial", "threads", "processes")

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(n_jobs: Optional[int] = None) -> int:
    """Normalize an ``n_jobs`` request to a concrete worker count.

    ``None`` consults ``REPRO_JOBS`` (defaulting to 1), ``-1`` means one
    worker per available core, and any positive integer is taken as-is.
    Anything else raises :class:`repro.errors.ConfigError`.
    """
    if n_jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ConfigError(
                f"{JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    if n_jobs == -1:
        return max(os.cpu_count() or 1, 1)
    if not isinstance(n_jobs, int) or n_jobs < 1:
        raise ConfigError(
            f"n_jobs must be a positive integer or -1, got {n_jobs!r}"
        )
    return n_jobs


def resolve_executor(kind: Optional[str] = None, n_jobs: int = 1) -> str:
    """Pick the backend: explicit ``kind`` > ``REPRO_EXECUTOR`` > default.

    The default is ``serial`` for one worker and ``processes`` otherwise
    (tree fitting is CPU-bound Python, so threads only help when the
    work releases the GIL).
    """
    chosen = kind or os.environ.get(EXECUTOR_ENV, "").strip() or None
    if chosen is None:
        return "serial" if n_jobs <= 1 else "processes"
    if chosen not in EXECUTOR_KINDS:
        raise ConfigError(
            f"executor must be one of {EXECUTOR_KINDS}, got {chosen!r}"
        )
    return chosen


def _picklable(*objects) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    n_jobs: Optional[int] = None,
    executor: Optional[str] = None,
    retry=None,
    fail_policy=None,
    task_timeout: Optional[float] = None,
    keys: Optional[Sequence[str]] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, preserving order.

    Args:
        fn: The task.  It must be deterministic given its argument; any
            randomness must come in through the argument (see
            :func:`repro.parallel.seeding.spawn_seeds`), which is what
            makes serial and parallel runs bit-identical.
        items: Task inputs.
        n_jobs: Worker count (see :func:`resolve_jobs`).
        executor: Backend override (see :func:`resolve_executor`).
        retry: Optional :class:`repro.resilience.RetryPolicy`.  Setting
            any of ``retry``/``fail_policy``/``task_timeout`` routes the
            map through :func:`repro.resilience.resilient_map`: each
            unit is retried with backoff, bounded by the timeout, and
            exhausted units are handled per the failure policy (raised
            under ``fail_fast``, returned in place as
            :class:`~repro.resilience.TaskFailure` records otherwise).
        fail_policy: Optional :class:`repro.resilience.FailPolicy`.
        task_timeout: Optional per-unit wall-clock budget in seconds.
        keys: Unit names for failure records and fault identity (only
            meaningful with the resilience arguments).

    Process pools require ``fn`` and every item to be picklable; when
    they are not, the call degrades to a thread pool with a warning
    rather than failing mid-flight.
    """
    if retry is not None or fail_policy is not None or task_timeout is not None:
        from repro.resilience.retry import resilient_map

        return resilient_map(
            fn,
            items,
            n_jobs=n_jobs,
            executor=executor,
            retry=retry,
            fail_policy=fail_policy,
            task_timeout=task_timeout,
            keys=keys,
        )
    jobs = resolve_jobs(n_jobs)
    items = list(items)
    kind = resolve_executor(executor, jobs)
    if kind != "serial":
        jobs = min(jobs, len(items)) or 1
    if kind == "serial" or jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if kind == "processes" and not _picklable(fn, *items):
        warnings.warn(
            "parallel_map: task is not picklable; falling back to threads",
            RuntimeWarning,
            stacklevel=2,
        )
        kind = "threads"
    if kind == "processes":
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(fn, items))
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, items))


def parallel_starmap(
    fn: Callable[..., R],
    argument_tuples: Iterable[tuple],
    n_jobs: Optional[int] = None,
    executor: Optional[str] = None,
    retry=None,
    fail_policy=None,
    task_timeout: Optional[float] = None,
    keys: Optional[Sequence[str]] = None,
) -> List[R]:
    """:func:`parallel_map` for functions of several arguments."""
    return parallel_map(
        _StarCall(fn),
        list(argument_tuples),
        n_jobs=n_jobs,
        executor=executor,
        retry=retry,
        fail_policy=fail_policy,
        task_timeout=task_timeout,
        keys=keys,
    )


class _StarCall:
    """Picklable ``fn(*args)`` adapter (lambdas would break process pools)."""

    def __init__(self, fn: Callable[..., R]) -> None:
        self.fn = fn

    def __call__(self, args: tuple) -> R:
        return self.fn(*args)

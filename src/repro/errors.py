"""Exception hierarchy for the repro package.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch package failures with a single
``except`` clause while letting genuine bugs (``TypeError`` and friends)
propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class DataError(ReproError):
    """A dataset is malformed: shape mismatch, NaNs, empty, bad header."""


class MissingEventError(DataError):
    """A raw counter snapshot lacks an event required by a metric formula."""

    def __init__(self, event_name: str) -> None:
        super().__init__(f"required hardware event {event_name!r} is missing")
        self.event_name = event_name


class NotFittedError(ReproError):
    """A model method that requires ``fit`` was called before fitting."""


class ConfigError(ReproError):
    """A configuration object holds an invalid or inconsistent value."""


class ParseError(ReproError):
    """A serialized artifact (ARFF, CSV, report) could not be parsed."""


class LintError(ReproError):
    """The lint subsystem was misused (no inputs, bad rule id, bad config)."""


class RetryExhaustedError(ReproError):
    """A task kept failing after every allowed retry attempt.

    Raised by the resilience layer when a unit of work (a fold, a
    workload simulation, a cache write) has consumed its full retry
    budget, or when a ``min_success_fraction`` failure policy finds too
    few surviving units to produce a trustworthy result.  The original
    error is chained as ``__cause__``.
    """


class TaskTimeoutError(ReproError):
    """A task exceeded its per-task wall-clock timeout.

    The resilience layer treats a timeout like any other transient
    failure: the attempt is abandoned, retried under the active
    :class:`~repro.resilience.retry.RetryPolicy`, and finally recorded
    as a :class:`~repro.resilience.retry.TaskFailure` or re-raised,
    depending on the failure policy.
    """


class CheckpointError(ReproError):
    """A checkpoint could not be written or the store was misused.

    Unreadable or corrupt checkpoints on *load* are never raised — they
    are quarantined and recomputed — so this error signals caller bugs
    (bad run keys, unserializable payloads), not disk corruption.
    """


class ServeError(ReproError):
    """The serving layer was misconfigured or a request is invalid.

    Raised for bad server configuration (ports, batch limits) and for
    malformed request payloads; the HTTP layer maps it to a 400-class
    JSON error envelope rather than a stack trace.
    """


class OverloadError(ServeError):
    """A request was shed before evaluation to protect the server.

    Raised by admission control when the server is draining, over its
    in-flight budget, or in degraded mode.  The HTTP layer maps it to a
    503 with a ``Retry-After`` header and a machine-readable ``reason``
    in the error envelope, so well-behaved clients back off instead of
    piling on.
    """

    def __init__(
        self, message: str, reason: str = "overload",
        retry_after: float = 1.0,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


class FleetError(ServeError):
    """The serving fleet was misconfigured or a worker misbehaved.

    Covers invalid fleet topology (worker counts, ports), workers that
    never become healthy, and supervision failures that are bugs rather
    than the routine crashes the supervisor absorbs.
    """


class RegistryError(ServeError):
    """The model registry refused an operation.

    Unknown names/versions, malformed manifests, publishing unfitted
    models, and blobs that failed their integrity check all land here —
    never a raw ``KeyError`` or a silently wrong model.
    """


class StaleCalibrationError(ReproError):
    """A fastsim calibration artifact no longer matches the code it models.

    Raised when the fast suite engine is handed a calibration whose
    machine-config or workload-suite fingerprint disagrees with the
    current configuration: predictions from a stale residual model are
    silently wrong, so the engine refuses to run rather than degrade.
    """


class FaultInjected(ReproError):
    """An artificial failure raised by the fault-injection harness.

    Only ever raised when ``REPRO_FAULTS`` names the site; production
    code paths treat it exactly like the real failure it simulates, so
    chaos tests exercise the same retry/quarantine/skip machinery that
    genuine crashes would.
    """

    def __init__(self, site: str, key: str, occurrence: int) -> None:
        super().__init__(
            f"injected fault at site {site!r} (key {key!r}, "
            f"occurrence {occurrence})"
        )
        self.site = site
        self.key = key
        self.occurrence = occurrence

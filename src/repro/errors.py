"""Exception hierarchy for the repro package.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch package failures with a single
``except`` clause while letting genuine bugs (``TypeError`` and friends)
propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class DataError(ReproError):
    """A dataset is malformed: shape mismatch, NaNs, empty, bad header."""


class MissingEventError(DataError):
    """A raw counter snapshot lacks an event required by a metric formula."""

    def __init__(self, event_name: str) -> None:
        super().__init__(f"required hardware event {event_name!r} is missing")
        self.event_name = event_name


class NotFittedError(ReproError):
    """A model method that requires ``fit`` was called before fitting."""


class ConfigError(ReproError):
    """A configuration object holds an invalid or inconsistent value."""


class ParseError(ReproError):
    """A serialized artifact (ARFF, CSV, report) could not be parsed."""


class LintError(ReproError):
    """The lint subsystem was misused (no inputs, bad rule id, bad config)."""

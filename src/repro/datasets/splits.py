"""Train/test and k-fold partitioning utilities.

The paper evaluates with 10-fold cross validation [24]; these helpers
produce the deterministic, disjoint, size-balanced folds that procedure
requires.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro._util import RandomState, check_random_state
from repro.datasets.dataset import Dataset
from repro.errors import ConfigError


def kfold_indices(
    n_instances: int, n_folds: int, rng: RandomState = None
) -> List[np.ndarray]:
    """Split ``range(n_instances)`` into ``n_folds`` disjoint index arrays.

    Fold sizes differ by at most one.  Every instance appears in exactly
    one fold.
    """
    if n_folds < 2:
        raise ConfigError(f"n_folds must be at least 2, got {n_folds}")
    if n_instances < n_folds:
        raise ConfigError(
            f"cannot make {n_folds} folds from {n_instances} instances"
        )
    generator = check_random_state(rng)
    order = generator.permutation(n_instances)
    return [np.sort(fold) for fold in np.array_split(order, n_folds)]


def kfold_splits(
    n_instances: int, n_folds: int, rng: RandomState = None
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """(train_indices, test_indices) pairs for each of ``n_folds`` folds."""
    folds = kfold_indices(n_instances, n_folds, rng)
    splits = []
    for i, test in enumerate(folds):
        train = np.concatenate([f for j, f in enumerate(folds) if j != i])
        splits.append((np.sort(train), test))
    return splits


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.3, rng: RandomState = None
) -> Tuple[Dataset, Dataset]:
    """Random disjoint (train, test) datasets with the given test share."""
    if not 0.0 < test_fraction < 1.0:
        raise ConfigError(
            f"test_fraction must lie strictly in (0, 1), got {test_fraction}"
        )
    generator = check_random_state(rng)
    n_test = int(round(dataset.n_instances * test_fraction))
    n_test = min(max(n_test, 1), dataset.n_instances - 1)
    order = generator.permutation(dataset.n_instances)
    test_idx = np.sort(order[:n_test])
    train_idx = np.sort(order[n_test:])
    return dataset.subset(train_idx), dataset.subset(test_idx)

"""The :class:`Dataset` container used throughout the package.

A dataset is a plain attribute matrix plus a target vector — the same
shape of data the paper feeds WEKA: one row per workload section, one
column per Table I metric, CPI as the dependent variable.  Optional
metadata columns (workload name, section index) ride along so analyses
can attribute tree leaves back to benchmarks, as the paper does for
429.mcf and 436.cactusADM.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro._util import as_float_matrix, as_float_vector, check_matching_lengths
from repro.errors import DataError

MetaMap = Mapping[str, Sequence]


class Dataset:
    """An immutable table of sections: attributes ``X``, target ``y``.

    Attributes:
        X: Float matrix of shape ``(n_instances, n_attributes)``.
        y: Float target vector of length ``n_instances``.
        attributes: Attribute (column) names, one per column of ``X``.
        target_name: Name of the dependent variable (``"CPI"`` by default).
        meta: Optional per-instance metadata arrays (e.g. ``"workload"``).
    """

    def __init__(
        self,
        X: Sequence,
        y: Sequence,
        attributes: Sequence[str],
        target_name: str = "CPI",
        meta: Optional[MetaMap] = None,
    ) -> None:
        self.X = as_float_matrix(X)
        self.y = as_float_vector(y)
        check_matching_lengths(self.X, self.y)
        self.attributes: Tuple[str, ...] = tuple(str(a) for a in attributes)
        if len(self.attributes) != self.X.shape[1]:
            raise DataError(
                f"{len(self.attributes)} attribute names for "
                f"{self.X.shape[1]} columns"
            )
        if len(set(self.attributes)) != len(self.attributes):
            raise DataError("attribute names must be unique")
        self.target_name = str(target_name)
        if self.target_name in self.attributes:
            raise DataError(
                f"target {self.target_name!r} also appears as an attribute"
            )
        self.meta: Dict[str, np.ndarray] = {}
        if meta:
            for key, values in meta.items():
                arr = np.asarray(values, dtype=object)
                if arr.shape[0] != self.n_instances:
                    raise DataError(
                        f"meta column {key!r} has {arr.shape[0]} values for "
                        f"{self.n_instances} instances"
                    )
                self.meta[str(key)] = arr
        self._index = {name: i for i, name in enumerate(self.attributes)}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_instances(self) -> int:
        """Number of rows (workload sections)."""
        return self.X.shape[0]

    @property
    def n_attributes(self) -> int:
        """Number of predictor columns."""
        return self.X.shape[1]

    def attribute_index(self, name: str) -> int:
        """Column index of attribute ``name`` (raises on unknown names)."""
        try:
            return self._index[name]
        except KeyError:
            raise DataError(f"unknown attribute {name!r}") from None

    def column(self, name: str) -> np.ndarray:
        """The values of one attribute column (a copy-free view)."""
        return self.X[:, self.attribute_index(name)]

    def __len__(self) -> int:
        return self.n_instances

    def __repr__(self) -> str:
        return (
            f"Dataset(n_instances={self.n_instances}, "
            f"n_attributes={self.n_attributes}, target={self.target_name!r})"
        )

    # ------------------------------------------------------------------
    # Construction and transformation
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Mapping[str, float]],
        attributes: Sequence[str],
        target_name: str = "CPI",
        meta: Optional[MetaMap] = None,
    ) -> "Dataset":
        """Build a dataset from dict rows containing attributes and target."""
        if not rows:
            raise DataError("cannot build a dataset from zero rows")
        X = [[row[a] for a in attributes] for row in rows]
        y = [row[target_name] for row in rows]
        return cls(X, y, attributes, target_name, meta)

    def subset(self, indices: Union[Sequence[int], np.ndarray]) -> "Dataset":
        """A new dataset restricted to ``indices`` (bool mask or int index)."""
        idx = np.asarray(indices)
        meta = {key: values[idx] for key, values in self.meta.items()}
        return Dataset(
            self.X[idx], self.y[idx], self.attributes, self.target_name, meta
        )

    def select_attributes(self, names: Sequence[str]) -> "Dataset":
        """A new dataset keeping only the named attribute columns."""
        cols = [self.attribute_index(n) for n in names]
        return Dataset(
            self.X[:, cols], self.y, tuple(names), self.target_name, self.meta
        )

    def with_meta(self, **columns: Sequence) -> "Dataset":
        """A copy with additional metadata columns attached."""
        meta = dict(self.meta)
        for key, values in columns.items():
            meta[key] = values
        return Dataset(self.X, self.y, self.attributes, self.target_name, meta)

    @staticmethod
    def concat(datasets: Sequence["Dataset"]) -> "Dataset":
        """Stack several compatible datasets (same attributes and target)."""
        if not datasets:
            raise DataError("cannot concatenate zero datasets")
        first = datasets[0]
        for other in datasets[1:]:
            if other.attributes != first.attributes:
                raise DataError("datasets disagree on attribute names")
            if other.target_name != first.target_name:
                raise DataError("datasets disagree on target name")
        X = np.vstack([d.X for d in datasets])
        y = np.concatenate([d.y for d in datasets])
        meta: Dict[str, np.ndarray] = {}
        shared_keys = set(first.meta)
        for other in datasets[1:]:
            shared_keys &= set(other.meta)
        for key in shared_keys:
            meta[key] = np.concatenate([d.meta[key] for d in datasets])
        return Dataset(X, y, first.attributes, first.target_name, meta)

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        """A row-permuted copy (used before cross validation)."""
        order = rng.permutation(self.n_instances)
        return self.subset(order)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Dict[str, float]]:
        """Per-column summary statistics (min/mean/max/sd), target included."""
        summary: Dict[str, Dict[str, float]] = {}
        columns: Iterable[Tuple[str, np.ndarray]] = list(
            zip(self.attributes, self.X.T)
        ) + [(self.target_name, self.y)]
        for name, values in columns:
            summary[name] = {
                "min": float(np.min(values)),
                "mean": float(np.mean(values)),
                "max": float(np.max(values)),
                "sd": float(np.std(values)),
            }
        return summary

    def target_sd(self) -> float:
        """Population standard deviation of the target."""
        return float(np.std(self.y))

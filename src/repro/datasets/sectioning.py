"""Equal-instruction sectioning of executions.

The paper divides each workload's execution "into sections of equal
numbers of retired instructions" and derives one training instance per
section.  :class:`SectionRecorder` implements that policy on top of any
source of incremental raw counts (the simulator, a PMU reader, a replayed
trace): feed it count deltas tagged with how many instructions retired,
and it cuts section snapshots at exact instruction boundaries.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.counters.events import INST_RETIRED_ANY
from repro.errors import ConfigError, DataError


def section_boundaries(total_instructions: int, per_section: int) -> List[Tuple[int, int]]:
    """[start, end) instruction ranges for equal-size sections.

    The trailing remainder (a partial section) is dropped, matching the
    equal-population requirement of the paper's methodology.
    """
    if per_section <= 0:
        raise ConfigError(f"per_section must be positive, got {per_section}")
    if total_instructions < 0:
        raise ConfigError("total_instructions must be non-negative")
    n_sections = total_instructions // per_section
    return [(i * per_section, (i + 1) * per_section) for i in range(n_sections)]


class SectionRecorder:
    """Accumulates raw count deltas and emits equal-instruction sections.

    Example:
        >>> recorder = SectionRecorder(instructions_per_section=1000)
        >>> recorder.record({"INST_RETIRED.ANY": 600, "L1I_MISSES": 3})
        >>> recorder.record({"INST_RETIRED.ANY": 600, "L1I_MISSES": 5})
        >>> len(recorder.sections)
        1

    Deltas that straddle a boundary are split proportionally, which is the
    standard approximation for sampled counter collection.
    """

    def __init__(self, instructions_per_section: int) -> None:
        if instructions_per_section <= 0:
            raise ConfigError(
                "instructions_per_section must be positive, got "
                f"{instructions_per_section}"
            )
        self.instructions_per_section = int(instructions_per_section)
        self.sections: List[Dict[str, float]] = []
        self._pending: Dict[str, float] = {}
        self._pending_instructions = 0.0

    def record(self, delta: Mapping[str, float]) -> None:
        """Add a raw count delta covering ``delta["INST_RETIRED.ANY"]`` instructions."""
        if INST_RETIRED_ANY.name not in delta:
            raise DataError("count delta must include INST_RETIRED.ANY")
        instructions = float(delta[INST_RETIRED_ANY.name])
        if instructions < 0:
            raise DataError("INST_RETIRED.ANY delta must be non-negative")
        if instructions == 0:
            # Pure-stall deltas carry no retired instructions; they belong
            # entirely to the section in progress.
            self._absorb(delta, 1.0)
            return
        consumed = 0.0
        while consumed < instructions:
            room = self.instructions_per_section - self._pending_instructions
            take = min(instructions - consumed, room)
            self._absorb(delta, take / instructions)
            self._pending_instructions += take
            consumed += take
            if self._pending_instructions >= self.instructions_per_section - 1e-9:
                self._cut()

    def _absorb(self, delta: Mapping[str, float], fraction: float) -> None:
        for name, value in delta.items():
            self._pending[name] = self._pending.get(name, 0.0) + value * fraction

    def _cut(self) -> None:
        section = dict(self._pending)
        section[INST_RETIRED_ANY.name] = float(self.instructions_per_section)
        self.sections.append(section)
        self._pending = {}
        self._pending_instructions = 0.0

    @property
    def pending_instructions(self) -> float:
        """Instructions accumulated toward the next (unfinished) section."""
        return self._pending_instructions

    def finalize(self, keep_partial: bool = False) -> List[Dict[str, float]]:
        """Return all completed sections; optionally flush the partial tail.

        Args:
            keep_partial: When true, a final partial section is emitted if
                it covers at least one instruction.  The paper's equal-size
                methodology corresponds to the default ``False``.
        """
        if keep_partial and self._pending_instructions >= 1:
            section = dict(self._pending)
            section[INST_RETIRED_ANY.name] = float(self._pending_instructions)
            self.sections.append(section)
            self._pending = {}
            self._pending_instructions = 0.0
        return list(self.sections)

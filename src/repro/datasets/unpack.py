"""Shared unpacking of estimator training inputs.

Every learner in the package accepts either a :class:`Dataset` or the
raw ``(X, y, attribute_names)`` triple; this helper normalizes both to
validated arrays plus names.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro._util import as_float_matrix
from repro.datasets.dataset import Dataset
from repro.errors import DataError


def unpack_training_data(
    data: Union[Dataset, np.ndarray, Sequence],
    y: Optional[Sequence] = None,
    attribute_names: Optional[Sequence[str]] = None,
) -> Tuple[np.ndarray, np.ndarray, Tuple[str, ...], str]:
    """Normalize training input to ``(X, y, attribute_names, target_name)``."""
    if isinstance(data, Dataset):
        if y is not None or attribute_names is not None:
            raise DataError("pass either a Dataset or (X, y, names), not both")
        return data.X, data.y, data.attributes, data.target_name
    if y is None:
        raise DataError("y is required when fitting from arrays")
    X = as_float_matrix(data)
    targets = np.asarray(y, dtype=np.float64).ravel()
    if X.shape[0] != targets.shape[0]:
        raise DataError("X and y disagree on instance count")
    if attribute_names is None:
        names = tuple(f"X{i + 1}" for i in range(X.shape[1]))
    else:
        names = tuple(str(n) for n in attribute_names)
        if len(names) != X.shape[1]:
            raise DataError("attribute_names must match X's column count")
    return X, targets, names, "Y"

"""CSV reader/writer for section datasets.

Layout: a header row with attribute names, the target as the final
column, optional leading metadata columns marked with a ``#`` prefix
(``#workload``) so spreadsheets stay self-describing.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.datasets.dataset import Dataset
from repro.errors import ParseError

PathLike = Union[str, Path]

_META_PREFIX = "#"


def save_csv(dataset: Dataset, path: PathLike) -> None:
    """Write ``dataset`` (metadata columns first, target last) as CSV."""
    meta_keys = sorted(dataset.meta)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        header = [_META_PREFIX + k for k in meta_keys]
        header += list(dataset.attributes) + [dataset.target_name]
        writer.writerow(header)
        for i in range(dataset.n_instances):
            row: List[str] = [str(dataset.meta[k][i]) for k in meta_keys]
            row += [repr(float(v)) for v in dataset.X[i]]
            row.append(repr(float(dataset.y[i])))
            writer.writerow(row)


def load_csv(path: PathLike) -> Dataset:
    """Read a dataset written by :func:`save_csv` (or any compatible CSV)."""
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ParseError("CSV file is empty") from None
        rows = [row for row in reader if row]
    if len(header) < 2:
        raise ParseError("CSV needs at least one attribute plus a target column")
    meta_keys = [h[1:] for h in header if h.startswith(_META_PREFIX)]
    n_meta = len(meta_keys)
    for h in header[n_meta:]:
        if h.startswith(_META_PREFIX):
            raise ParseError("metadata columns must precede numeric columns")
    attribute_names = header[n_meta:-1]
    target_name = header[-1]
    if not attribute_names:
        raise ParseError("CSV has no attribute columns")

    meta: Dict[str, List[str]] = {k: [] for k in meta_keys}
    numeric: List[List[float]] = []
    for i, row in enumerate(rows):
        if len(row) != len(header):
            raise ParseError(f"row {i} has {len(row)} cells, expected {len(header)}")
        for key, value in zip(meta_keys, row):
            meta[key].append(value)
        try:
            numeric.append([float(v) for v in row[n_meta:]])
        except ValueError as exc:
            raise ParseError(f"row {i}: non-numeric datum ({exc})") from None
    if not numeric:
        raise ParseError("CSV contains no data rows")
    matrix = np.asarray(numeric, dtype=np.float64)
    return Dataset(
        X=matrix[:, :-1],
        y=matrix[:, -1],
        attributes=attribute_names,
        target_name=target_name,
        meta=meta if meta_keys else None,
    )

"""CSV reader/writer for section datasets.

Layout: a header row with attribute names, the target as the final
column, optional leading metadata columns marked with a ``#`` prefix
(``#workload``) so spreadsheets stay self-describing.
"""

from __future__ import annotations

import csv
import io
import math
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.datasets.dataset import Dataset
from repro.errors import DataError, ParseError

PathLike = Union[str, Path]

_META_PREFIX = "#"


def save_csv(dataset: Dataset, path: PathLike) -> None:
    """Write ``dataset`` (metadata columns first, target last) as CSV."""
    meta_keys = sorted(dataset.meta)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        header = [_META_PREFIX + k for k in meta_keys]
        header += list(dataset.attributes) + [dataset.target_name]
        writer.writerow(header)
        for i in range(dataset.n_instances):
            row: List[str] = [str(dataset.meta[k][i]) for k in meta_keys]
            row += [repr(float(v)) for v in dataset.X[i]]
            row.append(repr(float(dataset.y[i])))
            writer.writerow(row)


def load_csv(path: PathLike) -> Dataset:
    """Read a dataset written by :func:`save_csv` (or any compatible CSV).

    Malformed files raise :class:`repro.errors.ParseError` naming the
    path and the offending line — never a raw
    ``ValueError``/``UnicodeDecodeError``/``DataError``.
    """
    try:
        with open(path, "r", encoding="utf-8", newline="") as handle:
            text = handle.read()
    except UnicodeDecodeError as exc:
        raise ParseError(f"{path}: not valid UTF-8 text: {exc}") from None
    return loads_csv(text, source=str(path))


def loads_csv(text: str, source: Optional[str] = None) -> Dataset:
    """Parse CSV text in the :func:`save_csv` layout.

    ``source`` (typically a file path) is prefixed to every error
    message.
    """
    prefix = f"{source}: " if source else ""

    def fail(message: str) -> "ParseError":
        return ParseError(prefix + message)

    reader = csv.reader(io.StringIO(text, newline=""))
    try:
        header = next(reader)
    except StopIteration:
        raise fail("CSV file is empty") from None
    except csv.Error as exc:
        raise fail(f"malformed CSV: {exc}") from None
    try:
        rows = [(reader.line_num, row) for row in reader if row]
    except csv.Error as exc:
        raise fail(f"line {reader.line_num}: malformed CSV: {exc}") from None
    if len(header) < 2:
        raise fail("CSV needs at least one attribute plus a target column")
    meta_keys = [h[1:] for h in header if h.startswith(_META_PREFIX)]
    n_meta = len(meta_keys)
    for h in header[n_meta:]:
        if h.startswith(_META_PREFIX):
            raise fail("metadata columns must precede numeric columns")
    attribute_names = header[n_meta:-1]
    target_name = header[-1]
    if not attribute_names:
        raise fail("CSV has no attribute columns")

    meta: Dict[str, List[str]] = {k: [] for k in meta_keys}
    numeric: List[List[float]] = []
    for line_no, row in rows:
        if len(row) != len(header):
            raise fail(
                f"line {line_no}: row has {len(row)} cells, "
                f"expected {len(header)}"
            )
        for key, value in zip(meta_keys, row):
            meta[key].append(value)
        try:
            values = [float(v) for v in row[n_meta:]]
        except ValueError as exc:
            raise fail(f"line {line_no}: non-numeric datum ({exc})") from None
        for column, value in enumerate(values):
            if not math.isfinite(value):
                name = (attribute_names + [target_name])[column]
                raise fail(
                    f"line {line_no}: non-finite value {value!r} in "
                    f"column {name!r}"
                )
        numeric.append(values)
    if not numeric:
        raise fail("CSV contains no data rows")
    matrix = np.asarray(numeric, dtype=np.float64)
    try:
        return Dataset(
            X=matrix[:, :-1],
            y=matrix[:, -1],
            attributes=attribute_names,
            target_name=target_name,
            meta=meta if meta_keys else None,
        )
    except DataError as exc:
        raise fail(str(exc)) from None

"""Dataset layer: section tables, interchange formats and splits."""

from repro.datasets.dataset import Dataset
from repro.datasets.sectioning import SectionRecorder, section_boundaries
from repro.datasets.splits import kfold_indices, train_test_split
from repro.datasets.arff import dumps_arff, load_arff, loads_arff, save_arff
from repro.datasets.csvio import load_csv, loads_csv, save_csv
from repro.datasets.profile import DatasetProfile, profile_dataset
from repro.datasets import synthetic

__all__ = [
    "Dataset",
    "DatasetProfile",
    "SectionRecorder",
    "kfold_indices",
    "dumps_arff",
    "load_arff",
    "loads_arff",
    "profile_dataset",
    "load_csv",
    "loads_csv",
    "save_arff",
    "save_csv",
    "section_boundaries",
    "synthetic",
    "train_test_split",
]

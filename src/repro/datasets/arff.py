"""Minimal ARFF reader/writer for numeric relations.

The paper trained its models in WEKA; ARFF is WEKA's native interchange
format, so datasets written here can be loaded into WEKA (and WEKA
exports re-imported) for a side-by-side check of the M5' implementation.
Only numeric attributes are supported — all Table I metrics are numeric.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, TextIO, Union

import numpy as np

from repro.datasets.dataset import Dataset
from repro.errors import ParseError

PathLike = Union[str, Path]


def save_arff(dataset: Dataset, path: PathLike, relation: str = "sections") -> None:
    """Write ``dataset`` as an ARFF file, target as the last attribute."""
    with open(path, "w", encoding="utf-8") as handle:
        _write(dataset, handle, relation)


def dumps_arff(dataset: Dataset, relation: str = "sections") -> str:
    """Render ``dataset`` as an ARFF string."""
    buffer = io.StringIO()
    _write(dataset, buffer, relation)
    return buffer.getvalue()


def _write(dataset: Dataset, handle: TextIO, relation: str) -> None:
    handle.write(f"@relation {_quote(relation)}\n\n")
    for name in dataset.attributes:
        handle.write(f"@attribute {_quote(name)} numeric\n")
    handle.write(f"@attribute {_quote(dataset.target_name)} numeric\n\n")
    handle.write("@data\n")
    for row, target in zip(dataset.X, dataset.y):
        values = [repr(float(v)) for v in row] + [repr(float(target))]
        handle.write(",".join(values) + "\n")


def _quote(token: str) -> str:
    if any(ch in token for ch in " ,{}%'\""):
        escaped = token.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    return token


def load_arff(path: PathLike) -> Dataset:
    """Read a numeric ARFF file; the last attribute becomes the target."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads_arff(handle.read())


def loads_arff(text: str) -> Dataset:
    """Parse ARFF text (numeric attributes only)."""
    names: List[str] = []
    rows: List[List[float]] = []
    in_data = False
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("%"):
            continue
        lowered = line.lower()
        if not in_data:
            if lowered.startswith("@relation"):
                continue
            if lowered.startswith("@attribute"):
                names.append(_parse_attribute(line, line_no))
                continue
            if lowered.startswith("@data"):
                in_data = True
                continue
            raise ParseError(f"line {line_no}: unexpected header line {line!r}")
        try:
            rows.append([float(v) for v in line.split(",")])
        except ValueError as exc:
            raise ParseError(f"line {line_no}: non-numeric datum ({exc})") from None
    if len(names) < 2:
        raise ParseError("ARFF needs at least one attribute plus a target")
    if not rows:
        raise ParseError("ARFF contains no data rows")
    width = len(names)
    for i, row in enumerate(rows):
        if len(row) != width:
            raise ParseError(f"data row {i} has {len(row)} values, expected {width}")
    matrix = np.asarray(rows, dtype=np.float64)
    return Dataset(
        X=matrix[:, :-1],
        y=matrix[:, -1],
        attributes=names[:-1],
        target_name=names[-1],
    )


def _parse_attribute(line: str, line_no: int) -> str:
    body = line[len("@attribute"):].strip()
    if body.startswith("'"):
        end = body.find("'", 1)
        while end != -1 and body[end - 1] == "\\":
            end = body.find("'", end + 1)
        if end == -1:
            raise ParseError(f"line {line_no}: unterminated quoted attribute name")
        name = body[1:end].replace("\\'", "'").replace("\\\\", "\\")
        kind = body[end + 1:].strip()
    else:
        parts = body.split(None, 1)
        if len(parts) != 2:
            raise ParseError(f"line {line_no}: malformed @attribute line")
        name, kind = parts
    if kind.strip().lower() not in ("numeric", "real", "integer"):
        raise ParseError(
            f"line {line_no}: only numeric attributes are supported, got {kind!r}"
        )
    return name

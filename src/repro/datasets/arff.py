"""Minimal ARFF reader/writer for numeric relations.

The paper trained its models in WEKA; ARFF is WEKA's native interchange
format, so datasets written here can be loaded into WEKA (and WEKA
exports re-imported) for a side-by-side check of the M5' implementation.
Only numeric attributes are supported — all Table I metrics are numeric.
"""

from __future__ import annotations

import io
import math
from pathlib import Path
from typing import List, Optional, TextIO, Union

import numpy as np

from repro.datasets.dataset import Dataset
from repro.errors import DataError, ParseError

PathLike = Union[str, Path]


def save_arff(dataset: Dataset, path: PathLike, relation: str = "sections") -> None:
    """Write ``dataset`` as an ARFF file, target as the last attribute."""
    with open(path, "w", encoding="utf-8") as handle:
        _write(dataset, handle, relation)


def dumps_arff(dataset: Dataset, relation: str = "sections") -> str:
    """Render ``dataset`` as an ARFF string."""
    buffer = io.StringIO()
    _write(dataset, buffer, relation)
    return buffer.getvalue()


def _write(dataset: Dataset, handle: TextIO, relation: str) -> None:
    handle.write(f"@relation {_quote(relation)}\n\n")
    for name in dataset.attributes:
        handle.write(f"@attribute {_quote(name)} numeric\n")
    handle.write(f"@attribute {_quote(dataset.target_name)} numeric\n\n")
    handle.write("@data\n")
    for row, target in zip(dataset.X, dataset.y):
        values = [repr(float(v)) for v in row] + [repr(float(target))]
        handle.write(",".join(values) + "\n")


def _quote(token: str) -> str:
    if any(ch in token for ch in " ,{}%'\""):
        escaped = token.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    return token


def load_arff(path: PathLike) -> Dataset:
    """Read a numeric ARFF file; the last attribute becomes the target.

    Malformed files raise :class:`repro.errors.ParseError` naming the
    path and, where applicable, the offending line — never a raw
    ``ValueError``/``UnicodeDecodeError``/``DataError``.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except UnicodeDecodeError as exc:
        raise ParseError(f"{path}: not valid UTF-8 text: {exc}") from None
    return loads_arff(text, source=str(path))


def loads_arff(text: str, source: Optional[str] = None) -> Dataset:
    """Parse ARFF text (numeric attributes only).

    ``source`` (typically a file path) is prefixed to every error
    message, so loaders layered on top report where the bad bytes came
    from without re-wrapping.
    """
    prefix = f"{source}: " if source else ""

    def fail(message: str) -> "ParseError":
        return ParseError(prefix + message)

    names: List[str] = []
    rows: List[List[float]] = []
    row_lines: List[int] = []
    in_data = False
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("%"):
            continue
        lowered = line.lower()
        if not in_data:
            if lowered.startswith("@relation"):
                continue
            if lowered.startswith("@attribute"):
                names.append(_parse_attribute(line, line_no, prefix))
                continue
            if lowered.startswith("@data"):
                in_data = True
                continue
            raise fail(f"line {line_no}: unexpected header line {line!r}")
        try:
            rows.append([float(v) for v in line.split(",")])
        except ValueError as exc:
            raise fail(f"line {line_no}: non-numeric datum ({exc})") from None
        row_lines.append(line_no)
    if len(names) < 2:
        raise fail("ARFF needs at least one attribute plus a target")
    if not rows:
        raise fail("ARFF contains no data rows")
    width = len(names)
    for row, line_no in zip(rows, row_lines):
        if len(row) != width:
            raise fail(
                f"line {line_no}: data row has {len(row)} values, "
                f"expected {width}"
            )
        for column, value in enumerate(row):
            if not math.isfinite(value):
                raise fail(
                    f"line {line_no}: non-finite value {value!r} in "
                    f"column {names[column]!r}"
                )
    matrix = np.asarray(rows, dtype=np.float64)
    try:
        return Dataset(
            X=matrix[:, :-1],
            y=matrix[:, -1],
            attributes=names[:-1],
            target_name=names[-1],
        )
    except DataError as exc:
        # Duplicate attribute names, target/attribute clashes, ... —
        # the text is at fault, so surface it as a parse failure.
        raise fail(str(exc)) from None


def _parse_attribute(line: str, line_no: int, prefix: str = "") -> str:
    body = line[len("@attribute"):].strip()
    if body.startswith("'"):
        end = body.find("'", 1)
        while end != -1 and body[end - 1] == "\\":
            end = body.find("'", end + 1)
        if end == -1:
            raise ParseError(
                f"{prefix}line {line_no}: unterminated quoted attribute name"
            )
        name = body[1:end].replace("\\'", "'").replace("\\\\", "\\")
        kind = body[end + 1:].strip()
    else:
        parts = body.split(None, 1)
        if len(parts) != 2:
            raise ParseError(f"{prefix}line {line_no}: malformed @attribute line")
        name, kind = parts
    if kind.strip().lower() not in ("numeric", "real", "integer"):
        raise ParseError(
            f"{prefix}line {line_no}: only numeric attributes are supported, "
            f"got {kind!r}"
        )
    return name

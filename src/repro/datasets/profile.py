"""Dataset profiling: distribution summaries for section datasets.

Before training, a performance engineer inspects the collected counters:
which events actually fired, how rates distribute per workload, whether
anything looks saturated or dead.  `profile_dataset` condenses that into
a renderable report; the CLI exposes it as ``repro describe``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.datasets.dataset import Dataset
from repro.evaluation.tables import render_table


@dataclass(frozen=True)
class ColumnProfile:
    """Distribution summary of one attribute (or the target)."""

    name: str
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    mean: float
    sd: float
    zero_fraction: float

    @classmethod
    def from_values(cls, name: str, values: np.ndarray) -> "ColumnProfile":
        quartiles = np.percentile(values, [25, 50, 75])
        return cls(
            name=name,
            minimum=float(values.min()),
            p25=float(quartiles[0]),
            median=float(quartiles[1]),
            p75=float(quartiles[2]),
            maximum=float(values.max()),
            mean=float(values.mean()),
            sd=float(values.std()),
            zero_fraction=float(np.mean(values == 0.0)),
        )


@dataclass
class DatasetProfile:
    """Full profile: per-column stats plus per-workload target means."""

    n_instances: int
    columns: List[ColumnProfile]
    target: ColumnProfile
    workload_target_means: Dict[str, float]

    def dead_columns(self) -> List[str]:
        """Attributes that never fire (all zero) — collection red flags."""
        return [c.name for c in self.columns if c.zero_fraction >= 1.0]

    def render(self) -> str:
        rows = [
            [
                column.name,
                f"{column.minimum:.5g}",
                f"{column.median:.5g}",
                f"{column.mean:.5g}",
                f"{column.maximum:.5g}",
                f"{column.sd:.5g}",
                f"{100 * column.zero_fraction:.0f}%",
            ]
            for column in self.columns + [self.target]
        ]
        table = render_table(
            ["column", "min", "median", "mean", "max", "sd", "zeros"], rows
        )
        lines = [f"{self.n_instances} sections", "", table]
        if self.workload_target_means:
            lines.append("")
            lines.append(f"per-workload mean {self.target.name}:")
            for name, value in sorted(self.workload_target_means.items()):
                lines.append(f"  {name:<18} {value:8.3f}")
        dead = self.dead_columns()
        if dead:
            lines.append("")
            lines.append("WARNING: dead attributes (never fire): " + ", ".join(dead))
        return "\n".join(lines)


def profile_dataset(dataset: Dataset) -> DatasetProfile:
    """Profile every attribute, the target, and per-workload means."""
    columns = [
        ColumnProfile.from_values(name, dataset.column(name))
        for name in dataset.attributes
    ]
    target = ColumnProfile.from_values(dataset.target_name, dataset.y)
    workload_means: Dict[str, float] = {}
    if "workload" in dataset.meta:
        labels = dataset.meta["workload"]
        for name in np.unique(labels):
            workload_means[str(name)] = float(dataset.y[labels == name].mean())
    return DatasetProfile(
        n_instances=dataset.n_instances,
        columns=columns,
        target=target,
        workload_target_means=workload_means,
    )

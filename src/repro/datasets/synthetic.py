"""Synthetic regression problems for testing and for Figure 1.

Figure 1 of the paper shows an example M5' tree predicting
``Y = f(X1, X2, X3, X4)``; :func:`figure1_dataset` generates data with
exactly that structure — a handful of axis-aligned classes, each with its
own linear model — so a correct M5' implementation recovers a small tree
with per-leaf linear models.  The other generators exercise individual
learner behaviours (pure lines, steps, interactions, noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro._util import RandomState, check_random_state
from repro.datasets.dataset import Dataset
from repro.errors import ConfigError


@dataclass(frozen=True)
class PiecewiseRegion:
    """One class of a piecewise-linear ground truth.

    Attributes:
        lower: Inclusive lower corner of the hyper-rectangle (per attribute).
        upper: Exclusive upper corner.
        intercept: Linear model intercept inside the region.
        coefficients: Linear model slopes inside the region.
    """

    lower: Tuple[float, ...]
    upper: Tuple[float, ...]
    intercept: float
    coefficients: Tuple[float, ...]

    def contains(self, x: np.ndarray) -> bool:
        return bool(
            np.all(np.asarray(self.lower) <= x) and np.all(x < np.asarray(self.upper))
        )

    def value(self, x: np.ndarray) -> float:
        return float(self.intercept + np.dot(self.coefficients, x))


def piecewise_linear_dataset(
    regions: Sequence[PiecewiseRegion],
    attributes: Sequence[str],
    n: int,
    noise_sd: float = 0.0,
    rng: RandomState = None,
    low: float = 0.0,
    high: float = 1.0,
) -> Dataset:
    """Sample uniformly and label by the first matching region's model."""
    if not regions:
        raise ConfigError("need at least one region")
    generator = check_random_state(rng)
    p = len(attributes)
    X = generator.uniform(low, high, size=(n, p))
    y = np.empty(n)
    for i, x in enumerate(X):
        for region in regions:
            if region.contains(x):
                y[i] = region.value(x)
                break
        else:
            raise ConfigError(f"regions do not cover sampled point {x!r}")
    if noise_sd > 0:
        y += generator.normal(0.0, noise_sd, size=n)
    return Dataset(X, y, attributes, target_name="Y")


def figure1_regions() -> Tuple[PiecewiseRegion, ...]:
    """The four-attribute piecewise ground truth used for Figure 1.

    Splits on X1 first (the dominant attribute), then X2 / X3, mirroring
    the example tree of the paper's Figure 1 with five leaf models.
    """
    big = 1.0 + 1e-9
    return (
        # X1 < 0.4, X2 < 0.5 -> LM1
        PiecewiseRegion((0, 0, 0, 0), (0.4, 0.5, big, big), 0.3, (1.0, 0.2, 0.0, 0.5)),
        # X1 < 0.4, X2 >= 0.5 -> LM2
        PiecewiseRegion((0, 0.5, 0, 0), (0.4, big, big, big), 1.1, (0.4, 2.0, 0.0, 0.0)),
        # X1 >= 0.4, X3 < 0.3 -> LM3
        PiecewiseRegion((0.4, 0, 0, 0), (big, big, 0.3, big), 2.0, (3.0, 0.0, 1.0, 0.0)),
        # X1 >= 0.4, X3 >= 0.3, X4 < 0.6 -> LM4
        PiecewiseRegion((0.4, 0, 0.3, 0), (big, big, big, 0.6), 3.5, (0.0, 0.0, 4.0, 1.0)),
        # X1 >= 0.4, X3 >= 0.3, X4 >= 0.6 -> LM5
        PiecewiseRegion((0.4, 0, 0.3, 0.6), (big, big, big, big), 5.0, (0.5, 0.5, 0.5, 2.5)),
    )


def figure1_dataset(
    n: int = 2000, noise_sd: float = 0.05, rng: RandomState = None
) -> Dataset:
    """Data matching the structure of the paper's Figure 1 example tree."""
    return piecewise_linear_dataset(
        figure1_regions(), ("X1", "X2", "X3", "X4"), n, noise_sd, rng
    )


def linear_dataset(
    coefficients: Sequence[float],
    intercept: float = 0.0,
    n: int = 500,
    noise_sd: float = 0.0,
    rng: RandomState = None,
) -> Dataset:
    """A single global linear relationship (no tree structure needed)."""
    generator = check_random_state(rng)
    p = len(coefficients)
    X = generator.uniform(0.0, 1.0, size=(n, p))
    y = intercept + X @ np.asarray(coefficients, dtype=float)
    if noise_sd > 0:
        y += generator.normal(0.0, noise_sd, size=n)
    names = tuple(f"X{i + 1}" for i in range(p))
    return Dataset(X, y, names, target_name="Y")


def step_dataset(
    threshold: float = 0.5,
    low_value: float = 0.0,
    high_value: float = 1.0,
    n: int = 500,
    noise_sd: float = 0.0,
    rng: RandomState = None,
) -> Dataset:
    """A one-attribute step function — the smallest possible tree problem."""
    generator = check_random_state(rng)
    X = generator.uniform(0.0, 1.0, size=(n, 1))
    y = np.where(X[:, 0] < threshold, low_value, high_value).astype(float)
    if noise_sd > 0:
        y += generator.normal(0.0, noise_sd, size=n)
    return Dataset(X, y, ("X1",), target_name="Y")


def interaction_dataset(
    n: int = 1000, noise_sd: float = 0.0, rng: RandomState = None
) -> Dataset:
    """Multiplicative interaction Y = X1*X2 — hard for one global line.

    Mirrors the paper's argument that event penalties interact: a single
    linear model cannot capture this, while a model tree approximates it
    with region-local lines.
    """
    generator = check_random_state(rng)
    X = generator.uniform(0.0, 1.0, size=(n, 2))
    y = X[:, 0] * X[:, 1]
    if noise_sd > 0:
        y += generator.normal(0.0, noise_sd, size=n)
    return Dataset(X, y, ("X1", "X2"), target_name="Y")


def constant_dataset(value: float = 1.5, n: int = 100, p: int = 3) -> Dataset:
    """A degenerate flat target — learners must not divide by zero on it."""
    rng = check_random_state(0)
    X = rng.uniform(0.0, 1.0, size=(n, p))
    y = np.full(n, value)
    names = tuple(f"X{i + 1}" for i in range(p))
    return Dataset(X, y, names, target_name="Y")

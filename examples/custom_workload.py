"""Define a custom workload and find out what limits it.

Shows the API a performance engineer would actually use: describe your
application's phases (instruction mix, footprints, branch behaviour),
run it on the machine model, and let a tree trained on the reference
suite diagnose it.  The example models an OLTP-ish "database" workload:
a large B-tree working set (DTLB + L2 pressure), branchy lookup code
and log writes with store-forwarding traffic.

Usage::

    python examples/custom_workload.py
"""

from repro import M5Prime, PerformanceAnalyzer, simulate_suite
from repro.core.analysis import workload_leaf_table
from repro.counters import STALL_METRICS
from repro.workloads import PhaseParams, PhaseSchedule, WorkloadProfile

KIB = 1024
MIB = 1024 * KIB


def database_like() -> WorkloadProfile:
    lookup = PhaseParams(
        load_fraction=0.33,
        store_fraction=0.07,
        branch_fraction=0.20,
        data_footprint=12 * MIB,
        hot_fraction=0.86,
        hot_set_bytes=48 * KIB,
        stride_fraction=0.15,
        dependent_miss_fraction=0.70,   # pointer chase down the B-tree
        ilp=0.35,
        code_footprint=256 * KIB,
        code_hot_fraction=0.85,
        code_hot_bytes=16 * KIB,
        basic_block_length=12,
        branch_bias=0.88,
        hard_branch_fraction=0.15,
    )
    logging = PhaseParams(
        load_fraction=0.22,
        store_fraction=0.28,
        branch_fraction=0.12,
        data_footprint=2 * MIB,
        hot_fraction=0.92,
        hot_set_bytes=64 * KIB,
        stride_fraction=0.85,
        dependent_miss_fraction=0.10,
        ilp=0.60,
        code_footprint=64 * KIB,
        basic_block_length=24,
        branch_bias=0.95,
        hard_branch_fraction=0.04,
        store_load_alias_fraction=0.25,
        sta_fraction=0.30,
        std_fraction=0.25,
    )
    return WorkloadProfile(
        "database_like",
        PhaseSchedule([(lookup, 0.7), (logging, 0.3)]),
        "OLTP-ish: B-tree pointer chasing plus a log-writing phase",
    )


def main() -> None:
    print("training the reference model...")
    reference = simulate_suite(
        sections_per_workload=60, instructions_per_section=2048, seed=2007
    ).dataset
    # Non-negative stall prices keep leaf models physically sensible when
    # a *new* workload pushes an event past its training range.
    model = M5Prime(
        min_instances=25, nonnegative_attributes=STALL_METRICS
    ).fit(reference)

    print("running the custom workload on the machine model...")
    study = simulate_suite(
        [database_like()],
        sections_per_workload=40,
        instructions_per_section=2048,
        seed=17,
    ).dataset
    print(f"mean CPI: {study.y.mean():.2f}")

    table = workload_leaf_table(model, study)["database_like"]
    print("\nsection classes (share of sections per tree leaf):")
    for leaf, share in sorted(table.items(), key=lambda kv: -kv[1]):
        equation = model.leaf_models()[leaf].describe("CPI")
        print(f"  LM{leaf} ({share:.0%}): {equation}")

    analyzer = PerformanceAnalyzer(model)
    print("\nper-class summary with top cost drivers:")
    print(analyzer.summarize_dataset(study, top=3))


if __name__ == "__main__":
    main()

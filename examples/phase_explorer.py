"""Watch a workload move through phases, as the tree sees them.

The paper (citing Sherwood et al.) treats phases as first-class: each
section belongs to a behaviour class, and the model tree's leaves *are*
those classes.  This example runs the two-phase gcc-like workload,
prints a CPI timeline with the leaf id per section, and shows the phase
boundary appearing as a class change — including the LCP-stall phase
the paper highlights as LM10.

Usage::

    python examples/phase_explorer.py
"""

import numpy as np

from repro import M5Prime, simulate_suite
from repro.workloads import workload_by_name


def sparkline(values, width=60) -> str:
    """A coarse text plot of a series."""
    levels = " .:-=+*#%@"
    arr = np.asarray(values, dtype=float)
    if len(arr) > width:
        chunks = np.array_split(arr, width)
        arr = np.array([c.mean() for c in chunks])
    low, high = arr.min(), arr.max()
    span = max(high - low, 1e-9)
    return "".join(levels[int((v - low) / span * (len(levels) - 1))] for v in arr)


def main() -> None:
    print("training the reference model...")
    reference = simulate_suite(
        sections_per_workload=60, instructions_per_section=2048, seed=2007
    ).dataset
    model = M5Prime(min_instances=25).fit(reference)

    print("running gcc_like (80% compile phase, 20% LCP-heavy phase)...")
    study = simulate_suite(
        [workload_by_name("gcc_like")],
        sections_per_workload=80,
        instructions_per_section=2048,
        seed=31,
    ).dataset

    order = np.argsort(study.meta["section"].astype(int))
    cpi = study.y[order]
    lcp = study.column("LCP")[order]
    leaves = model.leaf_ids(study.X)[order]

    print("\nsection timeline (left = start of run):")
    print(f"  CPI  {sparkline(cpi)}")
    print(f"  LCP  {sparkline(lcp)}")

    print("\nleaf (class) per section:")
    line = "".join(
        "ABCDEFGHIJKLMNOPQRSTUVWXYZ"[int(leaf) % 26] for leaf in leaves
    )
    print(f"  {line}")

    boundary = int(0.8 * len(cpi))
    print(f"\nmean CPI, compile phase:  {cpi[:boundary].mean():.3f}")
    print(f"mean CPI, LCP phase:      {cpi[boundary:].mean():.3f}")
    phase_classes = set(leaves[boundary:]) - set(leaves[:boundary])
    if phase_classes:
        print(
            "classes exclusive to the LCP phase: "
            + ", ".join(f"LM{c}" for c in sorted(phase_classes))
        )
        for leaf in sorted(phase_classes):
            print(f"  LM{leaf}: {model.leaf_models()[leaf].describe('CPI')}")
    else:
        print("(tree at this scale merged the phases into shared classes)")


if __name__ == "__main__":
    main()

"""Answer the "what" and "how much" questions for an mcf-like workload.

This is the paper's Section IV-C workflow: train the performance model
on the whole suite, then run a *new* collection of the workload under
study, classify each of its sections through the tree, and read off

* the split variables on its decision path (implicit limiters),
* each leaf-model term's contribution to predicted CPI (explicit
  limiters, with predicted % gain from eliminating them).

Usage::

    python examples/analyze_mcf_like.py
"""

from repro import M5Prime, PerformanceAnalyzer, simulate_suite
from repro.core.analysis import dominant_leaf, rank_events
from repro.workloads import workload_by_name


def main() -> None:
    print("training the performance model on the reference suite...")
    training = simulate_suite(
        sections_per_workload=60, instructions_per_section=2048, seed=2007
    ).dataset
    model = M5Prime(min_instances=25).fit(training)

    print("collecting fresh sections of the workload under study...")
    study = simulate_suite(
        [workload_by_name("mcf_like")],
        sections_per_workload=40,
        instructions_per_section=2048,
        seed=99,
    ).dataset

    leaf, share = dominant_leaf(model, study, "mcf_like")
    print(f"\n{share:.0%} of sections fall into class LM{leaf}")
    print(f"class model: LM{leaf}: "
          f"{model.leaf_models()[leaf].describe('CPI')}")

    analyzer = PerformanceAnalyzer(model)
    print("\n--- a representative section, in detail ---")
    print(analyzer.analyze_section(study.X[len(study) // 2]).render())

    print("\n--- events ranked over the whole run (the 'what' answer) ---")
    for contribution in rank_events(model, study.X)[:6]:
        print(f"  {contribution.describe()}")

    print(
        "\nReading: the top-ranked events are where optimization effort "
        "buys the most; the percentage is the predicted CPI reduction "
        "from eliminating that event class entirely (paper Section V-A2)."
    )


if __name__ == "__main__":
    main()

"""Serve a published model over HTTP and score live sections.

Runs the serving pipeline end to end, in one process:

1. simulate a small suite and train an M5' tree of CPI,
2. publish it into a model registry (versioned, checksummed),
3. preflight the registry (compiled/interpreted parity, drift ranges),
4. start the batching HTTP server on an ephemeral port,
5. score sections through ``/predict``, explain one with ``/explain``,
   and scrape the Prometheus ``/metrics`` page.

Usage::

    python examples/serve_and_score.py
"""

import json
import tempfile
import urllib.request
from pathlib import Path

from repro import M5Prime, simulate_suite
from repro.serve import ModelRegistry, ModelServer, preflight, render_preflight


def post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def main() -> None:
    print("simulating the suite and training the tree...")
    suite = simulate_suite(
        sections_per_workload=40, instructions_per_section=1024, seed=2007
    )
    model = M5Prime(min_instances=20).fit(suite.dataset)

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(Path(tmp) / "registry")
        record = registry.publish("cpi-tree", model, aliases=["prod"])
        print(f"published {record.spec} ({record.n_leaves} leaves)")

        print(render_preflight(preflight(registry)))

        server = ModelServer(registry, default_model="cpi-tree@latest", port=0)
        server.start()
        server.serve_in_background()
        base = f"http://127.0.0.1:{server.bound_port}"
        try:
            rows = suite.dataset.X[:5]
            scored = post(base, "/predict", {"sections": rows.tolist()})
            print(f"\nscored {scored['n']} sections with {scored['model']}:")
            for prediction, leaf in zip(
                scored["predictions"], scored["leaf_ids"]
            ):
                print(f"  CPI {prediction:.4f}  (class LM{leaf})")

            explained = post(
                base, "/explain", {"section": rows[0].tolist()}
            )
            print(f"\nsection 0 reaches LM{explained['leaf']} via:")
            for step in explained["path"]:
                relation = "<=" if step["branch"] == "left" else ">"
                print(
                    f"  {step['attribute']} = {step['value']:.4f} "
                    f"{relation} {step['threshold']:.4f}"
                )
            print("top contributions:")
            for entry in explained["contributions"][:3]:
                print(
                    f"  {entry['event']:<12} {entry['fraction']:>7.1%} of CPI"
                    f"  (fix would buy {entry['potential_gain_percent']:.1f}%)"
                )

            with urllib.request.urlopen(base + "/metrics", timeout=30) as resp:
                metrics = resp.read().decode("utf-8")
            served = [
                line
                for line in metrics.splitlines()
                if line.startswith("repro_requests_total")
            ]
            print("\nscraped /metrics:")
            for line in served:
                print(f"  {line}")
        finally:
            server.shutdown()


if __name__ == "__main__":
    main()

"""What-if analysis: predicted gains with class reassignment.

The paper's "how much" estimate is a linearization: contribution =
coef * X / CPI.  The tree itself knows more — fixing an event can move a
section across a split into a different class with a different model.
This example compares the two estimates on a memory-bound section, then
computes pairwise interaction costs (the statistical version of Fields
et al.'s interaction cost, which the paper cites as related work needing
dedicated hardware).

Usage::

    python examples/what_if_analysis.py
"""

from repro import M5Prime, simulate_suite
from repro.core.analysis import (
    extract_rules,
    interaction_matrix,
    leaf_contributions,
    rank_gains,
)


def main() -> None:
    print("training the performance model...")
    dataset = simulate_suite(
        sections_per_workload=60, instructions_per_section=2048, seed=2007
    ).dataset
    model = M5Prime(min_instances=25).fit(dataset)

    labels = dataset.meta["workload"]
    section = dataset.X[labels == "mcf_like"][30]

    print("\n--- the rule this section falls under ---")
    leaf_id = int(model.leaf_ids([section])[0])
    rule = next(r for r in extract_rules(model) if r.leaf_id == leaf_id)
    print(rule.describe(model.target_name_))

    print("\n--- linear contributions (the paper's estimate) ---")
    for contribution in leaf_contributions(model, section):
        print(f"  {contribution.describe()}")

    print("\n--- what-if gains with reclassification ---")
    for result in rank_gains(model, section)[:6]:
        print(f"  {result.describe()}")

    print("\n--- pairwise interaction costs ---")
    events = ("L2M", "DtlbLdM", "L1DM", "BrMisPr")
    for interaction in interaction_matrix(model, section, events)[:4]:
        print(f"  {interaction.describe()}")

    print(
        "\nReading: when the what-if gain exceeds the linear estimate, the\n"
        "section sits near a class boundary and fixing the event changes\n"
        "its class; a strongly negative interaction means the two events\n"
        "overlap — fixing both buys little more than fixing one."
    )


if __name__ == "__main__":
    main()

"""Quickstart: simulate counters, train M5', read the tree.

Runs the full paper pipeline in miniature:

1. simulate a SPEC-like suite on the Core 2 Duo-like machine model,
2. cut equal-instruction sections and derive the Table I metrics,
3. train an M5' model tree of CPI on the 20 event ratios,
4. cross-validate and print the tree with its leaf equations.

Usage::

    python examples/quickstart.py
"""

from repro import M5Prime, cross_validate, simulate_suite


def main() -> None:
    print("simulating the SPEC-like suite (this takes a few seconds)...")
    result = simulate_suite(
        sections_per_workload=60, instructions_per_section=2048, seed=2007
    )
    print(result.summary())
    print()

    dataset = result.dataset
    model = M5Prime(min_instances=25)
    model.fit(dataset)
    print(f"trained M5' tree: {model.n_leaves} leaves, depth {model.depth}")
    print()
    print(model.to_text())
    print()

    cv = cross_validate(
        lambda: M5Prime(min_instances=25), dataset, n_folds=10, rng=0
    )
    print("10-fold cross validation (paper: C=0.98, MAE=0.05, RAE=7.83%):")
    print(cv.describe())


if __name__ == "__main__":
    main()

"""Reproduce the method-comparison study (paper Section V-B / [23]).

Cross-validates every learner in the package — the M5' model tree, a
neural network, an epsilon-SVR, a CART regression tree, global linear
regression, k-NN and the traditional fixed-penalty model — on identical
folds of one dataset, and prints the comparison table.

Usage::

    python examples/compare_learners.py
"""

from repro import simulate_suite
from repro.baselines import (
    EpsilonSVR,
    KNNRegressor,
    LinearRegressionBaseline,
    MLPRegressor,
    NaiveFixedPenaltyModel,
    RegressionTree,
)
from repro.core.tree import M5Prime
from repro.evaluation import compare_estimators


def main() -> None:
    print("simulating the evaluation dataset...")
    dataset = simulate_suite(
        sections_per_workload=60, instructions_per_section=2048, seed=2007
    ).dataset

    factories = {
        "M5P model tree": lambda: M5Prime(min_instances=25),
        "ANN (MLP)": lambda: MLPRegressor(hidden=(48, 24), epochs=150, seed=0),
        "SVM (eps-SVR)": lambda: EpsilonSVR(C=20.0, epsilon=0.02, seed=0),
        "CART reg. tree": lambda: RegressionTree(min_instances=25),
        "linear regression": LinearRegressionBaseline,
        "k-NN (k=5)": lambda: KNNRegressor(k=5),
        "naive fixed penalty": NaiveFixedPenaltyModel,
    }
    print("cross-validating 7 learners (a minute or so)...")
    comparison = compare_estimators(factories, dataset, n_folds=10, seed=0)
    print()
    print(comparison.to_table())
    print()
    print(
        "Paper's reading: the ANN and SVM match or slightly beat the model\n"
        "tree on raw accuracy, but only the tree names the events, their\n"
        "thresholds and their per-class costs — and the traditional\n"
        "fixed-penalty approach is not competitive at all."
    )


if __name__ == "__main__":
    main()

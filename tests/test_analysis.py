"""Tests for the performance-analysis layer (what / how much)."""

import numpy as np
import pytest

from repro.core.analysis import (
    PerformanceAnalyzer,
    dominant_leaf,
    leaf_contributions,
    leaf_distribution,
    rank_events,
    split_impacts,
    workload_leaf_table,
)
from repro.core.analysis.classes import leaf_mean_cpi
from repro.core.tree import M5Prime
from repro.datasets import Dataset
from repro.errors import DataError, NotFittedError


class TestLeafContributions:
    def test_paper_arithmetic(self, suite_tree, suite_dataset):
        """Contribution must equal coef * value / predicted CPI (Sec V-A2)."""
        x = suite_dataset.X[0]
        contributions = leaf_contributions(suite_tree, x)
        leaf = suite_tree.leaf_for(x)
        predicted = leaf.model.predict_one(x)
        for contribution in contributions:
            index = suite_tree.attributes_.index(contribution.event)
            assert contribution.value == pytest.approx(x[index])
            assert contribution.cycles == pytest.approx(
                contribution.coefficient * contribution.value
            )
            assert contribution.fraction == pytest.approx(
                contribution.cycles / predicted
            )

    def test_sorted_descending(self, suite_tree, suite_dataset):
        contributions = leaf_contributions(suite_tree, suite_dataset.X[5])
        cycles = [c.cycles for c in contributions]
        assert cycles == sorted(cycles, reverse=True)

    def test_gain_percent(self):
        from repro.core.analysis.contribution import EventContribution

        c = EventContribution("L1IM", 6.69, 0.03, 0.2007, 0.2007)
        assert c.potential_gain_percent == pytest.approx(20.07)
        assert "L1IM" in c.describe()

    def test_events_match_leaf_model(self, suite_tree, suite_dataset):
        x = suite_dataset.X[10]
        contributions = leaf_contributions(suite_tree, x)
        leaf = suite_tree.leaf_for(x)
        assert {c.event for c in contributions} == set(leaf.model.names)

    def test_nonpositive_prediction_rejected(self):
        ds = Dataset([[0.0], [1.0], [0.5], [0.7]], [-1.0, -2.0, -1.5, -1.7], ("a",))
        model = M5Prime().fit(ds)
        with pytest.raises(DataError):
            leaf_contributions(model, [0.5])


class TestRankEvents:
    def test_aggregates_over_sections(self, suite_tree, suite_dataset):
        ranked = rank_events(suite_tree, suite_dataset.X[:30])
        assert ranked
        cycles = [c.cycles for c in ranked]
        assert cycles == sorted(cycles, reverse=True)

    def test_empty_rejected(self, suite_tree):
        with pytest.raises(DataError):
            rank_events(suite_tree, np.zeros((0, 20)))


class TestSplitImpacts:
    def test_covers_every_split(self, suite_tree, suite_dataset):
        impacts = split_impacts(suite_tree, suite_dataset)
        n_splits = sum(1 for n in suite_tree.root_.iter_nodes() if not n.is_leaf)
        assert len(impacts) == n_splits

    def test_weighted_matches_node_means(self, suite_tree):
        impacts = split_impacts(suite_tree)
        root = suite_tree.root_
        assert impacts[0].impact_weighted == pytest.approx(
            root.right.mean - root.left.mean
        )

    def test_simple_uses_leaf_means(self, suite_tree):
        impacts = split_impacts(suite_tree)
        root = suite_tree.root_
        left_leaf_means = [leaf.mean for leaf in root.left.leaves()]
        assert impacts[0].impact_simple == pytest.approx(
            root.right.mean - float(np.mean(left_leaf_means))
        )

    def test_r2_requires_dataset(self, suite_tree, suite_dataset):
        without = split_impacts(suite_tree)
        assert all(i.r_squared is None for i in without)
        with_data = split_impacts(suite_tree, suite_dataset)
        assert all(i.r_squared is not None for i in with_data)
        assert all(0.0 <= i.r_squared <= 1.0 for i in with_data)

    def test_describe(self, suite_tree, suite_dataset):
        impact = split_impacts(suite_tree, suite_dataset)[0]
        assert impact.attribute in impact.describe()

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            split_impacts(M5Prime())

    def test_width_mismatch_rejected(self, suite_tree):
        bad = Dataset([[1.0]], [1.0], ("a",))
        with pytest.raises(DataError):
            split_impacts(suite_tree, bad)


class TestClassTables:
    def test_distribution_counts_everything(self, suite_tree, suite_dataset):
        distribution = leaf_distribution(suite_tree, suite_dataset)
        assert sum(distribution.values()) == suite_dataset.n_instances

    def test_workload_table_fractions(self, suite_tree, suite_dataset):
        table = workload_leaf_table(suite_tree, suite_dataset)
        for shares in table.values():
            assert sum(shares.values()) == pytest.approx(1.0)

    def test_dominant_leaf(self, suite_tree, suite_dataset):
        leaf, share = dominant_leaf(suite_tree, suite_dataset, "mcf_like")
        assert 0.0 < share <= 1.0
        table = workload_leaf_table(suite_tree, suite_dataset)
        assert share == pytest.approx(max(table["mcf_like"].values()))

    def test_unknown_workload(self, suite_tree, suite_dataset):
        with pytest.raises(DataError):
            dominant_leaf(suite_tree, suite_dataset, "quake_like")

    def test_missing_meta_rejected(self, suite_tree, suite_dataset):
        bare = Dataset(suite_dataset.X, suite_dataset.y, suite_dataset.attributes)
        with pytest.raises(DataError):
            workload_leaf_table(suite_tree, bare)

    def test_leaf_mean_cpi(self, suite_tree, suite_dataset):
        means = leaf_mean_cpi(suite_tree, suite_dataset)
        assert all(m > 0 for m in means.values())


class TestAnalyzer:
    def test_requires_fitted_model(self):
        with pytest.raises(DataError):
            PerformanceAnalyzer(M5Prime())

    def test_section_analysis_fields(self, suite_tree, suite_dataset):
        analyzer = PerformanceAnalyzer(suite_tree)
        analysis = analyzer.analyze_section(suite_dataset.X[0])
        assert analysis.leaf_id >= 1
        assert analysis.predicted > 0
        assert len(analysis.conditions) == len(
            suite_tree.decision_path(suite_dataset.X[0])
        ) - 1

    def test_high_side_conditions(self, suite_tree, suite_dataset):
        analyzer = PerformanceAnalyzer(suite_tree)
        x = suite_dataset.X[0]
        analysis = analyzer.analyze_section(x)
        for condition in analysis.conditions:
            index = suite_tree.attributes_.index(condition.attribute)
            assert condition.high_side == (x[index] > condition.threshold)

    def test_implicit_issues_are_high_side(self, suite_tree, suite_dataset):
        analyzer = PerformanceAnalyzer(suite_tree)
        analysis = analyzer.analyze_section(suite_dataset.X[3])
        assert set(analysis.implicit_issues) <= {
            c.attribute for c in analysis.conditions
        }

    def test_render_is_readable(self, suite_tree, suite_dataset):
        analyzer = PerformanceAnalyzer(suite_tree)
        text = analyzer.analyze_section(suite_dataset.X[0]).render()
        assert "class: LM" in text
        assert "predicted CPI" in text

    def test_top_issues_positive_only(self, suite_tree, suite_dataset):
        analyzer = PerformanceAnalyzer(suite_tree)
        analysis = analyzer.analyze_section(suite_dataset.X[0])
        assert all(c.cycles > 0 for c in analysis.top_issues())

    def test_analyze_dataset_groups_by_leaf(self, suite_tree, suite_dataset):
        analyzer = PerformanceAnalyzer(suite_tree)
        grouped = analyzer.analyze_dataset(suite_dataset.subset(range(40)))
        assert sum(len(v) for v in grouped.values()) == 40

    def test_summarize_dataset(self, suite_tree, suite_dataset):
        analyzer = PerformanceAnalyzer(suite_tree)
        text = analyzer.summarize_dataset(suite_dataset.subset(range(40)))
        assert "LM" in text
        assert "sections" in text


class TestExtrapolatedSections:
    def test_nonpositive_prediction_suppresses_contributions(self):
        from repro.datasets import Dataset

        ds = Dataset(
            [[0.0], [0.1], [0.2], [0.9], [1.0], [0.95]],
            [1.0, 1.1, 1.2, 3.0, 3.2, 3.1],
            ("a",),
        )
        model = M5Prime(min_instances=3, ridge=0.0).fit(ds)
        analyzer = PerformanceAnalyzer(model)
        # Force an instance far outside the training region.
        analysis = analyzer.analyze_section(np.array([-100.0]))
        if analysis.predicted <= 0:
            assert analysis.extrapolated
            assert analysis.contributions == []
            assert "outside its class" in analysis.render()

    def test_summarize_survives_extrapolation(self, suite_tree, suite_dataset):
        # Shift a copy of real sections far out of range: the summary must
        # not raise even when some predictions go non-positive.
        import numpy as np

        shifted = suite_dataset.X.copy()
        shifted[:, 0] = 10.0  # absurd InstLd
        analyzer = PerformanceAnalyzer(suite_tree)
        grouped = analyzer.analyze_dataset(
            type(suite_dataset)(shifted[:20], suite_dataset.y[:20],
                                suite_dataset.attributes)
        )
        assert sum(len(v) for v in grouped.values()) == 20

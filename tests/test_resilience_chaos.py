"""Chaos tests: execution under deterministic fault injection.

The contract under test is the resilience invariant: **any run that
completes — retried, resumed, or fault-ridden — is bit-identical to a
clean run.**  Every test here derives a fault-free baseline (with
``REPRO_FAULTS`` cleared) and compares faulty/resumed runs against it
exactly, never approximately.

The CI ``chaos`` job runs this file with ``REPRO_EXECUTOR`` set to each
backend in turn; tests therefore avoid assumptions that only hold for
one executor (each sets its own ``REPRO_FAULTS`` spec, chosen so the
deterministic decisions work out under both serial and per-process
occurrence counting).
"""

import json

import numpy as np
import pytest

from repro.baselines import LinearRegressionBaseline
from repro.cli import main
from repro.errors import RetryExhaustedError
from repro.evaluation import cross_validate
from repro.resilience import (
    CheckpointStore,
    FailPolicy,
    RetryPolicy,
    RunPolicy,
)
from repro.resilience.faults import FAULTS_ENV, reset_faults
from repro.workloads import simulate_suite

SUITE_KW = dict(
    sections_per_workload=3, instructions_per_section=256, seed=9
)


@pytest.fixture(autouse=True)
def _fault_isolation(monkeypatch):
    """Start and end every test without an active fault plan."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    reset_faults()
    yield
    reset_faults()


def _without_faults(fn):
    """Run ``fn()`` with fault injection disabled (for baselines).

    Class- and module-scoped fixtures instantiate *before* the
    per-test isolation fixture, so under the CI chaos job's ambient
    ``REPRO_FAULTS`` they must shield themselves.
    """
    with pytest.MonkeyPatch.context() as mp:
        mp.delenv(FAULTS_ENV, raising=False)
        reset_faults()
        result = fn()
    reset_faults()
    return result


@pytest.fixture(scope="module")
def suite_dataset():
    """Fault-free override of the session-wide suite dataset fixture."""
    return _without_faults(
        lambda: simulate_suite(
            sections_per_workload=12, instructions_per_section=384, seed=3
        ).dataset
    )


def _set_faults(monkeypatch, spec):
    monkeypatch.setenv(FAULTS_ENV, spec)
    reset_faults()


def _clear_faults(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    reset_faults()


def _policy(max_attempts, fail_policy="fail_fast", checkpoint=None,
            run_key=None, resume=False):
    return RunPolicy(
        retry=RetryPolicy(max_attempts=max_attempts, base_delay=0.0),
        fail_policy=FailPolicy.parse(fail_policy),
        checkpoint=checkpoint,
        run_key=run_key,
        resume=resume,
    )


# ---------------------------------------------------------------------------
# Suite simulation under faults
# ---------------------------------------------------------------------------
class TestSuiteChaos:
    @pytest.fixture(scope="class")
    def baseline(self):
        return _without_faults(lambda: simulate_suite(**SUITE_KW))

    @pytest.mark.parametrize(
        "fail_policy", ["fail_fast", "collect_errors", "min_success:0.5"]
    )
    def test_completed_run_is_bit_identical(
        self, monkeypatch, baseline, fail_policy
    ):
        # sim:0.3,seed=11 clears within 8 attempts for every workload,
        # so the run completes under every policy.
        _set_faults(monkeypatch, "sim:0.3,seed=11")
        result = simulate_suite(
            **SUITE_KW, policy=_policy(8, fail_policy)
        )
        assert result.failures == []
        np.testing.assert_array_equal(result.dataset.X, baseline.dataset.X)
        np.testing.assert_array_equal(result.dataset.y, baseline.dataset.y)

    def test_collect_errors_partial_rows_match_baseline(
        self, monkeypatch, baseline
    ):
        # sim:0.97,seed=2 fails 9 of 11 workloads on their only attempt.
        _set_faults(monkeypatch, "sim:0.97,seed=2")
        result = simulate_suite(
            **SUITE_KW, policy=_policy(1, "collect_errors")
        )
        assert result.failures
        survivors = set(result.dataset.meta["workload"])
        assert survivors  # and the run still produced data
        failed = {f.key.replace("wl-", "") for f in result.failures}
        assert survivors.isdisjoint(failed)
        # Every surviving workload's rows are exactly the clean rows.
        base_mask = np.isin(
            np.asarray(baseline.dataset.meta["workload"]), sorted(survivors)
        )
        np.testing.assert_array_equal(
            result.dataset.X, baseline.dataset.X[base_mask]
        )
        np.testing.assert_array_equal(
            result.dataset.y, baseline.dataset.y[base_mask]
        )

    def test_fail_fast_aborts(self, monkeypatch):
        _set_faults(monkeypatch, "sim:1.0")
        with pytest.raises(RetryExhaustedError):
            simulate_suite(**SUITE_KW, policy=_policy(2))


# ---------------------------------------------------------------------------
# Cross validation under faults
# ---------------------------------------------------------------------------
class TestCrossValidationChaos:
    N_FOLDS = 5

    @pytest.fixture(scope="class")
    def baseline(self, suite_dataset):
        return _without_faults(lambda: cross_validate(
            LinearRegressionBaseline, suite_dataset,
            n_folds=self.N_FOLDS, rng=0,
        ))

    @pytest.mark.parametrize(
        "fail_policy", ["fail_fast", "collect_errors", "min_success:0.5"]
    )
    def test_completed_run_is_bit_identical(
        self, monkeypatch, suite_dataset, baseline, fail_policy
    ):
        _set_faults(monkeypatch, "fold:0.3,seed=11")
        result = cross_validate(
            LinearRegressionBaseline, suite_dataset,
            n_folds=self.N_FOLDS, rng=0, policy=_policy(8, fail_policy),
        )
        assert result.failures == []
        np.testing.assert_array_equal(result.predictions, baseline.predictions)
        assert result.mean.to_dict() == baseline.mean.to_dict()
        assert result.pooled.to_dict() == baseline.pooled.to_dict()

    def test_collect_errors_covers_completed_folds_exactly(
        self, monkeypatch, suite_dataset, baseline
    ):
        # fold:0.9,seed=5 fails folds 0, 2, 3, 4 on their only attempt.
        _set_faults(monkeypatch, "fold:0.9,seed=5")
        result = cross_validate(
            LinearRegressionBaseline, suite_dataset,
            n_folds=self.N_FOLDS, rng=0, policy=_policy(1, "collect_errors"),
        )
        assert [f.key for f in result.failures] == [
            "fold-000", "fold-002", "fold-003", "fold-004"
        ]
        assert result.n_folds == 1
        covered = np.isfinite(result.predictions)
        assert covered.any() and not covered.all()
        # Completed folds predict exactly what the clean run predicted.
        np.testing.assert_array_equal(
            result.predictions[covered], baseline.predictions[covered]
        )

    def test_min_success_floor_aborts_run(self, monkeypatch, suite_dataset):
        _set_faults(monkeypatch, "fold:1.0")
        with pytest.raises(RetryExhaustedError, match="succeeded"):
            cross_validate(
                LinearRegressionBaseline, suite_dataset,
                n_folds=self.N_FOLDS, rng=0,
                policy=_policy(1, "min_success:0.5"),
            )


# ---------------------------------------------------------------------------
# Checkpoint/resume: killed runs continue bit-identically
# ---------------------------------------------------------------------------
class TestResume:
    def test_crashed_collect_resumes_bit_identically(
        self, monkeypatch, tmp_path, capsys
    ):
        clean_csv = tmp_path / "clean.csv"
        crash_csv = tmp_path / "crash.csv"
        argv = ["collect", "--out", None, "--sections", "3",
                "--instructions", "256", "--seed", "9"]

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-clean"))
        argv[2] = str(clean_csv)
        assert main(list(argv)) == 0

        # "Kill" a run part-way: sim:0.35,seed=5 spares the first
        # workload but aborts the run (fail_fast, one attempt) later,
        # leaving the completed workloads checkpointed.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-crash"))
        _set_faults(monkeypatch, "sim:0.35,seed=5")
        argv[2] = str(crash_csv)
        assert main(list(argv) + ["--retries", "1"]) == 2
        assert "error:" in capsys.readouterr().err
        assert not crash_csv.exists()
        store = CheckpointStore()
        assert sum(store.runs().values()) >= 1  # durable progress

        # Resume without faults: completes and matches the clean bytes.
        _clear_faults(monkeypatch)
        assert main(list(argv) + ["--resume"]) == 0
        assert crash_csv.read_bytes() == clean_csv.read_bytes()

    def test_crashed_evaluate_resumes_bit_identically(
        self, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        csv = tmp_path / "sections.csv"
        assert main(["collect", "--out", str(csv), "--sections", "3",
                     "--instructions", "256", "--seed", "9"]) == 0
        capsys.readouterr()
        argv = ["evaluate", "--data", str(csv), "--learner", "ols",
                "--folds", "5", "--format", "json"]
        assert main(list(argv)) == 0
        clean_out = capsys.readouterr().out

        # fold:0.6,seed=4 spares fold-000 and kills fold-002 (fail_fast).
        _set_faults(monkeypatch, "fold:0.6,seed=4")
        assert main(list(argv) + ["--retries", "1"]) == 2
        capsys.readouterr()

        _clear_faults(monkeypatch)
        assert main(list(argv) + ["--resume"]) == 0
        assert capsys.readouterr().out == clean_out

    def test_resume_with_unreadable_checkpoints_recomputes(
        self, monkeypatch, tmp_path
    ):
        # checkpoint_read:1.0 makes every stored unit a miss; the resumed
        # run recomputes everything and must still be bit-identical.
        store = CheckpointStore(tmp_path / "ckpt")
        baseline = simulate_suite(**SUITE_KW)
        first = simulate_suite(**SUITE_KW, policy=_policy(
            1, checkpoint=store, run_key="suite-chaos"
        ))
        assert store.runs() == {"suite-chaos": 11}
        _set_faults(monkeypatch, "checkpoint_read:1.0")
        resumed = simulate_suite(**SUITE_KW, policy=_policy(
            1, checkpoint=store, run_key="suite-chaos", resume=True
        ))
        for result in (first, resumed):
            np.testing.assert_array_equal(
                result.dataset.X, baseline.dataset.X
            )
            np.testing.assert_array_equal(
                result.dataset.y, baseline.dataset.y
            )


# ---------------------------------------------------------------------------
# Cache corruption
# ---------------------------------------------------------------------------
class TestCacheChaos:
    def test_corrupted_entry_quarantined_and_recomputed(self, tmp_path):
        from repro.experiments import ExperimentConfig
        from repro.experiments.data import artifact_cache, suite_dataset

        config = ExperimentConfig(
            name="chaos", sections_per_workload=3,
            instructions_per_section=256, min_instances=5, n_folds=2,
        )
        cache_dir = tmp_path / "artifacts"
        first = suite_dataset(config, cache_dir=cache_dir)

        cache = artifact_cache(cache_dir)
        (entry,) = cache._entries()
        entry.write_bytes(b"garbage,where,a,dataset,should,be\n")

        import repro.experiments.data as data_module
        data_module._MEMORY_CACHE.clear()
        with pytest.warns(RuntimeWarning, match="quarantin"):
            second = suite_dataset(config, cache_dir=cache_dir)
        np.testing.assert_array_equal(second.X, first.X)
        np.testing.assert_array_equal(second.y, first.y)
        assert cache._quarantined()  # corruption kept for autopsy
        assert cache.info().n_quarantined >= 1

    def test_cache_read_fault_degrades_to_miss(self, monkeypatch, tmp_path):
        from repro.parallel.cache import ArtifactCache

        cache = ArtifactCache(tmp_path / "artifacts")
        baseline = simulate_suite(**SUITE_KW)
        cache.store_dataset(["chaos-key"], baseline.dataset)
        _set_faults(monkeypatch, "cache_read:1.0")
        assert cache.load_dataset(["chaos-key"]) is None
        _clear_faults(monkeypatch)
        reloaded = cache.load_dataset(["chaos-key"])
        np.testing.assert_array_equal(reloaded.X, baseline.dataset.X)


# ---------------------------------------------------------------------------
# Method comparison under faults (the ISSUE acceptance scenario)
# ---------------------------------------------------------------------------
class TestCompareChaos:
    def test_min_success_compare_reports_failed_units(
        self, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        csv = tmp_path / "sections.csv"
        assert main(["collect", "--out", str(csv), "--sections", "4",
                     "--instructions", "256", "--seed", "3"]) == 0
        capsys.readouterr()

        # fold:0.35,seed=22 injects >10% unit failures for one-attempt
        # folds but leaves every method above the 0.5 success floor.
        _set_faults(monkeypatch, "fold:0.35,seed=22")
        rc = main([
            "compare", "--data", str(csv), "--folds", "3",
            "--retries", "1", "--fail-policy", "min_success:0.5",
            "--format", "json",
        ])
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "compare"
        assert document["methods"]  # the comparison completed
        failed = document["failed_units"]
        assert len(failed) >= 2
        for unit in failed:
            assert unit["error"] and unit["unit"]

"""The FOREST00x lint family: published-forest integrity auditing."""

import hashlib
import json

import pytest

from repro.baselines import BaggedM5
from repro.datasets.synthetic import figure1_dataset
from repro.lint import FAMILY_FOREST, lint_forest, run_lint
from repro.serve.refine import RefinedForest
from repro.serve.registry import ModelRegistry


@pytest.fixture(scope="module")
def fitted_forest():
    data = figure1_dataset(n=160, noise_sd=0.05, rng=31)
    forest = BaggedM5(n_estimators=3, min_instances=25, seed=2).fit(data)
    RefinedForest(forest).fit(data)
    return forest


@pytest.fixture
def registry(tmp_path, fitted_forest):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish("cpi-forest", fitted_forest)
    return registry


def _rule_ids(report):
    return sorted({d.rule_id for d in report.diagnostics})


def _edit_blob(registry, mutate):
    """Rewrite the forest blob (and its checksum, so SERVE003 stays
    quiet and the FOREST rules own the finding)."""
    record = registry.records()[0]
    blob = registry.directory / record.blob
    document = json.loads(blob.read_text())
    mutate(document)
    blob.write_text(json.dumps(document))
    registry.cache.checksum_path(blob).write_text(
        hashlib.sha256(blob.read_bytes()).hexdigest() + "\n"
    )


class TestForestRules:
    def test_clean_forest_registry_is_clean(self, registry):
        report = lint_forest(registry.directory)
        assert report.diagnostics == []
        assert report.exit_code(strict=True) == 0

    def test_run_lint_includes_forest_family(self, registry):
        report = run_lint(registry_dir=registry.directory)
        assert FAMILY_FOREST in report.families

    def test_tree_only_registry_yields_no_findings(self, tmp_path,
                                                   suite_tree):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("cpi-tree", suite_tree)
        report = lint_forest(registry.directory)
        assert report.diagnostics == []

    def test_format_mismatch_errors_forest001(self, registry):
        _edit_blob(registry, lambda d: d.update(format="repro-m5prime"))
        report = lint_forest(registry.directory)
        assert "FOREST001" in _rule_ids(report)

    def test_unreadable_blob_errors_forest001(self, registry):
        record = registry.records()[0]
        blob = registry.directory / record.blob
        blob.write_text("{not json")
        registry.cache.checksum_path(blob).write_text(
            hashlib.sha256(blob.read_bytes()).hexdigest() + "\n"
        )
        report = lint_forest(registry.directory)
        assert _rule_ids(report) == ["FOREST001"]

    def test_tree_count_lie_errors_forest002(self, registry):
        _edit_blob(registry, lambda d: d.update(n_trees=9))
        report = lint_forest(registry.directory)
        assert "FOREST002" in _rule_ids(report)

    def test_refined_length_mismatch_errors_forest003(self, registry):
        def truncate(document):
            document["refined"]["weights"] = (
                document["refined"]["weights"][:-1]
            )

        _edit_blob(registry, truncate)
        report = lint_forest(registry.directory)
        assert "FOREST003" in _rule_ids(report)

    def test_nonfinite_weight_errors_forest004(self, registry):
        def poison(document):
            index = document["refined"]["active"].index(1)
            document["refined"]["weights"][index] = float("nan")

        _edit_blob(registry, poison)
        report = lint_forest(registry.directory)
        assert "FOREST004" in _rule_ids(report)

    def test_dead_tree_warns_forest005(self, registry, fitted_forest):
        compiled = fitted_forest.compiled_
        first_tree = range(int(compiled.leaf_offset[0]),
                           int(compiled.leaf_offset[1]))

        def kill_tree(document):
            for column in first_tree:
                document["refined"]["active"][column] = 0

        _edit_blob(registry, kill_tree)
        report = lint_forest(registry.directory)
        assert "FOREST005" in _rule_ids(report)
        finding = next(
            d for d in report.diagnostics if d.rule_id == "FOREST005"
        )
        assert "tree[0]" in finding.message
        assert report.exit_code(strict=False) == 0  # warning, not error

    def test_single_tree_forest_warns_forest006(self, tmp_path):
        data = figure1_dataset(n=120, noise_sd=0.05, rng=33)
        solo = BaggedM5(n_estimators=1, min_instances=30, seed=1).fit(data)
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("solo-forest", solo)
        report = lint_forest(registry.directory)
        assert _rule_ids(report) == ["FOREST006"]
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1

"""Tests for the differential runner and its report plumbing."""

import json

import pytest

from repro.conformance import (
    ConformanceReport,
    build_corpus,
    run_case,
    run_differential,
)
from repro.conformance.structure import diff_trees, tree_skeleton, trees_identical
from repro.core.tree import M5Prime
from repro.core.tree.node import SplitNode
from repro.datasets.synthetic import figure1_dataset
from repro.errors import ConfigError


class TestCorpus:
    def test_quick_tier_meets_acceptance_floor(self):
        assert len(build_corpus(2007, "quick")) >= 25

    def test_deep_tier_is_a_superset(self):
        quick = {c.name for c in build_corpus(2007, "quick")}
        deep = {c.name for c in build_corpus(2007, "deep")}
        assert quick < deep

    def test_names_are_unique(self):
        names = [c.name for c in build_corpus(2007, "deep")]
        assert len(names) == len(set(names))

    def test_seed_determines_data(self):
        a = build_corpus(2007, "quick")[0]
        b = build_corpus(2007, "quick")[0]
        assert (a.dataset.X == b.dataset.X).all()
        assert (a.dataset.y == b.dataset.y).all()

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigError):
            build_corpus(2007, "exhaustive")

    def test_quick_tier_flags_forest_cases(self):
        flagged = [c for c in build_corpus(2007, "quick") if c.check_forest]
        assert len(flagged) >= 3


class TestDifferential:
    def test_subset_is_conformant(self):
        report = run_differential(seed=2007, max_cases=5)
        assert report.is_clean, report.render_text()
        assert report.n_cases == 5
        assert report.exit_code() == 0

    def test_forest_check_runs_and_is_conformant(self):
        # CONF008: the compiled-forest arena vs interpreted ensemble.
        case = next(
            c for c in build_corpus(2007, "quick") if c.check_forest
        )
        with_forest = run_differential(seed=2007, cases=[case])
        assert with_forest.is_clean, with_forest.render_text()
        without = run_differential(
            seed=2007,
            cases=[
                type(case)(
                    name=case.name, dataset=case.dataset,
                    params=case.params,
                    check_parallel_cv=case.check_parallel_cv,
                )
            ],
        )
        assert with_forest.n_checks == without.n_checks + 1

    def test_sabotage_is_detected(self):
        # Nudge one production threshold after fitting: the differential
        # check must flag the tree *and* stop before repeating the root
        # cause as prediction noise.
        case = build_corpus(2007, "quick")[0]
        report = ConformanceReport(tier="quick", seed=2007)

        fitted = M5Prime(**case.params).fit(case.dataset)
        assert isinstance(fitted.root_, SplitNode)

        original_fit = M5Prime.fit

        def sabotaged_fit(self, *args, **kwargs):
            result = original_fit(self, *args, **kwargs)
            if isinstance(self.root_, SplitNode):
                self.root_.threshold += 1e-9
            return result

        M5Prime.fit = sabotaged_fit
        try:
            run_case(case, report)
        finally:
            M5Prime.fit = original_fit
        assert not report.is_clean
        assert any(d.rule_id == "CONF001" for d in report.diagnostics)
        assert report.exit_code() == 2

    def test_json_envelope(self):
        report = run_differential(seed=2007, max_cases=2)
        document = json.loads(report.render_json())
        assert document["format"] == "repro-report"
        assert document["kind"] == "conformance"
        assert document["clean"] is True
        assert document["seed"] == 2007
        assert document["n_cases"] == 2
        assert document["diagnostics"] == []


class TestStructureHelpers:
    def test_identical_trees_have_no_diff(self):
        dataset = figure1_dataset(n=150, noise_sd=0.05, rng=9)
        a = M5Prime(min_instances=12).fit(dataset)
        b = M5Prime(min_instances=12).fit(dataset)
        assert trees_identical(a.root_, b.root_)

    def test_threshold_change_is_reported_once_per_branch(self):
        dataset = figure1_dataset(n=150, noise_sd=0.05, rng=9)
        a = M5Prime(min_instances=12).fit(dataset)
        b = M5Prime(min_instances=12).fit(dataset)
        assert isinstance(b.root_, SplitNode)
        b.root_.threshold += 0.5
        differences = diff_trees(a.root_, b.root_)
        assert any("threshold" in d for d in differences)

    def test_population_change_is_reported(self):
        dataset = figure1_dataset(n=150, noise_sd=0.05, rng=9)
        a = M5Prime(min_instances=12).fit(dataset)
        b = M5Prime(min_instances=12).fit(dataset)
        b.root_.n_instances += 1
        assert any("n_instances" in d for d in diff_trees(a.root_, b.root_))

    def test_skeleton_is_json_roundtrippable(self):
        dataset = figure1_dataset(n=150, noise_sd=0.05, rng=9)
        model = M5Prime(min_instances=12).fit(dataset)
        skeleton = tree_skeleton(model.root_)
        assert json.loads(json.dumps(skeleton)) == skeleton
        assert skeleton["kind"] in ("split", "leaf")


class TestReport:
    def test_merge_accumulates(self):
        a = ConformanceReport(tier="quick", seed=1)
        a.n_checks, a.n_cases = 3, 1
        b = ConformanceReport(tier="quick", seed=1)
        b.n_checks, b.n_cases = 2, 1
        b.add("META001", "violated", "meta x")
        a.merge(b)
        assert a.n_checks == 5
        assert a.n_cases == 2
        assert a.n_divergences == 1
        assert a.exit_code() == 2

    def test_summary_mentions_tier_and_seed(self):
        report = ConformanceReport(tier="deep", seed=42)
        assert "deep" in report.summary()
        assert "42" in report.summary()

"""Tests for the metamorphic relation suite."""

import numpy as np

from repro.conformance import run_metamorphic
from repro.conformance.metamorphic import (
    ALL_RELATIONS,
    _split_signature,
    check_affine_target,
    check_duplication,
    check_feature_permutation,
    check_min_leaf_monotonic,
    check_row_permutation,
)
from repro.conformance.report import ConformanceReport
from repro.core.tree import M5Prime
from repro.datasets.synthetic import figure1_dataset, interaction_dataset


def _report():
    return ConformanceReport(tier="metamorphic", seed=2007)


class TestRelations:
    def test_row_permutation_holds(self):
        report = _report()
        data = figure1_dataset(n=180, noise_sd=0.05, rng=21)
        check_row_permutation("f1", data, 2007, report)
        assert report.is_clean, report.render_text()

    def test_feature_permutation_holds(self):
        report = _report()
        data = interaction_dataset(n=180, noise_sd=0.03, rng=22)
        check_feature_permutation("inter", data, 2007, report)
        assert report.is_clean, report.render_text()

    def test_affine_target_holds(self):
        report = _report()
        data = figure1_dataset(n=180, noise_sd=0.05, rng=23)
        check_affine_target("f1", data, 2007, report)
        assert report.is_clean, report.render_text()

    def test_duplication_holds(self):
        report = _report()
        data = figure1_dataset(n=160, noise_sd=0.05, rng=24)
        check_duplication("f1", data, 2007, report)
        assert report.is_clean, report.render_text()

    def test_min_leaf_monotonicity_holds(self):
        report = _report()
        data = figure1_dataset(n=200, noise_sd=0.05, rng=25)
        check_min_leaf_monotonic("f1", data, 2007, report)
        assert report.is_clean, report.render_text()


class TestSuite:
    def test_full_run_is_conformant(self):
        report = run_metamorphic(seed=2007)
        assert report.is_clean, report.render_text()
        assert report.n_cases == 3
        assert report.n_checks == 3 * len(ALL_RELATIONS)

    def test_custom_datasets(self):
        data = figure1_dataset(n=150, noise_sd=0.05, rng=26)
        report = run_metamorphic(seed=2007, datasets=[("only", data)])
        assert report.n_cases == 1
        assert report.is_clean, report.render_text()


class TestSplitSignature:
    def test_distinguishes_structures(self):
        shallow = M5Prime(min_instances=60).fit(
            figure1_dataset(n=200, noise_sd=0.05, rng=27)
        )
        deep = M5Prime(min_instances=10).fit(
            figure1_dataset(n=200, noise_sd=0.05, rng=27)
        )
        assert _split_signature(shallow.root_) != _split_signature(deep.root_)

    def test_invariant_to_refit(self):
        data = figure1_dataset(n=200, noise_sd=0.05, rng=28)
        a = M5Prime(min_instances=15).fit(data)
        b = M5Prime(min_instances=15).fit(data)
        assert _split_signature(a.root_) == _split_signature(b.root_)

    def test_violation_is_reported_not_raised(self):
        # A relation that fails must record a diagnostic, never assert.
        report = _report()
        report.add("META003", "synthetic violation", "meta unit")
        assert not report.is_clean
        assert report.exit_code() == 2
        assert "META003" in report.render_text()


class TestToleranceChoice:
    def test_row_shuffle_moves_predictions_within_tolerance_only(self):
        # Demonstrate the reason the relations are tolerance-based:
        # reordering rows really does move lstsq output by last bits.
        data = figure1_dataset(n=200, noise_sd=0.05, rng=29)
        rng = np.random.default_rng(0)
        a = M5Prime(min_instances=15).fit(data)
        b = M5Prime(min_instances=15).fit(data.shuffled(rng))
        pa, pb = a.predict(data.X), b.predict(data.X)
        assert np.allclose(pa, pb, rtol=1e-6, atol=1e-9)

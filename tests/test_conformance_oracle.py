"""Tests for the naive reference implementation (the oracle itself)."""

import numpy as np
import pytest

from repro.conformance.oracle import (
    ReferenceM5Prime,
    _best_boundary,
    _exhaustive_best_split,
)
from repro.conformance.structure import diff_trees, trees_identical
from repro.core.tree import M5Prime
from repro.datasets.synthetic import (
    constant_dataset,
    figure1_dataset,
    step_dataset,
)


class TestSplitSearch:
    def test_finds_the_obvious_step(self):
        x = np.concatenate([np.zeros(20), np.ones(20)])
        y = np.concatenate([np.zeros(20), np.full(20, 10.0)])
        result = _exhaustive_best_split(x.reshape(-1, 1), y, min_leaf=2)
        assert result is not None
        attribute, threshold = result
        assert attribute == 0
        assert threshold == pytest.approx(0.5)

    def test_no_split_on_constant_target(self):
        x = np.linspace(0.0, 1.0, 30)
        y = np.full(30, 3.0)
        assert _exhaustive_best_split(x.reshape(-1, 1), y, min_leaf=2) is None

    def test_min_leaf_respected(self):
        xs = np.arange(10, dtype=np.float64)
        ys = np.where(xs < 1, 100.0, 0.0)
        # The best boundary leaves 1 row on the left; with min_leaf=3 an
        # accepted threshold must keep at least 3 rows on each side.
        found = _best_boundary(xs, ys, min_leaf=3, sd_total=float(np.std(ys)))
        if found is not None:
            _, threshold = found
            assert np.sum(xs <= threshold) >= 3
            assert np.sum(xs > threshold) >= 3

    def test_tied_attribute_values_never_split_between(self):
        xs = np.array([0.0, 1.0, 1.0, 1.0, 2.0, 2.0])
        ys = np.array([0.0, 5.0, 5.0, 5.0, 9.0, 9.0])
        found = _best_boundary(xs, ys, min_leaf=1, sd_total=float(np.std(ys)))
        assert found is not None
        _, threshold = found
        # The threshold must fall strictly between two distinct values,
        # never inside a run of ties.
        assert threshold in (0.5, 1.5)


class TestReferenceEstimator:
    def test_matches_production_bitwise(self):
        dataset = figure1_dataset(n=200, noise_sd=0.05, rng=11)
        production = M5Prime(min_instances=12).fit(dataset)
        oracle = ReferenceM5Prime(min_instances=12).fit(dataset)
        assert trees_identical(oracle.root_, production.root_)
        assert np.array_equal(
            oracle.predict(dataset.X), production.predict(dataset.X)
        )
        assert np.array_equal(
            oracle.leaf_ids(dataset.X), production.leaf_ids(dataset.X)
        )

    def test_matches_production_with_smoothing(self):
        dataset = step_dataset(n=150, noise_sd=0.1, rng=7)
        production = M5Prime(min_instances=10, smoothing=True).fit(dataset)
        oracle = ReferenceM5Prime(min_instances=10, smoothing=True).fit(dataset)
        assert not diff_trees(oracle.root_, production.root_)
        assert np.array_equal(
            oracle.predict(dataset.X), production.predict(dataset.X)
        )

    def test_constant_target_is_one_leaf(self):
        dataset = constant_dataset(value=2.5, n=60, p=3)
        oracle = ReferenceM5Prime(min_instances=8).fit(dataset)
        assert oracle.n_leaves == 1
        assert np.allclose(oracle.predict(dataset.X), 2.5)

    def test_leaf_ids_are_positive_and_dense(self):
        dataset = figure1_dataset(n=180, noise_sd=0.05, rng=3)
        oracle = ReferenceM5Prime(min_instances=12).fit(dataset)
        ids = oracle.leaf_ids(dataset.X)
        assert ids.min() >= 1
        assert set(np.unique(ids)) <= set(range(1, oracle.n_leaves + 1))

    def test_feature_ranges_recorded(self):
        dataset = figure1_dataset(n=120, noise_sd=0.05, rng=5)
        oracle = ReferenceM5Prime(min_instances=10).fit(dataset)
        assert oracle.feature_ranges_ is not None
        for (low, high), column in zip(oracle.feature_ranges_, dataset.X.T):
            assert low == float(np.min(column))
            assert high == float(np.max(column))

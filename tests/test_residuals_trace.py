"""Tests for residual analysis and the trace renderer."""

import numpy as np
import pytest

from repro.core.tree import M5Prime
from repro.datasets import Dataset
from repro.errors import DataError
from repro.evaluation import cross_validate, residual_report
from repro.simulator import (
    MachineConfig,
    SimulatedCore,
    event_totals,
    render_trace,
)
from repro.simulator.trace import event_labels
from repro.workloads import PhaseParams, synthesize_block


class TestResidualReport:
    @pytest.fixture(scope="class")
    def report(self, suite_dataset, suite_tree):
        cv = cross_validate(
            lambda: M5Prime(min_instances=12), suite_dataset, n_folds=4, rng=0
        )
        return residual_report(suite_dataset, cv.predictions, model=suite_tree)

    def test_overall_statistics(self, report, suite_dataset):
        assert report.overall.n == suite_dataset.n_instances
        assert report.overall.mae > 0
        assert report.overall.worst >= report.overall.mae

    def test_workload_groups_cover_dataset(self, report, suite_dataset):
        assert sum(g.n for g in report.by_workload) == suite_dataset.n_instances
        names = {g.name for g in report.by_workload}
        assert "mcf_like" in names

    def test_leaf_groups_cover_dataset(self, report, suite_dataset):
        assert sum(g.n for g in report.by_leaf) == suite_dataset.n_instances
        assert all(g.name.startswith("LM") for g in report.by_leaf)

    def test_bias_definition(self, suite_dataset):
        predictions = suite_dataset.y + 0.5  # uniform overestimate
        report = residual_report(suite_dataset, predictions)
        assert report.overall.bias == pytest.approx(0.5)
        assert report.overall.mae == pytest.approx(0.5)

    def test_biased_groups_detected(self, suite_dataset):
        predictions = suite_dataset.y * 1.5
        report = residual_report(suite_dataset, predictions)
        assert report.biased_groups(threshold=0.2)

    def test_unbiased_passes(self, suite_dataset):
        report = residual_report(suite_dataset, suite_dataset.y)
        assert report.biased_groups() == []

    def test_worst_workload(self, report):
        worst = report.worst_workload()
        assert worst is not None
        assert worst.relative_mae == max(
            g.relative_mae for g in report.by_workload
        )

    def test_render(self, report):
        text = report.render()
        assert "by workload:" in text
        assert "by tree class:" in text
        assert "overall:" in text

    def test_no_meta_no_workload_section(self):
        ds = Dataset([[1.0], [2.0]], [1.0, 2.0], ("a",))
        report = residual_report(ds, [1.0, 2.0])
        assert report.by_workload == []
        assert report.worst_workload() is None

    def test_length_mismatch(self, suite_dataset):
        with pytest.raises(DataError):
            residual_report(suite_dataset, [1.0, 2.0])


class TestTraceRenderer:
    @pytest.fixture(scope="class")
    def replay(self):
        core = SimulatedCore(MachineConfig.tiny(), rng=0)
        block = synthesize_block(
            PhaseParams(lcp_fraction=0.1, misalign_fraction=0.1), 256, rng=0
        )
        return block, core.run_block(block)

    def test_lines_reference_real_events(self, replay):
        block, result = replay
        text = render_trace(block, result.events, limit=10)
        assert "pc=0x" in text

    def test_limit_respected(self, replay):
        block, result = replay
        text = render_trace(block, result.events, limit=5)
        event_lines = [
            line for line in text.splitlines() if not line.startswith(("(", "..."))
        ]
        assert len(event_lines) <= 5

    def test_only_events_filter(self, replay):
        block, result = replay
        everything = render_trace(
            block, result.events, limit=10_000, only_events=False
        )
        event_lines = [
            line for line in everything.splitlines()
            if not line.startswith(("(", "..."))
        ]
        assert len(event_lines) == len(block)

    def test_event_labels_match_flags(self, replay):
        block, result = replay
        for index in range(20):
            labels = event_labels(result.events, index)
            assert ("LCP" in labels) == bool(result.events.lcp[index])
            assert ("MISP" in labels) == bool(result.events.mispred[index])

    def test_event_totals_match_counts(self, replay):
        block, result = replay
        totals = event_totals(result.events)
        assert totals["L1Dm"] == int(np.count_nonzero(result.events.l1dm))
        assert totals["LCP"] == int(np.count_nonzero(result.events.lcp))

    def test_validation(self, replay):
        block, result = replay
        with pytest.raises(DataError):
            render_trace(block, result.events, limit=0)
        with pytest.raises(DataError):
            render_trace(block, result.events, start=len(block))

    def test_empty_result_message(self):
        core = SimulatedCore(MachineConfig(), rng=0)
        calm = synthesize_block(
            PhaseParams(
                data_footprint=1024,
                hot_set_bytes=1024,
                hot_fraction=1.0,
                branch_fraction=0.0,
                misalign_fraction=0.0,
                store_load_alias_fraction=0.0,
            ),
            64,
            rng=0,
        )
        # Warm up fully, then replay: almost nothing fires.
        core.run_block(calm)
        result = core.run_block(calm)
        text = render_trace(calm, result.events, limit=5)
        assert text  # never empty: either lines or the placeholder

"""Metrics exposition format, drift monitoring, and the preflight."""

import numpy as np
import pytest

from repro.core.tree import M5Prime
from repro.errors import ConfigError
from repro.serve.check import preflight, render_preflight
from repro.serve.drift import DriftMonitor
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serve.registry import ModelRegistry


class TestCounter:
    def test_inc_and_render(self):
        counter = Counter("repro_things_total", "Things.", ("kind",))
        counter.inc("a")
        counter.inc("a")
        counter.inc("b", amount=3)
        assert counter.value("a") == 2
        lines = counter.render()
        assert "# TYPE repro_things_total counter" in lines
        assert 'repro_things_total{kind="a"} 2' in lines
        assert 'repro_things_total{kind="b"} 3' in lines

    def test_counters_only_go_up(self):
        with pytest.raises(ConfigError):
            Counter("c_total", "x").inc(amount=-1)

    def test_label_arity_enforced(self):
        with pytest.raises(ConfigError):
            Counter("c_total", "x", ("a", "b")).inc("only-one")

    def test_label_escaping(self):
        counter = Counter("c_total", "x", ("label",))
        counter.inc('with "quotes"\nand newline')
        line = [l for l in counter.render() if not l.startswith("#")][0]
        assert '\\"quotes\\"' in line and "\\n" in line


class TestHistogram:
    def test_cumulative_buckets(self):
        histogram = Histogram("h_seconds", "x", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        lines = histogram.render()
        assert 'h_seconds_bucket{le="0.1"} 1' in lines
        assert 'h_seconds_bucket{le="1"} 3' in lines
        assert 'h_seconds_bucket{le="10"} 4' in lines
        assert 'h_seconds_bucket{le="+Inf"} 5' in lines
        assert "h_seconds_count 5" in lines
        assert histogram.count() == 5

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigError):
            Histogram("h", "x", buckets=(1.0, 0.5))


class TestRegistryOfMetrics:
    def test_render_order_and_duplicates(self):
        metrics = MetricsRegistry()
        metrics.counter("a_total", "A.")
        metrics.gauge("b", "B.")
        text = metrics.render()
        assert text.index("a_total") < text.index("# HELP b ")
        with pytest.raises(ConfigError):
            metrics.counter("a_total", "again")
        assert isinstance(metrics.get("b"), Gauge)
        with pytest.raises(ConfigError):
            metrics.get("missing")


class TestDriftMonitor:
    def test_out_of_range_counted_beyond_slack(self, suite_tree,
                                               suite_dataset):
        monitor = DriftMonitor(suite_tree, range_slack=0.10)
        assert monitor.monitors_ranges
        monitor.observe(suite_dataset.X)  # training data: inside by definition
        snapshot = monitor.snapshot()
        assert snapshot["rows_seen"] == suite_dataset.n_instances
        assert snapshot["out_of_range"] == {}

        wild = suite_dataset.X[:1].copy()
        wild[0, 0] = suite_dataset.X[:, 0].max() * 100 + 1e9
        monitor.observe(wild)
        snapshot = monitor.snapshot()
        feature = suite_tree.attributes_[0]
        assert snapshot["out_of_range"] == {feature: 1}

    def test_invariant_violations_counted(self, suite_tree, suite_dataset):
        monitor = DriftMonitor(suite_tree)
        broken = suite_dataset.X[:4].copy()
        names = list(suite_tree.attributes_)
        # Violate the Table I hierarchy: an L2 miss implies an L1D miss.
        broken[:, names.index("L2M")] = 0.9
        broken[:, names.index("L1DM")] = 0.1
        monitor.observe(broken)
        snapshot = monitor.snapshot()
        assert sum(snapshot["invariant_violations"].values()) > 0

    def test_render_metrics_lines(self, suite_tree, suite_dataset):
        monitor = DriftMonitor(suite_tree)
        monitor.observe(suite_dataset.X[:5])
        lines = monitor.render_metrics("cpi-tree@1")
        assert 'repro_drift_rows_total{model="cpi-tree@1"} 5' in lines

    def test_nan_inputs_counted(self, suite_tree, suite_dataset):
        monitor = DriftMonitor(suite_tree)
        broken = suite_dataset.X[:6].copy()
        broken[0, 0] = np.nan
        broken[2, 3] = np.inf
        monitor.observe(broken)
        snapshot = monitor.snapshot()
        assert snapshot["rows_seen"] == 6
        assert snapshot["nan_inputs"] == 2

    def test_predictions_checked_against_interval(self, suite_tree):
        monitor = DriftMonitor(suite_tree, output_interval=(0.0, 10.0))
        assert monitor.monitors_output
        monitor.observe_predictions(np.array([1.0, 5.0, 11.0, np.nan]))
        snapshot = monitor.snapshot()
        assert snapshot["predictions_seen"] == 4
        assert snapshot["out_of_bounds_predictions"] == 2

    def test_nonfinite_predictions_flagged_without_interval(self, suite_tree):
        monitor = DriftMonitor(suite_tree)
        assert not monitor.monitors_output
        monitor.observe_predictions(np.array([2.0, np.inf]))
        snapshot = monitor.snapshot()
        assert snapshot["out_of_bounds_predictions"] == 1

    def test_new_metric_families_rendered(self, suite_tree):
        monitor = DriftMonitor(suite_tree, output_interval=(0.0, 10.0))
        monitor.observe_predictions(np.array([42.0]))
        lines = monitor.render_metrics("m@1")
        assert 'repro_drift_nan_inputs_total{model="m@1"} 0' in lines
        assert 'repro_drift_predictions_total{model="m@1"} 1' in lines
        assert ('repro_drift_out_of_bounds_predictions_total{model="m@1"} 1'
                in lines)

    def test_model_without_ranges(self, suite_tree):
        bare = M5Prime()
        bare.root_ = suite_tree.root_
        bare.attributes_ = suite_tree.attributes_
        monitor = DriftMonitor(bare)
        assert not monitor.monitors_ranges
        monitor.observe(np.zeros((2, len(bare.attributes_))))
        assert monitor.snapshot()["out_of_range"] == {}


class TestPreflight:
    def test_clean_registry_passes(self, tmp_path, suite_tree):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("cpi-tree", suite_tree)
        results = preflight(registry)
        assert all(r.ok for r in results)
        names = [r.name for r in results]
        assert names == [
            "manifest", "resolve", "compile", "verify", "compiled-parity",
            "drift",
        ]
        assert "preflight passed" in render_preflight(results)

    def test_empty_registry_fails(self, tmp_path):
        results = preflight(ModelRegistry(tmp_path / "registry"))
        assert not all(r.ok for r in results)
        assert "FAILED" in render_preflight(results)

    def test_corrupt_blob_fails_resolve_probe(self, tmp_path, suite_tree):
        registry = ModelRegistry(tmp_path / "registry")
        record = registry.publish("cpi-tree", suite_tree)
        blob = registry.directory / record.blob
        blob.write_text("garbage")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            results = preflight(registry, model_spec="cpi-tree@1")
        failed = [r for r in results if not r.ok]
        assert failed and failed[0].name == "resolve"

    def test_smoothed_model_parity(self, tmp_path, suite_dataset):
        model = M5Prime(min_instances=12, smoothing=True).fit(suite_dataset)
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("smooth", model)
        results = preflight(registry)
        parity = [r for r in results if r.name == "compiled-parity"][0]
        assert parity.ok and "smoothing" in parity.detail


class TestDriftMonitorConcurrency:
    def test_counters_exact_under_concurrent_observe(
        self, suite_tree, suite_dataset
    ):
        """Regression: counter updates must be atomic under /predict load.

        Eight threads each fold 50 batches of 4 rows; if the lock around
        the counter updates were missing (or a read-modify-write escaped
        it), lost updates would make the totals come up short.
        """
        import threading

        monitor = DriftMonitor(suite_tree)
        rows = suite_dataset.X[:4]
        n_threads, n_batches = 8, 50

        def hammer():
            for _ in range(n_batches):
                monitor.observe(rows)
                monitor.observe_predictions(np.zeros(rows.shape[0]))

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = monitor.snapshot()
        expected = n_threads * n_batches * rows.shape[0]
        assert snapshot["rows_seen"] == expected
        assert snapshot["predictions_seen"] == expected

"""Tests for the paired significance machinery."""

import pytest

from repro.baselines import LinearRegressionBaseline, NaiveFixedPenaltyModel
from repro.core.tree import M5Prime
from repro.datasets.synthetic import figure1_dataset
from repro.errors import ConfigError, DataError
from repro.evaluation import (
    compare_estimators,
    cross_validate,
    naive_paired_ttest,
    paired_fold_test,
)


@pytest.fixture(scope="module")
def cv_pair():
    ds = figure1_dataset(n=400, noise_sd=0.1, rng=0)
    tree = cross_validate(lambda: M5Prime(min_instances=25), ds, n_folds=8, rng=3)
    ols = cross_validate(LinearRegressionBaseline, ds, n_folds=8, rng=3)
    return tree, ols


class TestPairedFoldTest:
    def test_clear_difference_is_significant(self, cv_pair):
        tree, ols = cv_pair
        # The model tree is far better than one line on piecewise data.
        result = paired_fold_test(ols, tree, metric="mae")
        assert result.mean_difference > 0
        assert result.significant()
        assert result.corrected

    def test_self_comparison_not_significant(self, cv_pair):
        tree, _ = cv_pair
        result = paired_fold_test(tree, tree, metric="mae")
        assert result.mean_difference == pytest.approx(0.0)
        assert result.p_value == pytest.approx(1.0)
        assert not result.significant()

    def test_symmetry(self, cv_pair):
        tree, ols = cv_pair
        forward = paired_fold_test(ols, tree, metric="mae")
        backward = paired_fold_test(tree, ols, metric="mae")
        assert forward.mean_difference == pytest.approx(-backward.mean_difference)
        assert forward.p_value == pytest.approx(backward.p_value)

    def test_correction_is_more_conservative(self, cv_pair):
        tree, ols = cv_pair
        corrected = paired_fold_test(ols, tree, metric="mae")
        naive = naive_paired_ttest(ols, tree, metric="mae")
        assert abs(corrected.t_statistic) <= abs(naive.t_statistic) + 1e-12
        assert corrected.p_value >= naive.p_value - 1e-12

    def test_correlation_metric(self, cv_pair):
        tree, ols = cv_pair
        result = paired_fold_test(tree, ols, metric="correlation")
        assert result.mean_difference > 0  # tree correlates better

    def test_unknown_metric(self, cv_pair):
        tree, ols = cv_pair
        with pytest.raises(ConfigError):
            paired_fold_test(tree, ols, metric="accuracy")

    def test_fold_count_mismatch(self, cv_pair):
        tree, _ = cv_pair
        ds = figure1_dataset(n=200, rng=1)
        other = cross_validate(LinearRegressionBaseline, ds, n_folds=4, rng=0)
        with pytest.raises(DataError):
            paired_fold_test(tree, other)

    def test_describe(self, cv_pair):
        tree, ols = cv_pair
        text = paired_fold_test(ols, tree).describe()
        assert "paired t" in text
        assert "p = " in text


class TestComparisonSignificance:
    def test_against_reference(self, suite_dataset):
        comparison = compare_estimators(
            {
                "tree": lambda: M5Prime(min_instances=12),
                "naive": NaiveFixedPenaltyModel,
            },
            suite_dataset,
            n_folds=6,
            seed=0,
        )
        tests = comparison.significance_against("tree")
        assert set(tests) == {"naive"}
        assert tests["naive"].mean_difference > 0  # naive is worse

    def test_unknown_reference(self, suite_dataset):
        comparison = compare_estimators(
            {"tree": lambda: M5Prime(min_instances=12)},
            suite_dataset,
            n_folds=4,
            seed=0,
        )
        with pytest.raises(ConfigError):
            comparison.significance_against("xgboost")

"""Tests for repro._util helpers."""

import numpy as np
import pytest

from repro._util import (
    as_float_matrix,
    as_float_vector,
    check_matching_lengths,
    check_random_state,
    ensure_fraction,
    ensure_positive,
    format_float,
    sample_sd,
    stable_hash,
)
from repro.errors import ConfigError, DataError


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = check_random_state(42).random(5)
        b = check_random_state(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = check_random_state(1).random(5)
        b = check_random_state(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passes_through(self):
        generator = np.random.default_rng(0)
        assert check_random_state(generator) is generator

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            check_random_state("seed")


class TestAsFloatMatrix:
    def test_converts_lists(self):
        matrix = as_float_matrix([[1, 2], [3, 4]])
        assert matrix.shape == (2, 2)
        assert matrix.dtype == np.float64

    def test_promotes_1d_to_row(self):
        assert as_float_matrix([1.0, 2.0, 3.0]).shape == (1, 3)

    def test_rejects_3d(self):
        with pytest.raises(DataError):
            as_float_matrix(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(DataError):
            as_float_matrix([[1.0, float("nan")]])

    def test_rejects_inf(self):
        with pytest.raises(DataError):
            as_float_matrix([[float("inf"), 1.0]])


class TestAsFloatVector:
    def test_flattens(self):
        assert as_float_vector([[1.0], [2.0]]).shape == (2,)

    def test_rejects_nan(self):
        with pytest.raises(DataError):
            as_float_vector([1.0, float("nan")])


def test_check_matching_lengths_raises_on_mismatch():
    with pytest.raises(DataError):
        check_matching_lengths(np.zeros((3, 2)), np.zeros(4))


def test_check_matching_lengths_accepts_match():
    check_matching_lengths(np.zeros((3, 2)), np.zeros(3))


class TestSampleSd:
    def test_empty_is_zero(self):
        assert sample_sd(np.array([])) == 0.0

    def test_single_is_zero(self):
        assert sample_sd(np.array([5.0])) == 0.0

    def test_matches_numpy_population_sd(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        assert sample_sd(values) == pytest.approx(np.std(values))


class TestFormatFloat:
    def test_strips_trailing_zeros(self):
        assert format_float(1.5000) == "1.5"

    def test_integer_value(self):
        assert format_float(2.0) == "2"

    def test_zero(self):
        assert format_float(0.0) == "0"

    def test_negative_zero_normalized(self):
        assert format_float(-0.00001, digits=2) == "0"

    def test_digits_respected(self):
        assert format_float(0.123456, digits=3) == "0.123"


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(["a", 1]) == stable_hash(["a", 1])

    def test_order_sensitive(self):
        assert stable_hash(["a", "b"]) != stable_hash(["b", "a"])

    def test_short_hex(self):
        digest = stable_hash(["x"])
        assert len(digest) == 16
        int(digest, 16)  # must be valid hex


def test_ensure_positive_rejects_zero():
    with pytest.raises(ConfigError):
        ensure_positive(0, "value")


def test_ensure_fraction_bounds():
    ensure_fraction(0.0, "f")
    ensure_fraction(1.0, "f")
    with pytest.raises(ConfigError):
        ensure_fraction(1.5, "f")

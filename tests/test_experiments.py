"""Tests for the experiment framework (configs, data cache, registry).

Experiments themselves run at the ``tiny`` preset here — fast smoke
coverage.  The quantitative shape checks run at the ``quick``/``paper``
presets inside the benchmark suite, which is where their results are
recorded for EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    get_experiment,
    run_experiment,
    suite_dataset,
)
from repro.experiments.report import ExperimentReport


class TestConfig:
    def test_presets(self):
        assert ExperimentConfig.paper().min_instances == 430
        assert ExperimentConfig.quick().name == "quick"
        assert ExperimentConfig.tiny().use_cache is False

    def test_by_name(self):
        assert ExperimentConfig.by_name("paper").name == "paper"
        with pytest.raises(ConfigError):
            ExperimentConfig.by_name("huge")

    def test_overrides(self):
        cfg = ExperimentConfig.tiny().with_overrides(seed=99)
        assert cfg.seed == 99
        assert cfg.name == "tiny"

    def test_validation(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(sections_per_workload=1)
        with pytest.raises(ConfigError):
            ExperimentConfig(n_folds=1)

    def test_cache_key_ignores_model_params(self):
        a = ExperimentConfig.tiny()
        b = a.with_overrides(min_instances=99)
        assert a.cache_key() == b.cache_key()


class TestSuiteDataset:
    def test_memoized_in_process(self):
        cfg = ExperimentConfig.tiny()
        a = suite_dataset(cfg)
        b = suite_dataset(cfg)
        assert a is b

    def test_disk_cache_round_trip(self, tmp_path):
        cfg = ExperimentConfig.tiny().with_overrides(use_cache=True, seed=123)
        first = suite_dataset(cfg, cache_dir=tmp_path)
        # Clear the memory cache to force the disk path.
        from repro.experiments import data as data_module

        data_module._MEMORY_CACHE.clear()
        second = suite_dataset(cfg, cache_dir=tmp_path)
        assert np.allclose(first.X, second.X)
        assert np.allclose(first.y, second.y)
        data_module._MEMORY_CACHE.clear()

    def test_different_seeds_not_shared(self):
        a = suite_dataset(ExperimentConfig.tiny().with_overrides(seed=1))
        b = suite_dataset(ExperimentConfig.tiny().with_overrides(seed=2))
        assert not np.array_equal(a.y, b.y)


class TestRegistry:
    def test_all_ids_present(self):
        expected = {"T1", "F1", "F2", "F3", "R1", "R2", "R3", "R4", "R5",
                    "A1", "A2", "A3", "A4", "E1", "E2", "E3"}
        assert set(EXPERIMENTS) == expected

    def test_lookup_case_insensitive(self):
        assert get_experiment("f2") is EXPERIMENTS["F2"]

    def test_unknown_id(self):
        with pytest.raises(ConfigError):
            get_experiment("Z9")


class TestReports:
    def test_table1_passes_fully(self):
        report = run_experiment("T1", ExperimentConfig.tiny())
        assert report.all_checks_pass
        assert "L2M" in report.body
        assert report.experiment_id == "T1"

    def test_figure1_passes_fully(self):
        report = run_experiment("F1", ExperimentConfig.tiny())
        assert report.all_checks_pass
        assert "LM" in report.body

    @pytest.mark.parametrize("eid", ["F2", "F3", "R1", "R3", "R4", "R5"])
    def test_suite_experiments_run_at_tiny_scale(self, eid):
        report = run_experiment(eid, ExperimentConfig.tiny())
        assert isinstance(report, ExperimentReport)
        assert report.measured
        assert report.checks

    def test_render_format(self):
        report = ExperimentReport(
            experiment_id="X1",
            title="demo",
            paper_claim="something",
            measured={"value": "1"},
            checks={"ok": True, "bad": False},
            body="details",
        )
        text = report.render()
        assert "[PASS] ok" in text
        assert "[FAIL] bad" in text
        assert not report.all_checks_pass

    def test_figure3_scatter_renders(self):
        report = run_experiment("F3", ExperimentConfig.tiny())
        assert "unity line" in report.body

"""Tests for metrics, cross validation and the comparison harness."""

import numpy as np
import pytest

from repro.baselines import LinearRegressionBaseline
from repro.core.tree import M5Prime
from repro.datasets.synthetic import figure1_dataset, linear_dataset
from repro.errors import ConfigError, DataError
from repro.evaluation import (
    ComparisonResult,
    compare_estimators,
    correlation_coefficient,
    cross_validate,
    evaluate_predictions,
    mean_absolute_error,
    relative_absolute_error,
    render_table,
    root_mean_squared_error,
    root_relative_squared_error,
)
from repro.evaluation.metrics import mean_result


class TestMetrics:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert correlation_coefficient(y, y) == pytest.approx(1.0)
        assert mean_absolute_error(y, y) == 0.0
        assert relative_absolute_error(y, y) == 0.0
        assert root_mean_squared_error(y, y) == 0.0
        assert root_relative_squared_error(y, y) == 0.0

    def test_mean_predictor_has_unit_rae(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        predictions = np.full(4, y.mean())
        assert relative_absolute_error(y, predictions) == pytest.approx(1.0)
        assert root_relative_squared_error(y, predictions) == pytest.approx(1.0)

    def test_mae_value(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 4.0]) == pytest.approx(1.5)

    def test_rmse_value(self):
        assert root_mean_squared_error([0.0, 0.0], [3.0, 4.0]) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_anticorrelation(self):
        y = np.array([1.0, 2.0, 3.0])
        assert correlation_coefficient(y, -y) == pytest.approx(-1.0)

    def test_constant_prediction_zero_correlation(self):
        assert correlation_coefficient([1.0, 2.0, 3.0], [5.0, 5.0, 5.0]) == 0.0

    def test_rae_undefined_for_constant_target(self):
        with pytest.raises(DataError):
            relative_absolute_error([2.0, 2.0], [1.0, 3.0])

    def test_length_mismatch(self):
        with pytest.raises(DataError):
            mean_absolute_error([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            mean_absolute_error([], [])

    def test_evaluate_predictions_bundle(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        predictions = y + 0.1
        result = evaluate_predictions(y, predictions)
        assert result.correlation == pytest.approx(1.0)
        assert result.mae == pytest.approx(0.1)
        assert result.n == 4
        assert "RAE" in result.describe()

    def test_mean_result(self):
        a = evaluate_predictions([1.0, 2.0], [1.0, 2.0])
        b = evaluate_predictions([1.0, 3.0], [2.0, 2.0])
        mean = mean_result([a, b])
        assert mean.mae == pytest.approx((a.mae + b.mae) / 2)
        assert mean.n == a.n + b.n

    def test_mean_result_empty_rejected(self):
        with pytest.raises(DataError):
            mean_result([])


class TestCrossValidate:
    def test_out_of_fold_predictions_cover_dataset(self):
        ds = linear_dataset([2.0], n=60, noise_sd=0.01, rng=0)
        result = cross_validate(LinearRegressionBaseline, ds, n_folds=5, rng=0)
        assert result.predictions.shape == (60,)
        assert result.n_folds == 5
        assert np.array_equal(result.actuals, ds.y)

    def test_linear_data_high_accuracy(self):
        ds = linear_dataset([2.0, 1.0], n=100, noise_sd=0.01, rng=0)
        result = cross_validate(LinearRegressionBaseline, ds, n_folds=5, rng=0)
        assert result.mean.correlation > 0.99
        assert result.pooled.correlation > 0.99

    def test_deterministic_given_seed(self):
        ds = figure1_dataset(n=300, rng=0)
        a = cross_validate(lambda: M5Prime(min_instances=20), ds, 4, rng=1)
        b = cross_validate(lambda: M5Prime(min_instances=20), ds, 4, rng=1)
        assert np.array_equal(a.predictions, b.predictions)

    def test_describe(self):
        ds = linear_dataset([1.0], n=40, rng=0)
        result = cross_validate(LinearRegressionBaseline, ds, n_folds=4, rng=0)
        assert "fold" in result.describe()

    def test_fold_metrics_averaged(self):
        ds = linear_dataset([1.0], n=40, noise_sd=0.1, rng=0)
        result = cross_validate(LinearRegressionBaseline, ds, n_folds=4, rng=0)
        assert result.mean.mae == pytest.approx(
            float(np.mean([f.mae for f in result.folds]))
        )


class TestCompare:
    def _dataset(self):
        return figure1_dataset(n=240, rng=0)

    def test_same_folds_for_all_methods(self):
        ds = self._dataset()
        result = compare_estimators(
            {
                "ols": LinearRegressionBaseline,
                "tree": lambda: M5Prime(min_instances=20),
            },
            ds,
            n_folds=4,
            seed=0,
        )
        assert set(result.results) == {"ols", "tree"}
        assert result.n_folds == 4

    def test_ranking_orders(self):
        ds = self._dataset()
        result = compare_estimators(
            {
                "ols": LinearRegressionBaseline,
                "tree": lambda: M5Prime(min_instances=20),
            },
            ds,
            n_folds=4,
            seed=0,
        )
        # The model tree must beat global OLS on piecewise-linear data.
        assert result.ranking("rae")[0] == "tree"
        assert result.ranking("correlation")[0] == "tree"

    def test_unknown_metric(self):
        result = ComparisonResult(results={}, n_folds=2)
        with pytest.raises(ConfigError):
            result.ranking("accuracy")

    def test_table_rendering(self):
        ds = self._dataset()
        result = compare_estimators(
            {"ols": LinearRegressionBaseline}, ds, n_folds=4, seed=0
        )
        table = result.to_table()
        assert "method" in table
        assert "ols" in table

    def test_empty_factories_rejected(self):
        with pytest.raises(ConfigError):
            compare_estimators({}, self._dataset())


class TestRenderTable:
    def test_alignment(self):
        table = render_table(["a", "long header"], [["1", "2"]])
        lines = table.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("a")

    def test_empty_rows_ok(self):
        table = render_table(["a"], [])
        assert "a" in table

    def test_mismatched_row_rejected(self):
        with pytest.raises(DataError):
            render_table(["a", "b"], [["1"]])

    def test_empty_header_rejected(self):
        with pytest.raises(DataError):
            render_table([], [])

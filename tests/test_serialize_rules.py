"""Tests for model persistence and rule extraction."""

import json

import numpy as np
import pytest

from repro.core.analysis import extract_rules, render_rules
from repro.core.tree import M5Prime, load_model, model_from_dict, model_to_dict, save_model
from repro.core.tree.serialize import FORMAT_VERSION
from repro.datasets.synthetic import constant_dataset
from repro.errors import NotFittedError, ParseError


class TestSerialization:
    def test_round_trip_predictions(self, figure1_data, figure1_tree, tmp_path):
        path = tmp_path / "model.json"
        save_model(figure1_tree, path)
        loaded = load_model(path)
        assert np.allclose(
            figure1_tree.predict(figure1_data.X), loaded.predict(figure1_data.X)
        )

    def test_round_trip_structure(self, figure1_tree, tmp_path):
        path = tmp_path / "model.json"
        save_model(figure1_tree, path)
        loaded = load_model(path)
        assert loaded.n_leaves == figure1_tree.n_leaves
        assert loaded.depth == figure1_tree.depth
        assert loaded.attributes_ == figure1_tree.attributes_
        assert loaded.target_name_ == figure1_tree.target_name_
        assert loaded.to_text() == figure1_tree.to_text()

    def test_round_trip_params(self, figure1_data, tmp_path):
        model = M5Prime(min_instances=50, smoothing=True, smoothing_k=7.0)
        model.fit(figure1_data)
        path = tmp_path / "model.json"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.min_instances == 50
        assert loaded.smoothing is True
        assert loaded.smoothing_k == 7.0
        # Smoothing must work on the reloaded tree too.
        assert np.allclose(
            model.predict(figure1_data.X[:5]), loaded.predict(figure1_data.X[:5])
        )

    def test_single_leaf_round_trip(self, tmp_path):
        model = M5Prime().fit(constant_dataset(value=3.0))
        path = tmp_path / "flat.json"
        save_model(model, path)
        assert load_model(path).predict_one([0.1, 0.2, 0.3]) == pytest.approx(3.0)

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            model_to_dict(M5Prime())

    def test_version_checked(self, figure1_tree):
        payload = model_to_dict(figure1_tree)
        payload["version"] = FORMAT_VERSION + 1
        with pytest.raises(ParseError):
            model_from_dict(payload)

    def test_format_checked(self, figure1_tree):
        payload = model_to_dict(figure1_tree)
        payload["format"] = "something-else"
        with pytest.raises(ParseError):
            model_from_dict(payload)

    def test_malformed_document(self):
        with pytest.raises(ParseError):
            model_from_dict({"format": "repro-m5prime", "version": FORMAT_VERSION})

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ParseError):
            load_model(path)

    def test_load_errors_name_the_offending_path(self, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        with pytest.raises(ParseError, match="broken.json"):
            load_model(broken)
        not_dict = tmp_path / "list.json"
        not_dict.write_text("[1, 2, 3]")
        with pytest.raises(ParseError, match="list.json"):
            load_model(not_dict)
        truncated = tmp_path / "truncated.json"
        truncated.write_text(
            json.dumps({"format": "repro-m5prime", "version": FORMAT_VERSION})
        )
        with pytest.raises(ParseError, match="truncated.json"):
            load_model(truncated)

    def test_feature_ranges_round_trip(self, figure1_tree, tmp_path):
        path = tmp_path / "model.json"
        save_model(figure1_tree, path)
        loaded = load_model(path)
        assert loaded.feature_ranges_ == figure1_tree.feature_ranges_
        assert loaded.feature_ranges_ is not None

    def test_feature_ranges_length_checked(self, figure1_tree):
        payload = model_to_dict(figure1_tree)
        payload["feature_ranges"] = payload["feature_ranges"][:-1]
        with pytest.raises(ParseError, match="feature_ranges"):
            model_from_dict(payload)

    def test_pre_range_document_still_loads(self, figure1_tree):
        # models saved before feature_ranges existed must stay loadable
        payload = model_to_dict(figure1_tree)
        del payload["feature_ranges"]
        loaded = model_from_dict(payload)
        assert loaded.feature_ranges_ is None

    def test_document_is_plain_json(self, figure1_tree):
        payload = model_to_dict(figure1_tree)
        json.dumps(payload)  # must not contain numpy scalars etc.


class TestRules:
    def test_one_rule_per_leaf(self, figure1_tree):
        rules = extract_rules(figure1_tree)
        assert len(rules) == figure1_tree.n_leaves
        assert [rule.leaf_id for rule in rules] == list(
            range(1, figure1_tree.n_leaves + 1)
        )

    def test_rules_cover_and_agree_with_routing(self, figure1_data, figure1_tree):
        rules = {rule.leaf_id: rule for rule in extract_rules(figure1_tree)}
        ids = figure1_tree.leaf_ids(figure1_data.X)
        for x, leaf_id in zip(figure1_data.X[:100], ids[:100]):
            rule = rules[int(leaf_id)]
            for condition in rule.conditions:
                value = x[figure1_tree.attributes_.index(condition.attribute)]
                if condition.operator == "<=":
                    assert value <= condition.threshold
                else:
                    assert value > condition.threshold

    def test_rule_model_matches_leaf_model(self, figure1_tree):
        rules = extract_rules(figure1_tree)
        models = figure1_tree.leaf_models()
        for rule in rules:
            assert rule.model is models[rule.leaf_id]

    def test_populations_sum_to_training_set(self, figure1_data, figure1_tree):
        rules = extract_rules(figure1_tree)
        assert sum(rule.n_instances for rule in rules) == figure1_data.n_instances

    def test_high_side_attributes(self, figure1_tree):
        rules = extract_rules(figure1_tree)
        last = rules[-1]  # rightmost leaf: all conditions are high-side
        assert set(last.high_side_attributes) == {
            c.attribute for c in last.conditions
        }

    def test_single_leaf_rule_is_true(self):
        model = M5Prime().fit(constant_dataset())
        rules = extract_rules(model)
        assert len(rules) == 1
        assert rules[0].conditions == ()
        assert "IF   TRUE" in rules[0].describe()

    def test_render(self, figure1_tree):
        text = render_rules(figure1_tree)
        assert "RULE 1" in text
        assert " AND " in text

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            extract_rules(M5Prime())

"""Tests for phase tracking over section timelines."""

import numpy as np
import pytest

from repro.core.analysis import PhaseSegment, detect_phases, render_phases
from repro.core.analysis.phasetrack import _majority_filter
from repro.core.tree import M5Prime
from repro.datasets import Dataset
from repro.errors import ConfigError


def two_phase_timeline(n_per_phase=30, seed=0):
    """Sections alternating between a low class and a high class."""
    rng = np.random.default_rng(seed)
    low = rng.normal(0.1, 0.02, size=(n_per_phase, 1))
    high = rng.normal(0.9, 0.02, size=(n_per_phase, 1))
    X = np.vstack([low, high])
    y = np.concatenate(
        [rng.normal(1.0, 0.05, n_per_phase), rng.normal(3.0, 0.05, n_per_phase)]
    )
    return Dataset(X, y, ("L2M",))


class TestMajorityFilter:
    def test_window_one_is_identity(self):
        labels = np.array([1, 2, 1, 2])
        assert np.array_equal(_majority_filter(labels, 1), labels)

    def test_suppresses_single_flicker(self):
        labels = np.array([1, 1, 2, 1, 1])
        assert np.array_equal(_majority_filter(labels, 3), np.ones(5, dtype=int))

    def test_preserves_true_transition(self):
        labels = np.array([1, 1, 1, 2, 2, 2])
        smoothed = _majority_filter(labels, 3)
        assert smoothed[0] == 1
        assert smoothed[-1] == 2


class TestDetectPhases:
    def test_recovers_two_phases(self):
        timeline = two_phase_timeline()
        model = M5Prime(min_instances=10).fit(timeline)
        segments = detect_phases(model, timeline, smoothing_window=3)
        assert len(segments) == 2
        assert segments[0].leaf_id != segments[1].leaf_id
        assert abs(segments[1].start - 30) <= 2

    def test_segments_cover_timeline(self):
        timeline = two_phase_timeline()
        model = M5Prime(min_instances=10).fit(timeline)
        segments = detect_phases(model, timeline)
        assert segments[0].start == 0
        assert segments[-1].end == timeline.n_instances
        for prev, nxt in zip(segments, segments[1:]):
            assert prev.end == nxt.start

    def test_single_phase_single_segment(self):
        rng = np.random.default_rng(0)
        # A constant attribute leaves the tree nothing to split on, so
        # the whole timeline is one class.
        X = np.full((40, 1), 0.5)
        y = rng.normal(1.0, 0.01, 40)
        timeline = Dataset(X, y, ("L2M",))
        model = M5Prime(min_instances=10).fit(timeline)
        segments = detect_phases(model, timeline)
        assert len(segments) == 1
        assert segments[0].length == 40

    def test_purity_and_mean(self):
        timeline = two_phase_timeline()
        model = M5Prime(min_instances=10).fit(timeline)
        segments = detect_phases(model, timeline, smoothing_window=3)
        for segment in segments:
            assert 0.5 <= segment.purity <= 1.0
        assert segments[0].mean_cpi < segments[1].mean_cpi

    def test_min_segment_merges_short_runs(self):
        timeline = two_phase_timeline(n_per_phase=30)
        model = M5Prime(min_instances=10).fit(timeline)
        segments = detect_phases(
            model, timeline, smoothing_window=1, min_segment=40
        )
        # No segment other than the first can be shorter than min_segment,
        # so everything merges into one.
        assert len(segments) == 1

    def test_validation(self):
        timeline = two_phase_timeline()
        model = M5Prime(min_instances=10).fit(timeline)
        with pytest.raises(ConfigError):
            detect_phases(model, timeline, smoothing_window=0)
        with pytest.raises(ConfigError):
            detect_phases(model, timeline, min_segment=0)

    def test_render(self):
        timeline = two_phase_timeline()
        model = M5Prime(min_instances=10).fit(timeline)
        text = render_phases(detect_phases(model, timeline))
        assert "class LM" in text
        assert render_phases([]) == "(no segments)"

    def test_segment_describe(self):
        segment = PhaseSegment(0, 10, 3, 1.5, 0.9)
        assert "LM3" in segment.describe()
        assert segment.length == 10


class TestExtensionExperiments:
    def test_platform_comparison_tiny(self):
        from repro.experiments import ExperimentConfig, run_experiment

        report = run_experiment("E1", ExperimentConfig.tiny())
        assert report.measured
        assert "workload" in report.body

    def test_phase_tracking_tiny(self):
        from repro.experiments import ExperimentConfig, run_experiment

        report = run_experiment("E2", ExperimentConfig.tiny())
        assert report.measured["true phases"] == "2"

"""Tests for counter invariants and interaction-cost analysis."""

import numpy as np
import pytest

from repro.core.analysis import interaction_cost, interaction_matrix
from repro.counters import assert_invariants, check_invariants
from repro.counters import events as ev
from repro.errors import DataError
from repro.simulator import MachineConfig, SimulatedCore
from repro.workloads import PhaseParams, synthesize_block


def clean_counts():
    counts = {event.name: 0.0 for event in ev.ALL_EVENTS}
    counts.update(
        {
            ev.INST_RETIRED_ANY.name: 1000.0,
            ev.CPU_CLK_UNHALTED_CORE.name: 700.0,
            ev.INST_RETIRED_LOADS.name: 300.0,
            ev.INST_RETIRED_STORES.name: 100.0,
            ev.BR_INST_RETIRED_ANY.name: 150.0,
            ev.BR_INST_RETIRED_MISPRED.name: 10.0,
            ev.MEM_LOAD_RETIRED_L1D_LINE_MISS.name: 30.0,
            ev.MEM_LOAD_RETIRED_L2_LINE_MISS.name: 5.0,
            ev.DTLB_MISSES_L0_MISS_LD.name: 20.0,
            ev.DTLB_MISSES_MISS_LD.name: 8.0,
            ev.MEM_LOAD_RETIRED_DTLB_MISS.name: 7.0,
            ev.DTLB_MISSES_ANY.name: 10.0,
        }
    )
    return counts


class TestInvariants:
    def test_clean_counts_pass(self):
        assert check_invariants(clean_counts()) == []
        assert_invariants(clean_counts())

    def test_l2_exceeding_l1_flagged(self):
        counts = clean_counts()
        counts[ev.MEM_LOAD_RETIRED_L2_LINE_MISS.name] = 40.0
        violations = check_invariants(counts)
        assert any("L2" in v for v in violations)

    def test_mispredicts_exceeding_branches_flagged(self):
        counts = clean_counts()
        counts[ev.BR_INST_RETIRED_MISPRED.name] = 200.0
        assert any("branch" in v.lower() for v in check_invariants(counts))

    def test_mix_exceeding_instructions_flagged(self):
        counts = clean_counts()
        counts[ev.INST_RETIRED_LOADS.name] = 900.0
        assert any("mix" in v for v in check_invariants(counts))

    def test_retired_dtlb_hierarchy_flagged(self):
        counts = clean_counts()
        counts[ev.MEM_LOAD_RETIRED_DTLB_MISS.name] = 50.0
        violations = check_invariants(counts)
        assert violations

    def test_negative_count_flagged(self):
        counts = clean_counts()
        counts[ev.ILD_STALL.name] = -1.0
        assert any("negative" in v for v in check_invariants(counts))

    def test_assert_raises(self):
        counts = clean_counts()
        counts[ev.INST_RETIRED_ANY.name] = 0.0
        with pytest.raises(DataError):
            assert_invariants(counts)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_simulator_output_always_clean(self, seed):
        """Every section the core emits must satisfy the architecture."""
        rng = np.random.default_rng(seed)
        core = SimulatedCore(MachineConfig.tiny(), rng=rng)
        params = PhaseParams(
            data_footprint=4 << 20,
            hot_fraction=0.7,
            lcp_fraction=0.05,
            misalign_fraction=0.05,
            store_load_alias_fraction=0.2,
            sta_fraction=0.3,
            std_fraction=0.3,
        )
        for _ in range(4):
            block = synthesize_block(params, 512, rng)
            result = core.run_block(block)
            assert check_invariants(result.counts) == []

    def test_suite_dataset_sections_clean(self, suite_result):
        # Spot-check derived per-instruction rates against the hierarchy.
        ds = suite_result.dataset
        assert np.all(ds.column("L2M") <= ds.column("L1DM") + 1e-9)
        assert np.all(ds.column("DtlbLdReM") <= ds.column("DtlbLdM") + 1e-9)
        assert np.all(ds.column("DtlbLdM") <= ds.column("Dtlb") + 1e-9)
        assert np.all(ds.column("L1DM") <= ds.column("InstLd") + 1e-9)


class TestInteractionCost:
    def test_gains_consistent_with_whatif(self, suite_tree, suite_dataset):
        from repro.core.analysis import estimate_gain

        x = suite_dataset.X[0]
        result = interaction_cost(suite_tree, x, "L2M", "DtlbLdM")
        solo = estimate_gain(suite_tree, x, "L2M", 1.0)
        assert result.gain_a == pytest.approx(solo.gain_fraction, abs=1e-9)

    def test_cost_formula(self, suite_tree, suite_dataset):
        result = interaction_cost(suite_tree, suite_dataset.X[3], "L2M", "BrMisPr")
        assert result.cost == pytest.approx(
            result.gain_both - result.gain_a - result.gain_b
        )

    def test_absent_events_interact_zero(self, suite_tree, suite_dataset):
        # calm sections have ~no LCP and ~no splits: zeroing them is a no-op.
        labels = suite_dataset.meta["workload"]
        x = suite_dataset.X[labels == "calm_like"][0]
        result = interaction_cost(suite_tree, x, "LCP", "L1DSpSt")
        assert result.gain_a == pytest.approx(0.0, abs=1e-9)
        assert result.gain_b == pytest.approx(0.0, abs=1e-9)
        assert result.cost == pytest.approx(0.0, abs=1e-9)

    def test_same_event_rejected(self, suite_tree, suite_dataset):
        with pytest.raises(DataError):
            interaction_cost(suite_tree, suite_dataset.X[0], "L2M", "L2M")

    def test_unknown_event_rejected(self, suite_tree, suite_dataset):
        with pytest.raises(DataError):
            interaction_cost(suite_tree, suite_dataset.X[0], "L2M", "Bogus")

    def test_matrix_covers_all_pairs(self, suite_tree, suite_dataset):
        events = ("L2M", "L1IM", "BrMisPr", "DtlbLdM")
        results = interaction_matrix(suite_tree, suite_dataset.X[0], events)
        assert len(results) == 6
        costs = [abs(r.cost) for r in results]
        assert costs == sorted(costs, reverse=True)

    def test_matrix_needs_two_events(self, suite_tree, suite_dataset):
        with pytest.raises(DataError):
            interaction_matrix(suite_tree, suite_dataset.X[0], ("L2M",))

    def test_describe(self, suite_tree, suite_dataset):
        result = interaction_cost(suite_tree, suite_dataset.X[0], "L2M", "L1IM")
        assert "L2M x L1IM" in result.describe()

"""The FASTSIM lint family: calibration artifacts, good and broken."""

import json

import pytest

from repro.errors import LintError
from repro.fastsim import machine_fingerprint
from repro.lint import FAMILY_FASTSIM, LintConfig, lint_calibration, run_lint
from repro.lint.diagnostics import Severity
from repro.workloads.suite import workload_fingerprint


def rule_ids(report):
    return sorted({d.rule_id for d in report.diagnostics})


@pytest.fixture()
def clean_payload(small_calibration):
    """An artifact payload every FASTSIM rule accepts.

    The tiny-profile calibration is genuinely stale for the default
    suite, so its fingerprints are rewritten to the current ones — the
    lint rules audit the serialized document, not the fit itself.
    """
    payload = small_calibration.to_dict()
    payload["machine_fingerprint"] = machine_fingerprint()
    payload["workload_fingerprint"] = workload_fingerprint(None)
    return payload


#: The tiny fit's in-sample p95 (~0.5) trips the default 0.20 bound, so
#: the clean-case config raises it — FASTSIM006 has its own tests.
LAX = LintConfig(calibration_rel_err=1.0)


class TestDocumentLoading:
    def test_clean_artifact_is_clean(self, clean_payload):
        report = lint_calibration(clean_payload, LAX)
        assert report.diagnostics == []
        assert report.exit_code(strict=True) == 0

    def test_path_variant_loads_the_file(self, tmp_path, clean_payload):
        path = tmp_path / "calibration.json"
        path.write_text(json.dumps(clean_payload))
        assert lint_calibration(path, LAX).diagnostics == []

    def test_unreadable_file_is_a_finding_not_a_crash(self, tmp_path):
        report = lint_calibration(tmp_path / "missing.json")
        assert rule_ids(report) == ["FASTSIM001"]
        assert "unreadable" in report.diagnostics[0].message

    def test_invalid_json_is_a_finding(self, tmp_path):
        path = tmp_path / "calibration.json"
        path.write_text("{not json")
        report = lint_calibration(path)
        assert rule_ids(report) == ["FASTSIM001"]
        assert "not valid JSON" in report.diagnostics[0].message

    def test_non_object_document_is_a_finding(self, tmp_path):
        path = tmp_path / "calibration.json"
        path.write_text("[1, 2]")
        report = lint_calibration(path)
        assert rule_ids(report) == ["FASTSIM001"]
        assert "JSON object" in report.diagnostics[0].message


class TestSchema:
    def test_wrong_schema_tag(self, clean_payload):
        clean_payload["schema"] = "repro-fastsim-calibration/0"
        report = lint_calibration(clean_payload, LAX)
        assert rule_ids(report) == ["FASTSIM002"]

    def test_missing_required_key(self, clean_payload):
        del clean_payload["anchors"]
        report = lint_calibration(clean_payload, LAX)
        assert rule_ids(report) == ["FASTSIM002"]
        assert "anchors" in report.diagnostics[0].message

    def test_schema_failure_gates_the_content_rules(self, clean_payload):
        # A document that fails FASTSIM002 must not cascade into
        # crashes or noise from the content rules.
        del clean_payload["model"]
        clean_payload["machine_fingerprint"] = "bogus"
        assert rule_ids(lint_calibration(clean_payload, LAX)) == ["FASTSIM002"]


class TestFingerprints:
    def test_machine_mismatch(self, clean_payload):
        clean_payload["machine_fingerprint"] = "0" * 16
        report = lint_calibration(clean_payload, LAX)
        assert rule_ids(report) == ["FASTSIM003"]
        assert "recalibrate" in report.diagnostics[0].message

    def test_workload_mismatch(self, clean_payload):
        clean_payload["workload_fingerprint"] = "0" * 16
        report = lint_calibration(clean_payload, LAX)
        assert rule_ids(report) == ["FASTSIM004"]
        assert "suite" in report.diagnostics[0].message

    def test_raw_small_calibration_is_stale_for_the_default_suite(
        self, small_calibration
    ):
        # Without the fingerprint rewrite the artifact is exactly what
        # these rules exist to catch: same machine, different suite.
        report = lint_calibration(small_calibration.to_dict(), LAX)
        assert rule_ids(report) == ["FASTSIM004"]


class TestModelAndAnchors:
    def test_model_fails_to_deserialize(self, clean_payload):
        clean_payload["model"] = {"schema": "not-a-tree"}
        report = lint_calibration(clean_payload, LAX)
        assert rule_ids(report) == ["FASTSIM005"]
        assert "deserialize" in report.diagnostics[0].message

    def test_empty_anchor_table(self, clean_payload):
        clean_payload["anchors"] = {}
        report = lint_calibration(clean_payload, LAX)
        assert rule_ids(report) == ["FASTSIM005"]
        assert "empty" in report.diagnostics[0].message

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), "0.1", None])
    def test_non_finite_anchor_entries(self, clean_payload, bad):
        key = next(iter(clean_payload["anchors"]))
        clean_payload["anchors"] = dict(clean_payload["anchors"], **{key: bad})
        report = lint_calibration(clean_payload, LAX)
        assert rule_ids(report) == ["FASTSIM005"]
        assert key in report.diagnostics[0].message

    def test_broken_nominal_corrections(self, clean_payload):
        clean_payload["nominal_corrections"] = {"k": float("nan")}
        assert rule_ids(lint_calibration(clean_payload, LAX)) == ["FASTSIM005"]


class TestFitQuality:
    def test_missing_stats_warn(self, clean_payload):
        del clean_payload["stats"]
        report = lint_calibration(clean_payload, LAX)
        assert rule_ids(report) == ["FASTSIM006"]
        (finding,) = report.diagnostics
        assert finding.severity is Severity.WARNING
        assert "never measured" in finding.message
        # Warnings only block strict runs.
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) != 0

    def test_rel_err_over_the_bound_warns(self, clean_payload):
        # The tiny fit's p95 (~0.5) exceeds the default 0.20 bound.
        report = lint_calibration(clean_payload)
        assert rule_ids(report) == ["FASTSIM006"]
        assert "exceeds" in report.diagnostics[0].message

    def test_non_finite_rel_err(self, clean_payload):
        clean_payload["stats"] = dict(clean_payload["stats"],
                                      rel_err_p95=float("nan"))
        report = lint_calibration(clean_payload, LAX)
        assert rule_ids(report) == ["FASTSIM006"]
        assert "finite" in report.diagnostics[0].message

    def test_bound_is_configurable(self, clean_payload):
        tight = LintConfig(calibration_rel_err=1e-6)
        assert "FASTSIM006" in rule_ids(lint_calibration(clean_payload, tight))


class TestFeatureNames:
    def test_reordered_features_rejected(self, clean_payload):
        names = list(clean_payload["feature_names"])
        names[0], names[1] = names[1], names[0]
        clean_payload["feature_names"] = names
        report = lint_calibration(clean_payload, LAX)
        assert rule_ids(report) == ["FASTSIM007"]
        assert "wrong order" in report.diagnostics[0].message

    def test_truncated_features_rejected(self, clean_payload):
        clean_payload["feature_names"] = clean_payload["feature_names"][:-1]
        assert rule_ids(lint_calibration(clean_payload, LAX)) == ["FASTSIM007"]


class TestFamilySelection:
    def test_family_requires_an_artifact(self):
        with pytest.raises(LintError, match="calibration"):
            run_lint(calibration=None, families=(FAMILY_FASTSIM,))

    def test_artifact_alone_selects_only_fastsim(self, clean_payload):
        report = run_lint(calibration=clean_payload, config=LAX)
        assert report.families == (FAMILY_FASTSIM,)

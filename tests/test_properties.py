"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.tree import M5Prime
from repro.core.tree.splitting import find_best_split
from repro.core.tree.linear import adjusted_error, fit_linear_model, simplify_model
from repro.datasets import SectionRecorder, kfold_indices
from repro.evaluation.metrics import (
    mean_absolute_error,
    relative_absolute_error,
)
from repro.simulator import CacheConfig, SetAssociativeCache, GsharePredictor

finite_floats = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


@st.composite
def xy_data(draw, max_rows=60, max_cols=4):
    n = draw(st.integers(4, max_rows))
    p = draw(st.integers(1, max_cols))
    X = draw(
        hnp.arrays(np.float64, (n, p), elements=st.floats(0, 100, allow_nan=False))
    )
    y = draw(hnp.arrays(np.float64, (n,), elements=st.floats(-100, 100, allow_nan=False)))
    return X, y


class TestSplittingProperties:
    @settings(max_examples=60, deadline=None)
    @given(xy_data())
    def test_split_is_valid_partition(self, data):
        X, y = data
        split = find_best_split(X, y, min_leaf=2)
        if split is None:
            return
        left = X[:, split.attribute_index] <= split.threshold
        assert split.n_left == int(np.count_nonzero(left))
        assert split.n_right == len(y) - split.n_left
        assert split.n_left >= 2 and split.n_right >= 2
        assert split.sdr > 0

    @settings(max_examples=60, deadline=None)
    @given(xy_data())
    def test_sdr_never_exceeds_total_sd(self, data):
        X, y = data
        split = find_best_split(X, y, min_leaf=2)
        if split is not None:
            assert split.sdr <= np.std(y) + 1e-9


class TestLinearModelProperties:
    @settings(max_examples=40, deadline=None)
    @given(xy_data())
    def test_fit_never_beats_zero_error_unfairly(self, data):
        X, y = data
        model = fit_linear_model(X, y, list(range(X.shape[1])), tuple(
            f"a{i}" for i in range(X.shape[1])
        ))
        assert model.training_error >= -1e-12
        residual = y - model.predict(X)
        recomputed = float(np.mean(np.abs(residual)))
        assert abs(recomputed - model.training_error) <= 1e-9 * (1.0 + recomputed)

    @settings(max_examples=40, deadline=None)
    @given(xy_data())
    def test_simplify_never_raises_adjusted_error(self, data):
        X, y = data
        names = tuple(f"a{i}" for i in range(X.shape[1]))
        model = fit_linear_model(X, y, list(range(X.shape[1])), names)
        simplified = simplify_model(model, X, y, names)
        assert simplified.adjusted_error() <= model.adjusted_error() + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(st.floats(0, 1e6), st.integers(1, 1000), st.integers(1, 50))
    def test_adjusted_error_at_least_raw(self, error, n, v):
        assert adjusted_error(error, n, v) >= error - 1e-12


class TestTreeProperties:
    @settings(max_examples=20, deadline=None)
    @given(xy_data(max_rows=80, max_cols=3), st.integers(2, 10))
    def test_leaf_populations_partition_training_set(self, data, min_instances):
        X, y = data
        if np.std(y) == 0:
            return
        names = tuple(f"a{i}" for i in range(X.shape[1]))
        model = M5Prime(min_instances=min_instances).fit(X, y, names)
        root = model.root_
        assert sum(leaf.n_instances for leaf in root.leaves()) == len(y)
        for leaf in root.leaves():
            assert leaf.n_instances >= 1
        # Every training instance routes to some leaf with finite output.
        predictions = model.predict(X)
        assert np.all(np.isfinite(predictions))

    @settings(max_examples=20, deadline=None)
    @given(xy_data(max_rows=60, max_cols=3))
    def test_leaf_ids_consistent_with_predict(self, data):
        X, y = data
        if np.std(y) == 0:
            return
        model = M5Prime(min_instances=3).fit(X, y)
        ids = model.leaf_ids(X)
        models = model.leaf_models()
        for x, leaf_id, prediction in zip(X, ids, model.predict(X)):
            assert models[leaf_id].predict_one(x) == np.float64(prediction)


class TestMetricsProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        hnp.arrays(np.float64, 10, elements=st.floats(-100, 100, allow_nan=False)),
        hnp.arrays(np.float64, 10, elements=st.floats(-100, 100, allow_nan=False)),
    )
    def test_mae_symmetry_and_triangle(self, a, b):
        assert mean_absolute_error(a, b) == np.float64(mean_absolute_error(b, a))
        assert mean_absolute_error(a, a) == 0.0

    @settings(max_examples=60, deadline=None)
    @given(hnp.arrays(np.float64, 12, elements=st.floats(-50, 50, allow_nan=False)))
    def test_rae_of_mean_predictor_is_one(self, y):
        # Guard against (sub)normal spreads below the RAE definedness floor.
        if np.sum(np.abs(y - y.mean())) <= 1e-12:
            return
        predictions = np.full_like(y, y.mean())
        assert relative_absolute_error(y, predictions) == np.float64(1.0)


class TestKFoldProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(4, 200), st.integers(2, 10), st.integers(0, 1000))
    def test_folds_partition_exactly(self, n, k, seed):
        if n < k:
            return
        folds = kfold_indices(n, k, rng=seed)
        combined = np.concatenate(folds)
        assert len(combined) == n
        assert len(np.unique(combined)) == n
        sizes = [len(f) for f in folds]
        assert max(sizes) - min(sizes) <= 1


class TestSectioningProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(1, 300), st.floats(0, 50)), min_size=1, max_size=30),
        st.integers(10, 200),
    )
    def test_counts_are_conserved(self, deltas, per_section):
        recorder = SectionRecorder(per_section)
        total_event = 0.0
        total_instructions = 0
        for instructions, events in deltas:
            recorder.record({"INST_RETIRED.ANY": instructions, "E": events})
            total_event += events
            total_instructions += instructions
        sections = recorder.finalize(keep_partial=True)
        recovered = sum(s.get("E", 0.0) for s in sections)
        assert recovered == np.float64(total_event) or abs(
            recovered - total_event
        ) < 1e-6 * max(total_event, 1)
        instructions = sum(s["INST_RETIRED.ANY"] for s in sections)
        assert abs(instructions - total_instructions) < 1e-6 * max(
            total_instructions, 1
        )


class TestCacheProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 1 << 20), min_size=1, max_size=400),
        st.sampled_from([1, 2, 4]),
        st.sampled_from([2, 4, 8]),
    )
    def test_occupancy_never_exceeds_capacity(self, addresses, assoc, sets):
        cache = SetAssociativeCache(CacheConfig(64 * assoc * sets, assoc, 64))
        for addr in addresses:
            cache.access(addr)
        assert cache.occupancy <= assoc * sets
        assert cache.hits + cache.misses == len(addresses)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
    def test_immediate_rereference_always_hits(self, addresses):
        cache = SetAssociativeCache(CacheConfig(4096, 4, 64))
        for addr in addresses:
            cache.access(addr)
            assert cache.access(addr) is True


class TestPredictorProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=500), st.integers(0, 100))
    def test_stats_always_balance(self, outcomes, pc):
        predictor = GsharePredictor(8)
        for taken in outcomes:
            predictor.access(pc * 4, taken)
        assert predictor.correct + predictor.incorrect == len(outcomes)
        assert 0.0 <= predictor.mispredict_rate <= 1.0

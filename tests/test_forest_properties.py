"""Property-based tests on the compiled-forest contracts.

Three invariants the ISSUE names explicitly:

* batch ``predict`` is bit-identical to the mean of per-member
  interpreted walks,
* every leaf-indicator row sums to ``n_trees``,
* prune-and-refit never increases training MAE over the uniform
  ensemble mean.

Forests are expensive to fit, so each example draws from a small pool
of pre-fitted ensembles and varies the prediction batch instead.
"""

import functools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BaggedM5
from repro.core.tree.node import route
from repro.datasets.synthetic import figure1_dataset, step_dataset
from repro.serve.refine import RefinedForest


@functools.lru_cache(maxsize=None)
def _fitted(pool_index: int):
    """A small pre-fitted forest plus its training data (cached)."""
    if pool_index % 2 == 0:
        data = figure1_dataset(n=160, noise_sd=0.05, rng=40 + pool_index)
    else:
        data = step_dataset(n=150, noise_sd=0.1, rng=40 + pool_index)
    n_estimators = 2 + pool_index % 3
    forest = BaggedM5(
        n_estimators=n_estimators, min_instances=25, seed=pool_index
    ).fit(data)
    return forest, data


def _batch(data, seed: int, n_rows: int) -> np.ndarray:
    """A seeded batch spanning (and slightly exceeding) training ranges."""
    rng = np.random.default_rng(seed)
    low = data.X.min(axis=0)
    high = data.X.max(axis=0)
    span = np.where(high > low, high - low, 1.0)
    return rng.uniform(
        low - 0.1 * span, high + 0.1 * span, size=(n_rows, data.X.shape[1])
    )


def _interpreted_mean(forest, X: np.ndarray) -> np.ndarray:
    stacked = np.vstack([
        np.array([route(m.root_, x).model.predict_one(x) for x in X])
        for m in forest
    ])
    return stacked.mean(axis=0)


class TestForestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        pool_index=st.integers(0, 5),
        batch_seed=st.integers(0, 2**31 - 1),
        n_rows=st.integers(1, 40),
    )
    def test_batch_predict_is_mean_of_interpreted_walks(
        self, pool_index, batch_seed, n_rows
    ):
        forest, data = _fitted(pool_index)
        X = _batch(data, batch_seed, n_rows)
        assert np.array_equal(
            forest.compiled_.predict(X), _interpreted_mean(forest, X)
        )

    @settings(max_examples=25, deadline=None)
    @given(
        pool_index=st.integers(0, 5),
        batch_seed=st.integers(0, 2**31 - 1),
        n_rows=st.integers(1, 40),
    )
    def test_indicator_rows_sum_to_n_trees(
        self, pool_index, batch_seed, n_rows
    ):
        forest, data = _fitted(pool_index)
        compiled = forest.compiled_
        X = _batch(data, batch_seed, n_rows)
        dense = compiled.leaf_indicator(X).toarray()
        assert np.array_equal(
            dense.sum(axis=1), np.full(n_rows, compiled.n_trees)
        )

    @settings(max_examples=10, deadline=None)
    @given(
        pool_index=st.integers(0, 5),
        prune_pct=st.floats(0.0, 0.5),
        n_prunings=st.integers(0, 4),
    )
    def test_refinement_never_increases_training_mae(
        self, pool_index, prune_pct, n_prunings
    ):
        forest, data = _fitted(pool_index)
        uniform_mae = float(np.mean(np.abs(
            forest.compiled_.predict(data.X) - data.y
        )))
        refinement = RefinedForest(
            forest, prune_pct=prune_pct, n_prunings=n_prunings
        ).fit(data)
        try:
            assert refinement.refined_.train_mae <= uniform_mae + 1e-12
        finally:
            forest.refined_ = None  # keep the cached forest uniform

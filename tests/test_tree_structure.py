"""Tests for nodes, the builder, pruning and smoothing."""

import numpy as np
import pytest

from repro.core.tree.builder import TreeBuilder
from repro.core.tree.linear import LinearModel
from repro.core.tree.node import (
    LeafNode,
    SplitNode,
    assign_leaf_ids,
    path_to_leaf,
    route,
)
from repro.core.tree.pruning import prune_tree
from repro.core.tree.smoothing import smoothed_predict
from repro.datasets.synthetic import figure1_dataset, linear_dataset, step_dataset
from repro.errors import ConfigError, DataError


def constant_model(value, n=10):
    return LinearModel(value, (), (), (), n, 0.0)


def two_leaf_tree():
    left = LeafNode(10, 0.0, 1.0)
    left.model = constant_model(1.0)
    right = LeafNode(20, 0.0, 2.0)
    right.model = constant_model(2.0)
    root = SplitNode(30, 0.5, 1.67, 0, "x", 0.5, left, right)
    root.model = constant_model(1.67, 30)
    assign_leaf_ids(root)
    return root


class TestNodes:
    def test_routing(self):
        root = two_leaf_tree()
        assert route(root, np.array([0.2])).mean == 1.0
        assert route(root, np.array([0.9])).mean == 2.0

    def test_boundary_goes_left(self):
        root = two_leaf_tree()
        assert route(root, np.array([0.5])).mean == 1.0

    def test_path_to_leaf(self):
        root = two_leaf_tree()
        path = path_to_leaf(root, np.array([0.9]))
        assert len(path) == 2
        assert path[0] is root
        assert path[1].is_leaf

    def test_leaf_ids_left_to_right(self):
        root = two_leaf_tree()
        assert root.left.leaf_id == 1
        assert root.right.leaf_id == 2
        assert root.leaf_id == 0

    def test_counts(self):
        root = two_leaf_tree()
        assert root.n_leaves() == 2
        assert root.depth() == 1
        assert len(list(root.iter_nodes())) == 3


class TestBuilder:
    def test_step_function_one_split(self):
        ds = step_dataset(n=200, rng=0)
        root = TreeBuilder(min_instances=10).build(ds.X, ds.y, ds.attributes)
        assert isinstance(root, SplitNode)
        assert root.attribute_name == "X1"

    def test_linear_data_needs_no_split(self):
        # Exact least squares (ridge=0): a noiseless line fits perfectly
        # at the root, so pruning must collapse the whole tree.
        ds = linear_dataset([2.0], n=200, rng=0)
        root = TreeBuilder(min_instances=10, ridge=0.0).build(
            ds.X, ds.y, ds.attributes
        )
        pruned = prune_tree(root)
        assert pruned.is_leaf
        assert pruned.model.names == ("X1",)

    def test_noisy_linear_data_prunes_with_default_ridge(self):
        ds = linear_dataset([2.0], n=200, noise_sd=0.1, rng=0)
        root = TreeBuilder(min_instances=10).build(ds.X, ds.y, ds.attributes)
        pruned = prune_tree(root)
        assert pruned.n_leaves() <= 2

    def test_min_instances_floor(self):
        ds = figure1_dataset(n=300, rng=0)
        root = TreeBuilder(min_instances=40).build(ds.X, ds.y, ds.attributes)
        for leaf in root.leaves():
            assert leaf.n_instances >= 40

    def test_every_node_has_model(self):
        ds = figure1_dataset(n=300, rng=0)
        root = TreeBuilder(min_instances=40).build(ds.X, ds.y, ds.attributes)
        for node in root.iter_nodes():
            assert node.model is not None

    def test_sd_fraction_stops_growth(self):
        ds = step_dataset(n=200, noise_sd=0.001, rng=0)
        root = TreeBuilder(min_instances=5, sd_fraction=0.05).build(
            ds.X, ds.y, ds.attributes
        )
        # One split reduces sd to ~noise level; children must be leaves.
        assert root.depth() == 1

    def test_model_attribute_policies(self):
        ds = figure1_dataset(n=500, rng=0)
        for policy in ("subtree", "path", "path+subtree", "all"):
            root = TreeBuilder(min_instances=60, model_attributes=policy).build(
                ds.X, ds.y, ds.attributes
            )
            assert root.n_leaves() >= 2

    def test_subtree_policy_leaves_constant(self):
        ds = step_dataset(n=100, rng=0)
        root = TreeBuilder(min_instances=10, model_attributes="subtree").build(
            ds.X, ds.y, ds.attributes
        )
        for leaf in root.leaves():
            assert leaf.model.is_constant

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            TreeBuilder(min_instances=0)
        with pytest.raises(ConfigError):
            TreeBuilder(sd_fraction=1.0)
        with pytest.raises(ConfigError):
            TreeBuilder(model_attributes="everything")

    def test_shape_validation(self):
        builder = TreeBuilder()
        with pytest.raises(DataError):
            builder.build(np.zeros((3, 2)), np.zeros(4), ("a", "b"))
        with pytest.raises(DataError):
            builder.build(np.zeros((3, 2)), np.zeros(3), ("a",))
        with pytest.raises(DataError):
            builder.build(np.zeros((0, 2)), np.zeros(0), ("a", "b"))


class TestPruning:
    def test_useless_split_pruned(self):
        # A split whose children don't improve over the node model.
        ds = linear_dataset([1.0, 0.5], n=400, noise_sd=0.2, rng=0)
        root = TreeBuilder(min_instances=20, sd_fraction=0.0).build(
            ds.X, ds.y, ds.attributes
        )
        pruned = prune_tree(root)
        assert pruned.n_leaves() < root.n_leaves() or pruned.is_leaf

    def test_useful_structure_survives(self):
        ds = figure1_dataset(n=2000, noise_sd=0.02, rng=0)
        root = TreeBuilder(min_instances=50).build(ds.X, ds.y, ds.attributes)
        pruned = prune_tree(root)
        assert pruned.n_leaves() >= 4

    def test_leaf_ids_reassigned(self):
        ds = figure1_dataset(n=800, rng=0)
        root = TreeBuilder(min_instances=50).build(ds.X, ds.y, ds.attributes)
        pruned = prune_tree(root)
        ids = [leaf.leaf_id for leaf in pruned.leaves()]
        assert ids == list(range(1, len(ids) + 1))

    def test_pruned_leaf_keeps_node_model(self):
        ds = linear_dataset([3.0], n=300, noise_sd=0.3, rng=1)
        root = TreeBuilder(min_instances=10, sd_fraction=0.0).build(
            ds.X, ds.y, ds.attributes
        )
        pruned = prune_tree(root)
        if pruned.is_leaf:
            assert pruned.model is not None

    def test_estimated_error_set_everywhere(self):
        ds = figure1_dataset(n=600, rng=0)
        root = TreeBuilder(min_instances=50).build(ds.X, ds.y, ds.attributes)
        pruned = prune_tree(root)
        for node in pruned.iter_nodes():
            assert np.isfinite(node.estimated_error)


class TestSmoothing:
    def test_single_leaf_unchanged(self):
        leaf = LeafNode(10, 0.0, 5.0)
        leaf.model = constant_model(5.0)
        assert smoothed_predict(leaf, np.array([0.0])) == pytest.approx(5.0)

    def test_blends_toward_parent(self):
        root = two_leaf_tree()
        raw = root.left.model.predict_one(np.array([0.2]))
        smoothed = smoothed_predict(root, np.array([0.2]), k=15.0)
        parent = root.model.predict_one(np.array([0.2]))
        assert min(raw, parent) <= smoothed <= max(raw, parent)
        assert smoothed != raw

    def test_k_zero_is_raw_leaf(self):
        root = two_leaf_tree()
        assert smoothed_predict(root, np.array([0.2]), k=0.0) == pytest.approx(1.0)

    def test_large_k_approaches_parent(self):
        root = two_leaf_tree()
        smoothed = smoothed_predict(root, np.array([0.2]), k=1e9)
        assert smoothed == pytest.approx(root.model.predict_one(np.array([0.2])), rel=1e-6)

    def test_negative_k_rejected(self):
        with pytest.raises(ConfigError):
            smoothed_predict(two_leaf_tree(), np.array([0.2]), k=-1.0)

    def test_exact_blend_formula(self):
        root = two_leaf_tree()
        k = 15.0
        n = root.left.n_instances
        expected = (n * 1.0 + k * 1.67) / (n + k)
        assert smoothed_predict(root, np.array([0.2]), k=k) == pytest.approx(expected)

"""Retry policies, failure policies, timeouts, and resilient_map."""

import time

import pytest

from repro.errors import (
    ConfigError,
    RetryExhaustedError,
    TaskTimeoutError,
)
from repro.resilience import retry as retry_module
from repro.resilience.retry import (
    COLLECT_ERRORS,
    FAIL_FAST,
    MIN_SUCCESS,
    FailPolicy,
    RetryPolicy,
    TaskFailure,
    resilient_map,
    run_with_timeout,
    split_failures,
)


def _identity(x):
    return x


def _tenfold(x):
    return 10 * x


class _FailOn:
    """Fails deterministically for the configured items, forever."""

    def __init__(self, bad):
        self.bad = set(bad)

    def __call__(self, x):
        if x in self.bad:
            raise ValueError(f"bad item {x}")
        return 10 * x


class _FlakyFirstAttempt:
    """Every item fails once, then succeeds (serial executor only)."""

    def __init__(self):
        self.seen = set()

    def __call__(self, x):
        if x not in self.seen:
            self.seen.add(x)
            raise ValueError("transient")
        return x + 1


class _Sleeper:
    def __call__(self, x):
        time.sleep(x)
        return x


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"max_attempts": -2},
        {"base_delay": -0.1},
        {"max_delay": -1.0},
        {"jitter": -0.01},
        {"jitter": 1.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.4, jitter=0.0)
        assert policy.delay_for(1, "k") == pytest.approx(0.1)
        assert policy.delay_for(2, "k") == pytest.approx(0.2)
        assert policy.delay_for(3, "k") == pytest.approx(0.4)
        assert policy.delay_for(9, "k") == pytest.approx(0.4)

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=10.0, jitter=0.25)
        delay = policy.delay_for(2, "fold-003")
        assert 0.2 <= delay <= 0.2 * 1.25
        assert delay == policy.delay_for(2, "fold-003")
        # Different keys dither differently (no retry synchronization).
        others = {policy.delay_for(2, f"fold-{i:03d}") for i in range(8)}
        assert len(others) > 1

    def test_jitter_depends_on_seed(self):
        a = RetryPolicy(jitter=0.5, seed=0).delay_for(1, "k")
        b = RetryPolicy(jitter=0.5, seed=1).delay_for(1, "k")
        assert a != b


# ---------------------------------------------------------------------------
# FailPolicy
# ---------------------------------------------------------------------------
class TestFailPolicy:
    def test_parse_plain_kinds(self):
        assert FailPolicy.parse("fail_fast").kind == FAIL_FAST
        assert FailPolicy.parse("collect_errors").kind == COLLECT_ERRORS

    def test_parse_min_success_with_fraction(self):
        policy = FailPolicy.parse("min_success:0.8")
        assert policy.kind == MIN_SUCCESS
        assert policy.min_fraction == pytest.approx(0.8)

    def test_parse_min_success_bare_defaults(self):
        assert FailPolicy.parse("min_success").min_fraction == pytest.approx(0.5)

    def test_parse_long_name(self):
        assert FailPolicy.parse("min_success_fraction:0.3").kind == MIN_SUCCESS

    @pytest.mark.parametrize("spec", [
        "min_success:lots", "bogus", "min_success:1.5", "",
    ])
    def test_parse_rejects(self, spec):
        with pytest.raises(ConfigError):
            FailPolicy.parse(spec)

    def test_captures(self):
        assert not FailPolicy.parse("fail_fast").captures
        assert FailPolicy.parse("collect_errors").captures
        assert FailPolicy.parse("min_success:0.9").captures

    def test_apply_fail_fast_raises_on_any_failure(self):
        failure = TaskFailure("k", 0, "ValueError", "boom", 3)
        with pytest.raises(RetryExhaustedError, match="boom"):
            FailPolicy().apply([1, failure, 3])

    def test_apply_min_success_floor(self):
        failure = TaskFailure("k", 0, "ValueError", "boom", 3)
        policy = FailPolicy.parse("min_success:0.5")
        assert policy.apply([1, failure])  # exactly at the floor: passes
        with pytest.raises(RetryExhaustedError, match="succeeded"):
            policy.apply([failure, failure, 1])


# ---------------------------------------------------------------------------
# TaskFailure
# ---------------------------------------------------------------------------
def test_task_failure_round_trip_and_render():
    failure = TaskFailure(
        key="wl-gcc_like", index=4, error_type="ValueError",
        message="boom", attempts=3,
    )
    assert failure.to_dict() == {
        "unit": "wl-gcc_like", "index": 4, "error": "ValueError",
        "message": "boom", "attempts": 3,
    }
    assert "wl-gcc_like" in failure.render()
    assert "3 attempt(s)" in failure.render()


# ---------------------------------------------------------------------------
# run_with_timeout
# ---------------------------------------------------------------------------
class TestTimeout:
    def test_no_timeout_calls_directly(self):
        assert run_with_timeout(_tenfold, 4, None, "k") == 40

    def test_fast_task_passes(self):
        assert run_with_timeout(_Sleeper(), 0.0, 5.0, "k") == 0.0

    def test_slow_task_raises(self):
        with pytest.raises(TaskTimeoutError, match="'slow'"):
            run_with_timeout(_Sleeper(), 0.5, 0.02, "slow")

    def test_task_error_is_relayed(self):
        with pytest.raises(ValueError, match="bad item"):
            run_with_timeout(_FailOn([1]), 1, 5.0, "k")

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ConfigError):
            run_with_timeout(_tenfold, 1, 0.0, "k")


# ---------------------------------------------------------------------------
# resilient_map
# ---------------------------------------------------------------------------
class TestResilientMap:
    def test_clean_map_preserves_order(self):
        assert resilient_map(_tenfold, [3, 1, 2], executor="serial") == [30, 10, 20]

    def test_retries_recover_transient_failures(self, monkeypatch):
        monkeypatch.setattr(retry_module, "_sleep", lambda _s: None)
        results = resilient_map(
            _FlakyFirstAttempt(), [5, 6], executor="serial",
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
        )
        assert results == [6, 7]

    def test_fail_fast_raises_with_cause(self, monkeypatch):
        monkeypatch.setattr(retry_module, "_sleep", lambda _s: None)
        with pytest.raises(RetryExhaustedError, match="bad item 2"):
            resilient_map(
                _FailOn([2]), [1, 2, 3], executor="serial",
                retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            )

    def test_collect_errors_records_failures_in_place(self, monkeypatch):
        monkeypatch.setattr(retry_module, "_sleep", lambda _s: None)
        results = resilient_map(
            _FailOn([2]), [1, 2, 3], executor="serial",
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            fail_policy=FailPolicy.parse("collect_errors"),
            keys=["a", "b", "c"],
        )
        assert results[0] == 10 and results[2] == 30
        failure = results[1]
        assert isinstance(failure, TaskFailure)
        assert failure.key == "b"
        assert failure.index == 1
        assert failure.attempts == 2
        assert failure.error_type == "ValueError"

    def test_min_success_tolerates_down_to_floor(self, monkeypatch):
        monkeypatch.setattr(retry_module, "_sleep", lambda _s: None)
        ok = resilient_map(
            _FailOn([2]), [1, 2, 3, 4], executor="serial",
            retry=RetryPolicy(max_attempts=1),
            fail_policy=FailPolicy.parse("min_success:0.7"),
        )
        successes, failures = split_failures(ok)
        assert [value for _i, value in successes] == [10, 30, 40]
        assert [f.key for f in failures] == ["task-1"]
        with pytest.raises(RetryExhaustedError):
            resilient_map(
                _FailOn([1, 2, 3]), [1, 2, 3, 4], executor="serial",
                retry=RetryPolicy(max_attempts=1),
                fail_policy=FailPolicy.parse("min_success:0.7"),
            )

    def test_timeout_failure_is_captured(self):
        results = resilient_map(
            _Sleeper(), [0.0, 0.5], executor="serial",
            retry=RetryPolicy(max_attempts=1),
            fail_policy=FailPolicy.parse("collect_errors"),
            task_timeout=0.05,
        )
        assert results[0] == 0.0
        assert isinstance(results[1], TaskFailure)
        assert results[1].error_type == "TaskTimeoutError"

    def test_key_count_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="2 keys for 3 items"):
            resilient_map(_identity, [1, 2, 3], keys=["a", "b"])

    def test_backoff_sequence_is_reproducible(self, monkeypatch):
        observed = []

        def record(seconds):
            observed.append(seconds)

        monkeypatch.setattr(retry_module, "_sleep", record)
        retry = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.3, seed=7)
        for _ in range(2):
            resilient_map(
                _FailOn([1]), [1], executor="serial", retry=retry,
                fail_policy=FailPolicy.parse("collect_errors"),
            )
        assert len(observed) == 4
        assert observed[:2] == observed[2:]

    def test_works_in_process_pool(self):
        results = resilient_map(
            _tenfold, [1, 2, 3], n_jobs=2, executor="processes",
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
        )
        assert results == [10, 20, 30]

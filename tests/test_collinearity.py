"""Tests for the interpretability guards: collinearity filter, opposed-pair
resolution and the standardized ridge."""

import numpy as np
import pytest

from repro.core.tree import M5Prime
from repro.core.tree.linear import (
    fit_linear_model,
    resolve_opposed_pairs,
    select_uncorrelated,
)
from repro.errors import ConfigError


def collinear_data(n=300, seed=0, twin_noise=0.001):
    """y driven by x0; x1 is a near-copy of x0; x2 is independent noise."""
    rng = np.random.default_rng(seed)
    x0 = rng.uniform(0, 1, n)
    x1 = x0 + rng.normal(0, twin_noise, n)
    x2 = rng.uniform(0, 1, n)
    y = 3.0 * x0 + rng.normal(0, 0.05, n)
    return np.column_stack([x0, x1, x2]), y


class TestSelectUncorrelated:
    def test_drops_twin(self):
        X, y = collinear_data()
        kept = select_uncorrelated(X, y, [0, 1, 2], threshold=0.95)
        assert 2 in kept
        assert len([k for k in kept if k in (0, 1)]) == 1

    def test_keeps_member_best_correlated_with_target(self):
        X, y = collinear_data(twin_noise=0.05)
        kept = select_uncorrelated(X, y, [0, 1, 2], threshold=0.9)
        assert 0 in kept  # x0 is the true driver
        assert 1 not in kept

    def test_independent_attributes_all_kept(self, rng):
        X = rng.uniform(size=(200, 3))
        y = X.sum(axis=1)
        kept = select_uncorrelated(X, y, [0, 1, 2], threshold=0.95)
        assert kept == [0, 1, 2]

    def test_threshold_one_keeps_everything(self):
        X, y = collinear_data()
        assert select_uncorrelated(X, y, [0, 1, 2], threshold=1.0) == [0, 1, 2]

    def test_invalid_threshold(self):
        X, y = collinear_data(n=10)
        with pytest.raises(ConfigError):
            select_uncorrelated(X, y, [0], threshold=0.0)

    def test_constant_column_harmless(self):
        X = np.column_stack([np.ones(50), np.linspace(0, 1, 50)])
        y = X[:, 1]
        kept = select_uncorrelated(X, y, [0, 1], threshold=0.9)
        assert 1 in kept

    def test_output_sorted(self):
        X, y = collinear_data()
        kept = select_uncorrelated(X, y, [2, 0], threshold=0.95)
        assert kept == sorted(kept)


class TestResolveOpposedPairs:
    def test_dissolves_explosive_pair(self):
        # y depends on x0 only, but x1 ~ x0 lets OLS fit a huge +/- pair.
        rng = np.random.default_rng(1)
        x0 = rng.uniform(0, 1, 400)
        x1 = x0 + rng.normal(0, 0.02, 400)
        y = 2.0 * x0 + rng.normal(0, 0.01, 400)
        X = np.column_stack([x0, x1])
        names = ("a", "b")
        model = fit_linear_model(X, y, [0, 1], names)
        resolved = resolve_opposed_pairs(model, X, y, names)
        if len(model.coefficients) == 2 and model.coefficients[0] * model.coefficients[1] < 0:
            assert len(resolved.coefficients) == 1
        assert all(abs(c) < 50 for c in resolved.coefficients)

    def test_same_sign_pair_untouched(self):
        rng = np.random.default_rng(2)
        x0 = rng.uniform(0, 1, 300)
        x1 = x0 + rng.normal(0, 0.05, 300)
        y = 1.0 * x0 + 1.0 * x1 + rng.normal(0, 0.01, 300)
        X = np.column_stack([x0, x1])
        names = ("a", "b")
        model = fit_linear_model(X, y, [0, 1], names)
        if model.coefficients[0] * model.coefficients[1] > 0:
            resolved = resolve_opposed_pairs(model, X, y, names)
            assert resolved.names == model.names

    def test_uncorrelated_opposite_signs_untouched(self, rng):
        X = rng.uniform(size=(300, 2))
        y = 2.0 * X[:, 0] - 1.0 * X[:, 1]
        names = ("a", "b")
        model = fit_linear_model(X, y, [0, 1], names)
        resolved = resolve_opposed_pairs(model, X, y, names)
        assert set(resolved.names) == {"a", "b"}


class TestRidge:
    def test_zero_ridge_is_exact(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(100, 2))
        y = 1.0 + 2.0 * X[:, 0] - 0.5 * X[:, 1]
        model = fit_linear_model(X, y, [0, 1], ("a", "b"), ridge=0.0)
        assert model.coefficients == pytest.approx((2.0, -0.5), abs=1e-9)

    def test_small_ridge_barely_changes_clean_fit(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(200, 2))
        y = 1.0 + 2.0 * X[:, 0] - 0.5 * X[:, 1]
        model = fit_linear_model(X, y, [0, 1], ("a", "b"), ridge=1e-4)
        assert model.coefficients == pytest.approx((2.0, -0.5), abs=0.01)

    def test_large_ridge_shrinks(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(100, 1))
        y = 5.0 * X[:, 0]
        small = fit_linear_model(X, y, [0], ("a",), ridge=1e-6)
        big = fit_linear_model(X, y, [0], ("a",), ridge=10.0)
        assert abs(big.coefficients[0]) < abs(small.coefficients[0])

    def test_negative_ridge_rejected(self):
        X = np.ones((4, 1))
        with pytest.raises(ConfigError):
            fit_linear_model(X, np.ones(4), [0], ("a",), ridge=-1.0)


class TestTreeIntegration:
    def test_suite_leaf_models_have_sane_coefficients(self, suite_dataset):
        model = M5Prime(min_instances=12).fit(suite_dataset)
        for lm in model.leaf_models().values():
            for coefficient in lm.coefficients:
                assert abs(coefficient) < 2500

    def test_no_opposed_near_duplicate_pairs_survive(self, suite_dataset):
        model = M5Prime(min_instances=12).fit(suite_dataset)
        ids = model.leaf_ids(suite_dataset.X)
        for leaf_id, lm in model.leaf_models().items():
            rows = suite_dataset.X[ids == leaf_id]
            if rows.shape[0] < 3:
                continue
            for a in range(len(lm.indices)):
                for b in range(a + 1, len(lm.indices)):
                    if lm.coefficients[a] * lm.coefficients[b] >= 0:
                        continue
                    col_a = rows[:, lm.indices[a]]
                    col_b = rows[:, lm.indices[b]]
                    if np.ptp(col_a) <= 1e-15 or np.ptp(col_b) <= 1e-15:
                        continue
                    correlation = abs(np.corrcoef(col_a, col_b)[0, 1])
                    # The guard used training-node rows; routed rows may
                    # differ slightly, so allow a margin over 0.75.
                    assert correlation < 0.9

    def test_disable_guards_restores_classic_m5(self, suite_dataset):
        classic = M5Prime(
            min_instances=12, collinearity_threshold=1.0, ridge=0.0
        ).fit(suite_dataset)
        assert classic.n_leaves >= 1

"""Calibration regression tests: the suite's physics must stay in band.

The reproduction's Figure 2 structure depends on relational facts about
the simulated workloads (mcf-like is the serialized L2+DTLB extreme,
bzip-like stresses the DTLB without L2 misses, ...).  These tests pin
those facts with generous bands, so an innocent-looking change to the
simulator or a profile cannot silently break the experiments.

A dedicated medium-size suite is simulated once per module (a few
seconds); the bands are intentionally loose — they encode ordering and
magnitude class, not exact values.
"""

import numpy as np
import pytest

from repro.workloads import simulate_suite


@pytest.fixture(scope="module")
def calibration():
    return simulate_suite(
        sections_per_workload=30, instructions_per_section=2048, seed=2007
    )


@pytest.fixture(scope="module")
def dataset(calibration):
    return calibration.dataset


def column_mean(dataset, workload, metric):
    mask = dataset.meta["workload"] == workload
    return float(dataset.column(metric)[mask].mean())


class TestCpiOrdering:
    def test_mcf_is_the_most_expensive(self, calibration):
        cpis = calibration.cpi_by_workload
        assert cpis["mcf_like"] == max(cpis.values())

    def test_calm_is_the_cheapest(self, calibration):
        cpis = calibration.cpi_by_workload
        assert cpis["calm_like"] == min(cpis.values())

    def test_cpi_bands(self, calibration):
        cpis = calibration.cpi_by_workload
        assert 0.25 < cpis["calm_like"] < 0.8
        assert 4.0 < cpis["mcf_like"] < 11.0
        assert 2.0 < cpis["cactus_like"] < 7.0
        assert 0.7 < cpis["libq_like"] < 2.2

    def test_overall_range_spans_the_papers_figure3(self, dataset):
        assert dataset.y.min() < 0.6
        assert dataset.y.max() > 6.0


class TestSignatureFacts:
    def test_mcf_l2_and_dtlb_extremes(self, dataset):
        l2 = {
            w: column_mean(dataset, w, "L2M")
            for w in set(dataset.meta["workload"])
        }
        # mcf and cactus share the high-L2M extreme; mcf must be in it.
        assert l2["mcf_like"] >= 0.85 * max(l2.values())
        assert l2["mcf_like"] > 0.02
        assert column_mean(dataset, "mcf_like", "DtlbLdM") > 0.02

    def test_bzip_dtlb_without_l2(self, dataset):
        assert column_mean(dataset, "bzip_like", "L2M") < 0.002
        assert column_mean(dataset, "bzip_like", "Dtlb") > 0.005

    def test_cactus_instruction_side(self, dataset):
        assert column_mean(dataset, "cactus_like", "L1IM") > 0.02
        assert column_mean(dataset, "cactus_like", "L2M") > 0.015

    def test_calm_is_eventless(self, dataset):
        for metric in ("L2M", "Dtlb", "LCP"):
            assert column_mean(dataset, "calm_like", metric) < 0.002
        # A background misalignment rate of ~1% of memory ops remains.
        assert column_mean(dataset, "calm_like", "MisalRef") < 0.01

    def test_gcc_has_lcp_tail(self, dataset):
        mask = dataset.meta["workload"] == "gcc_like"
        lcp = dataset.column("LCP")[mask]
        assert np.max(lcp) > 0.08
        assert np.median(lcp) < 0.02

    def test_h264_alignment_signature(self, dataset):
        assert column_mean(dataset, "h264_like", "MisalRef") > 0.01
        assert column_mean(dataset, "h264_like", "L1DSpLd") > 0.002

    def test_perl_load_blocks(self, dataset):
        assert column_mean(dataset, "perl_like", "LdBlSta") > 0.003

    def test_bzip_branch_mispredicts(self, dataset):
        assert column_mean(dataset, "bzip_like", "BrMisPr") > 0.03

    def test_streaming_hides_misses(self, calibration, dataset):
        """libq has real memory traffic but low CPI (the MLP story)."""
        cpis = calibration.cpi_by_workload
        libq_l1dm = column_mean(dataset, "libq_like", "L1DM")
        calm_l1dm = column_mean(dataset, "calm_like", "L1DM")
        assert libq_l1dm > 3 * calm_l1dm
        assert cpis["libq_like"] < 2.5 * cpis["calm_like"] + 1.0


class TestMixSanity:
    def test_mix_fractions_sum_to_one(self, dataset):
        mix = (
            dataset.column("InstLd")
            + dataset.column("InstSt")
            + dataset.column("BrPred")
            + dataset.column("BrMisPr")
            + dataset.column("InstOther")
        )
        assert np.allclose(mix, 1.0, atol=1e-9)

    def test_rates_are_per_instruction(self, dataset):
        for metric in ("L2M", "L1DM", "BrMisPr", "Dtlb", "LCP"):
            column = dataset.column(metric)
            assert np.all(column >= 0)
            assert np.all(column <= 1.0)

"""Tests for the cache and TLB models (exact LRU behaviour)."""

import pytest

from repro.errors import ConfigError
from repro.simulator import (
    CacheConfig,
    SetAssociativeCache,
    TLBConfig,
    TranslationBuffer,
    TwoLevelDTLB,
)


def tiny_cache(assoc=2, sets=4, line=64):
    return SetAssociativeCache(CacheConfig(line * assoc * sets, assoc, line))


class TestCacheConfig:
    def test_n_sets(self):
        assert CacheConfig(32 * 1024, 8, 64).n_sets == 64

    def test_bad_line_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(1024, 2, 48)

    def test_size_not_multiple(self):
        with pytest.raises(ConfigError):
            CacheConfig(1000, 2, 64)

    def test_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheConfig(3 * 64 * 2, 2, 64)


class TestCacheBehaviour:
    def test_cold_miss_then_hit(self):
        cache = tiny_cache()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True

    def test_same_line_hits(self):
        cache = tiny_cache(line=64)
        cache.access(0x1000)
        assert cache.access(0x103F) is True  # same 64B line

    def test_adjacent_line_misses(self):
        cache = tiny_cache(line=64)
        cache.access(0x1000)
        assert cache.access(0x1040) is False

    def test_lru_eviction_order(self):
        cache = tiny_cache(assoc=2, sets=1)
        a, b, c = 0x0, 0x40, 0x80  # all map to the single set
        cache.access(a)
        cache.access(b)
        cache.access(c)  # evicts a (LRU)
        assert cache.access(b) is True
        assert cache.access(a) is False

    def test_hit_refreshes_lru(self):
        cache = tiny_cache(assoc=2, sets=1)
        a, b, c = 0x0, 0x40, 0x80
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a becomes MRU
        cache.access(c)  # evicts b now
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_set_indexing_isolates_sets(self):
        cache = tiny_cache(assoc=1, sets=4, line=64)
        # Addresses in different sets must not evict each other.
        cache.access(0 * 64)
        cache.access(1 * 64)
        cache.access(2 * 64)
        cache.access(3 * 64)
        assert cache.access(0 * 64) is True

    def test_capacity_respected(self):
        cache = tiny_cache(assoc=2, sets=2)
        for i in range(20):
            cache.access(i * 64)
        assert cache.occupancy <= 4

    def test_stats_count(self):
        cache = tiny_cache()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.misses == 2
        assert cache.hits == 1
        assert cache.accesses == 3

    def test_probe_does_not_mutate(self):
        cache = tiny_cache(assoc=2, sets=1)
        cache.access(0x0)
        cache.access(0x40)
        assert cache.probe(0x0) is True
        hits_before = cache.hits
        cache.probe(0x0)
        assert cache.hits == hits_before
        # Probe must not refresh LRU: 0x0 is still LRU and gets evicted.
        cache.access(0x80)
        assert cache.probe(0x0) is False

    def test_fill_inserts_without_stats(self):
        cache = tiny_cache()
        cache.fill(0x2000)
        assert cache.misses == 0
        assert cache.access(0x2000) is True

    def test_fill_evicts_like_access(self):
        cache = tiny_cache(assoc=1, sets=1)
        cache.access(0x0)
        cache.fill(0x40)
        assert cache.probe(0x0) is False

    def test_flush(self):
        cache = tiny_cache()
        cache.access(0x0)
        cache.flush()
        assert cache.access(0x0) is False
        assert cache.occupancy == 1

    def test_reset_stats(self):
        cache = tiny_cache()
        cache.access(0x0)
        cache.reset_stats()
        assert cache.accesses == 0


class TestTLB:
    def test_page_granularity(self):
        tlb = TranslationBuffer(TLBConfig(4, 0, page_bytes=4096))
        tlb.access(0x0)
        assert tlb.access(0xFFF) is True
        assert tlb.access(0x1000) is False

    def test_fully_associative_lru(self):
        tlb = TranslationBuffer(TLBConfig(2, 0))
        tlb.access(0x0000)
        tlb.access(0x1000)
        tlb.access(0x2000)  # evicts page 0
        assert tlb.access(0x1000) is True
        assert tlb.access(0x0000) is False

    def test_set_associative_geometry(self):
        with pytest.raises(ConfigError):
            TLBConfig(6, 4)  # entries not a multiple of associativity

    def test_capacity(self):
        tlb = TranslationBuffer(TLBConfig(8, 2))
        for page in range(32):
            tlb.access(page * 4096)
        # All 32 pages were touched; only 8 entries can hit now.
        hits = sum(tlb.access(page * 4096) for page in range(32))
        assert hits <= 8


class TestTwoLevelDTLB:
    def make(self):
        return TwoLevelDTLB(TLBConfig(2, 0), TLBConfig(8, 0))

    def test_level0_hit_skips_level1(self):
        dtlb = self.make()
        dtlb.access(0x0)
        level1_accesses = dtlb.level1.accesses
        l0_miss, walk = dtlb.access(0x0)
        assert (l0_miss, walk) == (False, False)
        assert dtlb.level1.accesses == level1_accesses

    def test_cold_access_walks(self):
        dtlb = self.make()
        assert dtlb.access(0x5000) == (True, True)

    def test_level1_backs_level0(self):
        dtlb = self.make()
        dtlb.access(0x0000)
        dtlb.access(0x1000)
        dtlb.access(0x2000)  # page 0 falls out of L0 but stays in L1
        l0_miss, walk = dtlb.access(0x0000)
        assert l0_miss is True
        assert walk is False

    def test_flush(self):
        dtlb = self.make()
        dtlb.access(0x0)
        dtlb.flush()
        assert dtlb.access(0x0) == (True, True)

"""The HTTP surface: envelopes, errors, batching, and the e2e flow."""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.errors import ServeError, TaskTimeoutError
from repro.serve.batching import BatchQueue
from repro.serve.registry import ModelRegistry
from repro.serve.server import SCHEMA, ModelServer


@pytest.fixture
def server(tmp_path, suite_tree):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish("cpi-tree", suite_tree, aliases=["prod"])
    srv = ModelServer(
        registry=registry, default_model="cpi-tree@latest", port=0
    )
    srv.start()
    srv.serve_in_background()
    yield srv
    srv.shutdown()


def call(server, path, payload=None):
    base = f"http://127.0.0.1:{server.bound_port}"
    if payload is None:
        request = urllib.request.Request(base + path)
    else:
        request = urllib.request.Request(
            base + path, data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def call_with_headers(server, path, payload=None):
    """Like :func:`call`, but also returns the response headers."""
    base = f"http://127.0.0.1:{server.bound_port}"
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(base + path, data=data)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return (response.status, json.loads(response.read()),
                    dict(response.headers))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


class TestPredictEnvelope:
    def test_golden_envelope(self, server, suite_tree, suite_dataset):
        rows = suite_dataset.X[:3]
        status, document = call(server, "/predict",
                                {"sections": rows.tolist()})
        assert status == 200
        # The envelope contract: exactly these fields, these types.
        assert sorted(document) == [
            "leaf_ids", "model", "n", "predictions", "schema", "single",
        ]
        assert document["schema"] == SCHEMA
        assert document["model"] == "cpi-tree@1"
        assert document["n"] == 3
        assert document["single"] is False
        assert document["predictions"] == [
            float(p) for p in suite_tree.predict(rows)
        ]
        assert document["leaf_ids"] == [
            int(i) for i in suite_tree.leaf_ids(rows)
        ]

    def test_single_section(self, server, suite_dataset):
        status, document = call(
            server, "/predict", {"section": suite_dataset.X[0].tolist()}
        )
        assert status == 200
        assert document["n"] == 1
        assert document["single"] is True

    def test_model_spec_in_payload(self, server, suite_dataset):
        status, document = call(server, "/predict", {
            "model": "cpi-tree@prod",
            "section": suite_dataset.X[0].tolist(),
        })
        assert status == 200
        assert document["model"] == "cpi-tree@1"


class TestExplainEnvelope:
    def test_golden_envelope(self, server, suite_tree, suite_dataset):
        x = suite_dataset.X[0]
        status, document = call(server, "/explain", {"section": x.tolist()})
        assert status == 200
        assert sorted(document) == [
            "contributions", "leaf", "leaf_population", "model", "path",
            "prediction", "schema", "target",
        ]
        assert document["schema"] == SCHEMA
        assert document["leaf"] == int(suite_tree.leaf_ids(x.reshape(1, -1))[0])
        assert document["prediction"] == float(suite_tree.predict(
            x.reshape(1, -1))[0])
        assert document["target"] == suite_tree.target_name_
        for step in document["path"]:
            assert sorted(step) == ["attribute", "branch", "threshold", "value"]
            assert step["branch"] in ("left", "right")
        for contribution in document["contributions"]:
            assert sorted(contribution) == [
                "coefficient", "cycles", "event", "fraction",
                "potential_gain_percent", "value",
            ]

    def test_batch_explain_rejected(self, server, suite_dataset):
        status, document = call(
            server, "/explain", {"sections": suite_dataset.X[:2].tolist()}
        )
        assert status == 400
        assert "one" in document["error"]


class TestErrorEnvelopes:
    def test_unknown_path_404(self, server):
        status, document = call(server, "/nope")
        assert status == 404
        assert document["schema"] == SCHEMA and "error" in document

    def test_unknown_model_404(self, server, suite_dataset):
        status, document = call(server, "/predict", {
            "model": "ghost", "section": suite_dataset.X[0].tolist(),
        })
        assert status == 404
        assert "ghost" in document["error"]

    def test_width_mismatch_400(self, server):
        status, document = call(server, "/predict", {"section": [1.0, 2.0]})
        assert status == 400
        assert "width" in document["error"]

    def test_missing_sections_400(self, server):
        status, document = call(server, "/predict", {})
        assert status == 400

    def test_both_section_forms_400(self, server, suite_dataset):
        row = suite_dataset.X[0].tolist()
        status, _ = call(server, "/predict",
                         {"section": row, "sections": [row]})
        assert status == 400

    def test_non_numeric_400(self, server, suite_tree):
        bad = ["x"] * len(suite_tree.attributes_)
        status, _ = call(server, "/predict", {"section": bad})
        assert status == 400

    def test_invalid_json_400(self, server):
        base = f"http://127.0.0.1:{server.bound_port}"
        request = urllib.request.Request(base + "/predict", data=b"{nope")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestEndToEnd:
    def test_publish_resolve_score_scrape(self, tmp_path, suite_tree,
                                          suite_dataset):
        """The full ISSUE flow: publish -> resolve -> score -> /metrics."""
        registry = ModelRegistry(tmp_path / "registry")
        record = registry.publish("cpi-tree", suite_tree)
        server = ModelServer(registry=registry, port=0)
        server.start()
        server.serve_in_background()
        try:
            status, health = call(server, "/healthz")
            assert status == 200 and health["status"] == "ok"

            status, models = call(server, "/models")
            assert status == 200
            assert [m["spec"] for m in models["models"]] == [record.spec]

            rows = suite_dataset.X[:8]
            status, scored = call(
                server, "/predict",
                {"model": "cpi-tree", "sections": rows.tolist()},
            )
            assert status == 200
            assert scored["predictions"] == [
                float(p) for p in suite_tree.predict(rows)
            ]

            base = f"http://127.0.0.1:{server.bound_port}"
            with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith("text/plain")
                text = resp.read().decode("utf-8")
            assert ('repro_requests_total{endpoint="/predict",status="200"} 1'
                    in text)
            assert "repro_request_seconds_bucket" in text
            assert "repro_batch_rows_count 1" in text
            assert f'repro_drift_rows_total{{model="{record.spec}"}} 8' in text
        finally:
            server.shutdown()

    def test_default_model_required_when_ambiguous(self, tmp_path, suite_tree,
                                                   suite_dataset):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("a", suite_tree)
        server = ModelServer(registry=registry, port=0)
        server.start()
        server.serve_in_background()
        try:
            status, document = call(
                server, "/predict",
                {"section": suite_dataset.X[0].tolist()},
            )
            assert status == 400
            assert "no default" in document["error"]
        finally:
            server.shutdown()


class TestBatchQueue:
    def test_concurrent_submissions_coalesce(self, suite_tree, suite_dataset):
        batches = []
        queue = BatchQueue(
            suite_tree.compiled_.predict,
            max_batch=64,
            max_wait_s=0.05,
            observe_batch=batches.append,
        ).start()
        try:
            X = suite_dataset.X
            results = {}

            def score(i):
                results[i] = queue.submit(X[i:i + 1])

            threads = [
                threading.Thread(target=score, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            want = suite_tree.compiled_.predict(X[:8])
            for i in range(8):
                assert results[i].shape == (1,)
                assert results[i][0] == want[i]
            # At least one evaluation carried more than one request.
            assert sum(batches) == 8 and len(batches) < 8
        finally:
            queue.stop()

    def test_deadline_enforced(self, suite_dataset):
        release = threading.Event()

        def slow_evaluate(X):
            release.wait(timeout=5)
            return np.zeros(X.shape[0])

        queue = BatchQueue(slow_evaluate, max_wait_s=0.0).start()
        try:
            # First request occupies the evaluator; the second expires
            # while queued behind it.
            first = threading.Thread(
                target=lambda: queue.submit(suite_dataset.X[:1], timeout=5)
            )
            first.start()
            time.sleep(0.1)
            with pytest.raises(TaskTimeoutError):
                queue.submit(suite_dataset.X[:1], timeout=0.05)
        finally:
            release.set()
            queue.stop()

    def test_stopped_queue_rejects(self, suite_dataset):
        queue = BatchQueue(lambda X: np.zeros(X.shape[0])).start()
        queue.stop()
        with pytest.raises(ServeError):
            queue.submit(suite_dataset.X[:1])

    def test_evaluator_error_propagates(self, suite_dataset):
        def explode(X):
            raise ValueError("boom")

        queue = BatchQueue(explode).start()
        try:
            with pytest.raises(ValueError, match="boom"):
                queue.submit(suite_dataset.X[:1])
        finally:
            queue.stop()


class TestLoadShedding:
    @pytest.fixture
    def bounded_server(self, tmp_path, suite_tree):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("cpi-tree", suite_tree)
        srv = ModelServer(
            registry=registry, default_model="cpi-tree@latest", port=0,
            max_inflight=1, retry_after_s=2.0,
        )
        srv.start()
        srv.serve_in_background()
        yield srv
        srv.shutdown(drain_timeout=1.0)

    def test_overload_503_envelope(self, bounded_server, suite_dataset):
        # Occupy the single admission slot, then knock.
        bounded_server.begin_request()
        try:
            status, document, headers = call_with_headers(
                bounded_server, "/predict",
                {"section": suite_dataset.X[0].tolist()},
            )
        finally:
            bounded_server.end_request()
        assert status == 503
        assert document["status"] == 503
        assert document["reason"] == "overload"
        assert document["retry_after"] == 2
        assert headers.get("Retry-After") == "2"
        assert 'repro_shed_total{reason="overload"} 1' in \
            bounded_server.render_metrics()

    def test_draining_503_and_healthz(self, bounded_server, suite_dataset):
        bounded_server._draining.set()
        try:
            status, health = call(bounded_server, "/healthz")
            assert health["status"] == "draining"
            status, document, headers = call_with_headers(
                bounded_server, "/predict",
                {"section": suite_dataset.X[0].tolist()},
            )
            assert status == 503
            assert document["reason"] == "draining"
            assert headers.get("Retry-After") is not None
        finally:
            bounded_server._draining.clear()

    def test_inflight_restored_after_requests(
        self, bounded_server, suite_dataset
    ):
        for _ in range(3):
            status, _ = call(
                bounded_server, "/predict",
                {"section": suite_dataset.X[0].tolist()},
            )
            assert status == 200
        assert bounded_server.inflight == 0

    def test_max_inflight_validated(self, tmp_path):
        with pytest.raises(ServeError):
            ModelServer(
                registry=ModelRegistry(tmp_path / "r"), max_inflight=0
            )


class TestDeadlineShed:
    def test_deadline_503_envelope(self, tmp_path, suite_tree, suite_dataset,
                                   monkeypatch):
        from repro.resilience.faults import reset_faults
        from repro.serve.fleet import _FleetWorkerServer

        monkeypatch.setenv("REPRO_FAULTS", "slow_handler:1.0")
        reset_faults()
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("cpi-tree", suite_tree)
        srv = _FleetWorkerServer(
            registry=registry, default_model="cpi-tree@latest", port=0,
            task_timeout=0.05,
        )
        srv.start()
        srv.serve_in_background()
        try:
            status, document, headers = call_with_headers(
                srv, "/predict", {"section": suite_dataset.X[0].tolist()}
            )
            assert status == 503
            assert document["reason"] == "deadline"
            assert headers.get("Retry-After") is not None
            assert 'repro_shed_total{reason="deadline"} 1' in \
                srv.render_metrics()
        finally:
            srv.shutdown(drain_timeout=1.0)
            reset_faults()


class TestGracefulShutdown:
    def test_shutdown_reports_drained_and_refuses_after(
        self, tmp_path, suite_tree, suite_dataset
    ):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("cpi-tree", suite_tree)
        srv = ModelServer(
            registry=registry, default_model="cpi-tree@latest", port=0
        )
        srv.start()
        srv.serve_in_background()
        port = srv.bound_port
        status, _ = call(srv, "/predict",
                         {"section": suite_dataset.X[0].tolist()})
        assert status == 200
        assert srv.shutdown(drain_timeout=2.0) is True
        assert srv.draining
        with pytest.raises(OSError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=1
            )

    def test_shutdown_idempotent(self, tmp_path, suite_tree):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("cpi-tree", suite_tree)
        srv = ModelServer(registry=registry, port=0)
        srv.start()
        srv.serve_in_background()
        assert srv.shutdown(drain_timeout=1.0) is True
        assert srv.shutdown(drain_timeout=1.0) is True


class TestWarmDigestCache:
    def test_alias_flip_to_loaded_digest_reuses_compilation(
        self, tmp_path, suite_tree
    ):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("cpi-tree", suite_tree, aliases=["prod"])
        srv = ModelServer(registry=registry, port=0)
        first = srv.get_model("cpi-tree@1")
        # Another spelling of the same blob digest: no recompilation,
        # the same served entry (queue, monitor, compiled tree).
        second = srv.get_model("cpi-tree@prod")
        assert second is first
        assert 'repro_model_cache_total{outcome="warm"} 1' in \
            srv.render_metrics()
        srv.shutdown(drain_timeout=0.0)

    def test_distinct_versions_are_distinct_entries(
        self, tmp_path, suite_tree, figure1_tree
    ):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("cpi-tree", suite_tree)
        registry.publish("cpi-tree", figure1_tree)
        srv = ModelServer(registry=registry, port=0)
        one = srv.get_model("cpi-tree@1")
        two = srv.get_model("cpi-tree@2")
        assert one is not two
        srv.shutdown(drain_timeout=0.0)

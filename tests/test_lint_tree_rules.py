"""Tree-family lint rules: one clean and one violating fixture per rule."""

import dataclasses

import pytest

from repro.core.tree import M5Prime
from repro.core.tree.linear import LinearModel
from repro.core.tree.node import LeafNode, SplitNode, assign_leaf_ids
from repro.lint import LintConfig, lint_model


def lm(intercept=1.0, indices=(), names=(), coefficients=(), n=10, error=0.1):
    return LinearModel(
        intercept=intercept,
        indices=tuple(indices),
        names=tuple(names),
        coefficients=tuple(coefficients),
        n_training=n,
        training_error=error,
    )


def leaf(n=10, model="default"):
    node = LeafNode(n, 0.1, 1.0)
    node.model = lm(n=n) if model == "default" else model
    return node


def split(index, name, threshold, left, right, n=None):
    node = SplitNode(
        n if n is not None else left.n_instances + right.n_instances,
        0.2, 1.0, index, name, threshold, left, right,
    )
    node.model = lm(n=node.n_instances)
    return node


def make_model(root, attributes=("f0", "f1"), min_instances=2,
               ranges=((0.0, 10.0), (0.0, 10.0)), assign_ids=True):
    model = M5Prime(min_instances=min_instances)
    model.root_ = root
    model.attributes_ = tuple(attributes)
    model.target_name_ = "CPI"
    model.feature_ranges_ = ranges
    if assign_ids:
        assign_leaf_ids(root)
    return model


@pytest.fixture
def clean_model():
    root = split(0, "f0", 5.0, leaf(), leaf())
    return make_model(root)


class TestCleanTree:
    def test_clean_model_lints_clean(self, clean_model):
        report = lint_model(clean_model)
        assert report.is_clean, [d.render() for d in report.diagnostics]
        assert report.families == ("tree",)
        assert report.n_rules >= 9

    def test_fitted_tree_lints_clean(self, figure1_tree):
        assert lint_model(figure1_tree).is_clean


class TestTree001FeatureIndex:
    def test_index_out_of_range(self):
        model = make_model(split(5, "f5", 5.0, leaf(), leaf()))
        found = lint_model(model).by_rule("TREE001")
        assert found and "index 5" in found[0].message

    def test_name_index_mismatch(self):
        model = make_model(split(1, "f0", 5.0, leaf(), leaf()))
        found = lint_model(model).by_rule("TREE001")
        assert found and "'f0'" in found[0].message


class TestTree002Unreachable:
    def test_contradictory_thresholds(self):
        # right of f0 <= 5 implies f0 > 5, so a nested f0 <= 3 left
        # branch can never be taken
        inner = split(0, "f0", 3.0, leaf(), leaf())
        model = make_model(split(0, "f0", 5.0, leaf(), inner))
        found = lint_model(model).by_rule("TREE002")
        assert len(found) == 1
        assert "unreachable" in found[0].message
        assert found[0].location == "leaf LM2"

    def test_reports_maximal_subtree_only(self):
        # the whole inner-left subtree is dead; only its root is flagged
        dead = split(1, "f1", 2.0, leaf(), leaf())
        inner = split(0, "f0", 3.0, dead, leaf())
        model = make_model(split(0, "f0", 5.0, leaf(), inner))
        found = lint_model(model).by_rule("TREE002")
        assert len(found) == 1
        assert found[0].location == "split f1 <= 2"

    def test_equal_threshold_right_reuse_is_unreachable(self):
        # right of f0 <= 5 then left of f0 <= 5 again: interval (5, 5]
        inner = split(0, "f0", 5.0, leaf(), leaf())
        model = make_model(split(0, "f0", 5.0, leaf(), inner))
        assert lint_model(model).by_rule("TREE002")


class TestTree003LeafPopulation:
    def test_small_leaf_flagged(self):
        model = make_model(
            split(0, "f0", 5.0, leaf(n=1), leaf(n=19)), min_instances=4
        )
        found = lint_model(model).by_rule("TREE003")
        assert found and "below" in found[0].message

    def test_single_root_leaf_exempt(self):
        model = make_model(leaf(n=1), min_instances=4)
        assert not lint_model(model).by_rule("TREE003")


class TestTree004ModelIntegrity:
    def test_missing_model(self):
        model = make_model(split(0, "f0", 5.0, leaf(model=None), leaf()))
        found = lint_model(model).by_rule("TREE004")
        assert found and "lacks a linear model" in found[0].message

    def test_nan_coefficient(self):
        bad = lm(indices=(0,), names=("f0",), coefficients=(float("nan"),))
        model = make_model(split(0, "f0", 5.0, leaf(model=bad), leaf()))
        found = lint_model(model).by_rule("TREE004")
        assert found and "non-finite" in found[0].message

    def test_zero_population_model(self):
        model = make_model(
            split(0, "f0", 5.0, leaf(model=lm(n=0)), leaf())
        )
        assert lint_model(model).by_rule("TREE004")

    def test_negative_training_error(self):
        model = make_model(
            split(0, "f0", 5.0, leaf(model=lm(error=-1.0)), leaf())
        )
        assert lint_model(model).by_rule("TREE004")


class TestTree005DegenerateCoefficients:
    def test_huge_coefficient_flagged(self):
        bad = lm(indices=(0,), names=("f0",), coefficients=(1e9,))
        model = make_model(split(0, "f0", 5.0, leaf(model=bad), leaf()))
        found = lint_model(model).by_rule("TREE005")
        assert found and "f0=1e+09" in found[0].message

    def test_bound_is_configurable(self):
        bad = lm(indices=(0,), names=("f0",), coefficients=(50.0,))
        model = make_model(split(0, "f0", 5.0, leaf(model=bad), leaf()))
        config = LintConfig(coefficient_bound=10.0)
        assert lint_model(model, config=config).by_rule("TREE005")
        assert not lint_model(model).by_rule("TREE005")


class TestTree006ThresholdRange:
    def test_threshold_outside_training_range(self):
        model = make_model(split(0, "f0", 50.0, leaf(), leaf()))
        found = lint_model(model).by_rule("TREE006")
        assert found and "outside the training range" in found[0].message

    def test_no_recorded_ranges_skips(self):
        model = make_model(split(0, "f0", 50.0, leaf(), leaf()), ranges=None)
        assert not lint_model(model).by_rule("TREE006")


class TestTree007RoundTrip:
    def test_drift_detected(self, clean_model, monkeypatch):
        import repro.core.tree.serialize as serialize_mod

        real = serialize_mod.model_from_dict

        def drifted(payload):
            clone = real(payload)
            for node in clone.root_.leaves():
                node.model = dataclasses.replace(
                    node.model, intercept=node.model.intercept + 1.0
                )
            return clone

        monkeypatch.setattr(serialize_mod, "model_from_dict", drifted)
        found = lint_model(clean_model).by_rule("TREE007")
        assert found and "drift" in found[0].message
        assert found[0].severity.value == "error"

    def test_clean_round_trip(self, clean_model):
        assert not lint_model(clean_model).by_rule("TREE007")


class TestTree008PopulationConsistency:
    def test_mismatched_split_population(self):
        model = make_model(split(0, "f0", 5.0, leaf(), leaf(), n=5))
        found = lint_model(model).by_rule("TREE008")
        assert found and "children" in found[0].message


class TestTree009LeafIds:
    def test_out_of_order_ids(self):
        root = split(0, "f0", 5.0, leaf(), leaf())
        model = make_model(root, assign_ids=False)
        root.left.leaf_id = 2
        root.right.leaf_id = 1
        found = lint_model(model).by_rule("TREE009")
        assert len(found) == 2
        assert "LM2, expected LM1" in found[0].message

"""The loadtest harness: report math, SLO gate, and a live run."""

import pytest

from repro.errors import ConfigError
from repro.serve.loadtest import LoadTestResult, render_result, run_loadtest
from repro.serve.registry import ModelRegistry
from repro.serve.server import ModelServer


def make_result(**overrides):
    settings = dict(
        requests=100, succeeded=100, shed=0, shed_with_retry_after=0,
        failed=0, resets=0, duration_s=2.0, target_rps=50.0,
    )
    settings.update(overrides)
    return LoadTestResult(**settings)


class TestResultMath:
    def test_rates(self):
        result = make_result(succeeded=99, shed=1, shed_with_retry_after=1)
        assert result.success_rate == pytest.approx(0.99)
        assert result.achieved_rps == pytest.approx(50.0)

    def test_percentiles_nearest_rank(self):
        result = make_result(latencies_ms=[float(v) for v in range(1, 101)])
        assert result.percentile_ms(50) == 50.0
        assert result.percentile_ms(90) == 90.0
        assert result.percentile_ms(99) == 99.0
        assert result.percentile_ms(100) == 100.0

    def test_percentiles_empty(self):
        assert make_result(latencies_ms=[]).percentile_ms(50) is None

    def test_to_dict_envelope_fields(self):
        document = make_result(latencies_ms=[1.0, 2.0]).to_dict()
        assert document["success_rate"] == 1.0
        assert document["latency_ms"]["p50"] == 1.0
        assert document["latency_ms"]["max"] == 2.0
        assert document["requests"] == 100


class TestSLOGate:
    def test_clean_run_passes(self):
        assert make_result().slo_ok(0.99)

    def test_sheds_with_headers_pass(self):
        result = make_result(
            succeeded=99, shed=1, shed_with_retry_after=1
        )
        assert result.slo_ok(0.99)

    def test_shed_without_retry_after_fails(self):
        result = make_result(
            succeeded=99, shed=1, shed_with_retry_after=0
        )
        assert not result.slo_ok(0.99)

    def test_any_reset_fails(self):
        assert not make_result(succeeded=99, resets=1).slo_ok(0.99)

    def test_any_http_failure_fails(self):
        assert not make_result(succeeded=99, failed=1).slo_ok(0.99)

    def test_success_rate_below_threshold_fails(self):
        result = make_result(succeeded=90, shed=10, shed_with_retry_after=10)
        assert not result.slo_ok(0.99)

    def test_empty_run_fails(self):
        assert not make_result(requests=0, succeeded=0).slo_ok(0.99)

    def test_render_mentions_verdict(self):
        assert "met" in render_result(make_result(), 0.99)
        assert "MISSED" in render_result(
            make_result(succeeded=0, resets=100), 0.99
        )


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"rps": 0.0},
        {"duration_s": 0.0},
        {"concurrency": 0},
    ])
    def test_bad_parameters(self, kwargs):
        settings = dict(host="127.0.0.1", port=1, sections=[[1.0]])
        settings.update(kwargs)
        with pytest.raises(ConfigError):
            run_loadtest(**settings)

    def test_needs_sections(self):
        with pytest.raises(ConfigError, match="candidate section"):
            run_loadtest(host="127.0.0.1", port=1, sections=[])


class TestLiveRun:
    def test_against_a_real_server(self, tmp_path, suite_tree, suite_dataset):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("cpi-tree", suite_tree)
        server = ModelServer(
            registry=registry, default_model="cpi-tree@latest", port=0
        )
        server.start()
        server.serve_in_background()
        try:
            result = run_loadtest(
                host="127.0.0.1", port=server.bound_port,
                sections=suite_dataset.X[:8].tolist(),
                rps=50.0, duration_s=1.0, concurrency=8, seed=0,
            )
        finally:
            server.shutdown(drain_timeout=1.0)
        assert result.requests == 50
        assert result.succeeded == 50
        assert result.resets == 0 and result.failed == 0
        assert result.slo_ok(0.99)
        assert result.percentile_ms(50) is not None

    def test_unreachable_port_counts_resets(self, suite_dataset):
        result = run_loadtest(
            host="127.0.0.1", port=9,  # discard port: refused
            sections=suite_dataset.X[:2].tolist(),
            rps=20.0, duration_s=0.5, concurrency=4, timeout_s=0.5,
        )
        assert result.resets == result.requests
        assert not result.slo_ok(0.99)
        assert result.errors  # sampled transport errors are reported

"""Compiled tree inference: bit-identity with the interpreted walk."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.tree import M5Prime, model_from_dict, model_to_dict
from repro.core.tree.node import route
from repro.core.tree.smoothing import smoothed_predict
from repro.errors import ConfigError, DataError, NotFittedError
from repro.serve.compiled import compile_tree

values = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False, width=64)


@st.composite
def fitted_models(draw, max_rows=80, max_cols=4):
    n = draw(st.integers(12, max_rows))
    p = draw(st.integers(1, max_cols))
    X = draw(hnp.arrays(np.float64, (n, p), elements=values))
    y = draw(hnp.arrays(np.float64, (n,), elements=values))
    min_instances = draw(st.integers(2, 10))
    smoothing = draw(st.booleans())
    names = tuple(f"attr{i}" for i in range(p))
    model = M5Prime(min_instances=min_instances, smoothing=smoothing)
    model.fit(X, y, names)
    probe_rows = draw(st.integers(1, 20))
    probes = draw(hnp.arrays(np.float64, (probe_rows, p), elements=values))
    return model, probes


def interpreted(model, X):
    """The scalar reference walk the compiled path must reproduce."""
    root = model.root_
    if model.smoothing:
        return np.array(
            [smoothed_predict(root, x, k=model.smoothing_k) for x in X]
        )
    return np.array([route(root, x).model.predict_one(x) for x in X])


class TestBitIdentity:
    @settings(max_examples=30, deadline=None)
    @given(fitted_models())
    def test_predict_matches_interpreted_exactly(self, model_and_probes):
        model, probes = model_and_probes
        compiled = model.compiled_
        k = model.smoothing_k if model.smoothing else None
        got = compiled.predict(probes, smoothing_k=k)
        want = interpreted(model, probes)
        # Bit-identical, not merely close: array_equal on float arrays.
        assert np.array_equal(got, want)

    @settings(max_examples=30, deadline=None)
    @given(fitted_models())
    def test_leaf_ids_match_interpreted_routing(self, model_and_probes):
        model, probes = model_and_probes
        got = model.compiled_.leaf_ids(probes)
        want = np.array([route(model.root_, x).leaf_id for x in probes])
        assert np.array_equal(got, want)

    @settings(max_examples=15, deadline=None)
    @given(fitted_models())
    def test_json_round_trip_preserves_compiled_output(self, model_and_probes):
        model, probes = model_and_probes
        document = json.loads(json.dumps(model_to_dict(model)))
        restored = model_from_dict(document)
        assert np.array_equal(
            model.compiled_.predict(probes),
            restored.compiled_.predict(probes),
        )

    def test_m5prime_predict_routes_through_compiled(self, suite_tree,
                                                     suite_dataset):
        X = suite_dataset.X
        assert np.array_equal(
            suite_tree.predict(X), suite_tree.compiled_.predict(X)
        )
        assert np.array_equal(
            suite_tree.leaf_ids(X), suite_tree.compiled_.leaf_ids(X)
        )


class TestCompiledStructure:
    def test_preorder_layout(self, figure1_tree):
        compiled = figure1_tree.compiled_
        nodes = list(figure1_tree.root_.iter_nodes())
        assert compiled.n_nodes == len(nodes)
        assert compiled.n_leaves == figure1_tree.n_leaves
        assert compiled.parent[0] == -1
        # Term arrays are CSR-consistent.
        assert compiled.term_offset[0] == 0
        assert compiled.term_offset[-1] == len(compiled.term_feature)
        # Every leaf keeps its LM number.
        leaf_ids = sorted(
            int(i) for i in compiled.leaf_id[compiled.feature < 0]
        )
        assert leaf_ids == list(range(1, figure1_tree.n_leaves + 1))

    def test_compiled_cache_invalidated_on_refit(self, figure1_data):
        model = M5Prime(min_instances=40).fit(figure1_data)
        first = model.compiled_
        assert model.compiled_ is first  # cached
        model.fit(figure1_data)
        assert model.compiled_ is not first  # new root_, new compilation

    def test_unfitted_model_has_no_compiled_form(self):
        with pytest.raises(NotFittedError):
            M5Prime().compiled_


class TestCompiledErrors:
    def test_width_mismatch_rejected(self, figure1_tree):
        with pytest.raises(DataError):
            figure1_tree.compiled_.predict(np.zeros((3, 7)))

    def test_one_dimensional_input_rejected(self, figure1_tree):
        with pytest.raises(DataError):
            figure1_tree.compiled_.predict(np.zeros(2))

    def test_negative_smoothing_k_rejected(self, figure1_tree):
        X = np.zeros((1, len(figure1_tree.attributes_)))
        with pytest.raises(ConfigError):
            figure1_tree.compiled_.predict(X, smoothing_k=-1.0)

    def test_out_of_range_split_index_rejected(self, figure1_tree):
        # Compiling against fewer features than the splits reference.
        with pytest.raises(DataError):
            compile_tree(figure1_tree.root_, 0)

    def test_nan_threshold_rejected(self, figure1_tree):
        # A NaN threshold compares false against everything, so every
        # row would silently route right; compile must refuse instead.
        import copy

        root = copy.deepcopy(figure1_tree.root_)
        root.threshold = float("nan")
        with pytest.raises(DataError, match="non-finite threshold"):
            compile_tree(root, len(figure1_tree.attributes_))

    def test_empty_batch(self, figure1_tree):
        X = np.empty((0, len(figure1_tree.attributes_)))
        assert figure1_tree.compiled_.predict(X).shape == (0,)
        assert figure1_tree.compiled_.leaf_ids(X).shape == (0,)

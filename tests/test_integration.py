"""End-to-end integration tests across the whole pipeline.

These walk the exact path the paper describes: run workloads on the
simulated machine, cut equal-instruction sections, derive Table I
metrics, train M5', and answer the what/how-much questions.
"""

import numpy as np

from repro.baselines import NaiveFixedPenaltyModel, RegressionTree
from repro.core.analysis import PerformanceAnalyzer, workload_leaf_table
from repro.core.tree import M5Prime
from repro.datasets import load_csv, save_csv
from repro.evaluation import cross_validate
from repro.workloads import simulate_suite, workload_by_name


class TestFullPipeline:
    def test_simulate_train_analyze(self, suite_dataset):
        model = M5Prime(min_instances=12).fit(suite_dataset)
        analyzer = PerformanceAnalyzer(model)
        analysis = analyzer.analyze_section(suite_dataset.X[0])
        assert analysis.predicted > 0
        assert analysis.leaf_id >= 1

    def test_tree_beats_naive_in_cv(self, suite_dataset):
        tree = cross_validate(
            lambda: M5Prime(min_instances=12), suite_dataset, n_folds=4, rng=0
        )
        naive = cross_validate(
            NaiveFixedPenaltyModel, suite_dataset, n_folds=4, rng=0
        )
        assert tree.mean.rae < naive.mean.rae

    def test_tree_beats_cart_in_cv(self, suite_dataset):
        tree = cross_validate(
            lambda: M5Prime(min_instances=12), suite_dataset, n_folds=4, rng=0
        )
        cart = cross_validate(
            lambda: RegressionTree(min_instances=12), suite_dataset, n_folds=4, rng=0
        )
        assert tree.mean.rae < cart.mean.rae

    def test_cv_correlation_reasonable_at_small_scale(self, suite_dataset):
        result = cross_validate(
            lambda: M5Prime(min_instances=12), suite_dataset, n_folds=4, rng=0
        )
        assert result.mean.correlation > 0.78

    def test_round_trip_through_csv(self, tmp_path, suite_dataset):
        path = tmp_path / "sections.csv"
        save_csv(suite_dataset, path)
        loaded = load_csv(path)
        a = M5Prime(min_instances=12).fit(suite_dataset)
        b = M5Prime(min_instances=12).fit(loaded)
        assert a.to_text() == b.to_text()

    def test_classification_links_leaves_to_workloads(
        self, suite_tree, suite_dataset
    ):
        table = workload_leaf_table(suite_tree, suite_dataset)
        # calm sections must concentrate away from mcf's dominant leaf.
        calm_top = max(table["calm_like"], key=table["calm_like"].get)
        mcf_top = max(table["mcf_like"], key=table["mcf_like"].get)
        assert calm_top != mcf_top

    def test_mcf_leaf_is_high_cpi(self, suite_tree, suite_dataset):
        table = workload_leaf_table(suite_tree, suite_dataset)
        mcf_top = max(table["mcf_like"], key=table["mcf_like"].get)
        ids = suite_tree.leaf_ids(suite_dataset.X)
        mcf_leaf_cpi = suite_dataset.y[ids == mcf_top].mean()
        assert mcf_leaf_cpi > suite_dataset.y.mean()


class TestCrossWorkloadGeneralization:
    def test_model_predicts_unseen_workload_sections(self, suite_dataset):
        """Train on 10 workloads, predict the 11th (harder than CV)."""
        holdout = "sphinx_like"
        mask = suite_dataset.meta["workload"] == holdout
        train = suite_dataset.subset(~mask)
        test = suite_dataset.subset(mask)
        model = M5Prime(min_instances=12).fit(train)
        predictions = model.predict(test.X)
        # Unseen workload, but its sections resemble trained classes;
        # predictions must at least be positive and in a sane CPI range.
        assert np.all(predictions > 0)
        assert np.all(predictions < 30)
        error = np.mean(np.abs(predictions - test.y))
        assert error < 2.0


class TestSingleWorkloadRun:
    def test_single_profile_collection(self):
        result = simulate_suite([workload_by_name("calm_like")], 6, 256, seed=11)
        ds = result.dataset
        assert ds.n_instances == 6
        assert set(ds.meta["workload"]) == {"calm_like"}
        assert ds.y.mean() < 1.5  # calm workload stays low-CPI

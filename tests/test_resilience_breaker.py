"""The circuit breaker: trip, cooldown, half-open probe, recovery."""

import threading

import pytest

from repro.errors import ConfigError
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, cooldown_s=5.0, clock=clock)


class TestValidation:
    def test_threshold_must_be_positive(self, clock):
        with pytest.raises(ConfigError):
            CircuitBreaker(failure_threshold=0, clock=clock)

    def test_cooldown_must_be_non_negative(self, clock):
        with pytest.raises(ConfigError):
            CircuitBreaker(cooldown_s=-1.0, clock=clock)

    def test_half_open_successes_must_be_positive(self, clock):
        with pytest.raises(ConfigError):
            CircuitBreaker(half_open_successes=0, clock=clock)


class TestTrip:
    def test_starts_closed_and_allowing(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_at_threshold(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # streak restarted after success

    def test_open_refuses_until_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(4.99)
        assert not breaker.allow()
        assert breaker.state == OPEN


class TestHalfOpen:
    def _trip(self, breaker):
        for _ in range(3):
            breaker.record_failure()

    def test_cooldown_elapsing_half_opens(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()

    def test_probe_success_closes(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_fresh_cooldown(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        clock.advance(4.0)  # only part of the *new* cooldown
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN

    def test_multi_success_half_open(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=1.0, half_open_successes=2,
            clock=clock,
        )
        breaker.record_failure()
        clock.advance(1.0)
        breaker.record_success()
        assert breaker.state == HALF_OPEN  # one success is not enough
        breaker.record_success()
        assert breaker.state == CLOSED


class TestMisc:
    def test_reset_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_describe_mentions_state(self, breaker):
        assert "closed" in breaker.describe()
        for _ in range(3):
            breaker.record_failure()
        assert "open" in breaker.describe()

    def test_thread_safety_smoke(self):
        breaker = CircuitBreaker(failure_threshold=1000000)

        def hammer():
            for _ in range(500):
                breaker.record_failure()
                breaker.allow()
                breaker.record_success()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert breaker.state == CLOSED

"""The FLEET lint family: fleet-config documents, good and broken."""

import json

import pytest

from repro.errors import LintError
from repro.lint import FAMILY_FLEET, lint_fleet, run_lint
from repro.lint.diagnostics import Severity


def rule_ids(report):
    return sorted({d.rule_id for d in report.diagnostics})


class TestDocumentLoading:
    def test_clean_config_is_clean(self):
        report = lint_fleet({"workers": 4, "mode": "router",
                             "max_inflight": 64})
        assert report.diagnostics == []
        assert report.exit_code(strict=True) == 0

    def test_empty_config_is_clean(self):
        # Every key optional: defaults are a valid fleet.
        assert lint_fleet({}).diagnostics == []

    def test_path_variant_loads_the_file(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps({"workers": 2}))
        assert lint_fleet(path).diagnostics == []

    def test_unreadable_file_is_a_finding_not_a_crash(self, tmp_path):
        report = lint_fleet(tmp_path / "missing.json")
        assert rule_ids(report) == ["FLEET001"]
        assert "unreadable" in report.diagnostics[0].message

    def test_invalid_json_is_a_finding(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text("{not json")
        report = lint_fleet(path)
        assert rule_ids(report) == ["FLEET001"]
        assert "not valid JSON" in report.diagnostics[0].message

    def test_non_object_document_is_a_finding(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text("[1, 2]")
        report = lint_fleet(path)
        assert rule_ids(report) == ["FLEET001"]

    def test_unknown_key_flagged(self):
        report = lint_fleet({"wrokers": 4})
        assert rule_ids(report) == ["FLEET001"]
        assert "wrokers" in report.diagnostics[0].message


class TestValueRules:
    @pytest.mark.parametrize("workers", [0, -1, 1.5, "four", True])
    def test_fleet002_workers(self, workers):
        assert "FLEET002" in rule_ids(lint_fleet({"workers": workers}))

    def test_fleet003_unknown_mode(self):
        report = lint_fleet({"mode": "cluster"})
        assert "FLEET003" in rule_ids(report)

    def test_fleet003_reuseport_needs_fixed_port(self):
        report = lint_fleet({"mode": "reuseport", "port": 0})
        assert "FLEET003" in rule_ids(report)
        assert lint_fleet({"mode": "reuseport", "port": 8377}) \
            .diagnostics == []

    @pytest.mark.parametrize("key,value", [
        ("probe_interval_s", 0),
        ("probe_timeout_s", -1.0),
        ("router_timeout_s", "fast"),
        ("retry_after_s", 0),
        ("drain_timeout_s", -0.5),
        ("restart_base_delay_s", -1),
        ("task_timeout", 0),
    ])
    def test_fleet004_timing_values(self, key, value):
        assert "FLEET004" in rule_ids(lint_fleet({key: value}))

    def test_fleet004_null_task_timeout_ok(self):
        assert lint_fleet({"task_timeout": None}).diagnostics == []

    def test_fleet005_null_max_inflight_warns(self):
        report = lint_fleet({"max_inflight": None})
        assert rule_ids(report) == ["FLEET005"]
        (finding,) = report.diagnostics
        assert finding.severity is Severity.WARNING
        assert "admission" in finding.message

    def test_fleet005_invalid_max_inflight_is_an_error(self):
        report = lint_fleet({"max_inflight": 0})
        (finding,) = [d for d in report.diagnostics
                      if d.rule_id == "FLEET005"]
        assert finding.severity is Severity.ERROR

    def test_fleet006_timeout_ordering(self):
        report = lint_fleet({"task_timeout": 10.0, "router_timeout_s": 10.0})
        assert "FLEET006" in rule_ids(report)
        assert lint_fleet(
            {"task_timeout": 1.0, "router_timeout_s": 10.0}
        ).diagnostics == []

    @pytest.mark.parametrize("document", [
        {"breaker_threshold": 0},
        {"breaker_threshold": 2.5},
        {"breaker_cooldown_s": -1.0},
    ])
    def test_fleet007_breaker_settings(self, document):
        assert "FLEET007" in rule_ids(lint_fleet(document))


class TestFamilySelection:
    def test_family_requires_a_config(self):
        with pytest.raises(LintError, match="fleet config"):
            run_lint(fleet_config=None, families=(FAMILY_FLEET,))

    def test_config_alone_selects_only_fleet(self):
        report = run_lint(fleet_config={"workers": 2})
        assert report.families == (FAMILY_FLEET,)

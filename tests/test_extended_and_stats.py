"""Tests for the extended workload catalogue and the core statistics API."""

import pytest

from repro.simulator import MachineConfig, SimulatedCore
from repro.workloads import (
    PhaseParams,
    extended_suite,
    simulate_suite,
    spec_like_suite,
    synthesize_block,
)
from repro.workloads.extended import (
    milc_like,
    omnetpp_like,
    povray_like,
    soplex_like,
    xalanc_like,
)


class TestExtendedSuite:
    def test_contains_default_suite(self):
        default_names = {p.name for p in spec_like_suite()}
        extended_names = {p.name for p in extended_suite()}
        assert default_names < extended_names
        assert len(extended_suite()) == 16

    def test_names_unique(self):
        names = [p.name for p in extended_suite()]
        assert len(set(names)) == len(names)

    def test_profiles_valid_and_simulable(self):
        result = simulate_suite(
            [povray_like(), omnetpp_like()],
            sections_per_workload=4,
            instructions_per_section=256,
            seed=0,
        )
        assert result.dataset.n_instances == 8

    def test_povray_is_low_cpi(self):
        result = simulate_suite(
            [povray_like()], sections_per_workload=8,
            instructions_per_section=512, seed=1,
        )
        assert result.cpi_by_workload["povray_like"] < 1.2

    def test_omnetpp_is_memory_bound(self):
        result = simulate_suite(
            [omnetpp_like(), povray_like()], sections_per_workload=8,
            instructions_per_section=512, seed=1,
        )
        cpis = result.cpi_by_workload
        assert cpis["omnetpp_like"] > 2 * cpis["povray_like"]

    def test_milc_streams(self):
        profile = milc_like()
        params = profile.schedule.phases[0]
        assert params.stride_fraction > 0.9
        assert params.dependent_miss_fraction < 0.15

    def test_multiphase_extras(self):
        assert len(xalanc_like().schedule) == 2
        assert len(soplex_like().schedule) == 2


class TestCoreStats:
    @pytest.fixture
    def run_core(self):
        core = SimulatedCore(MachineConfig.tiny(), rng=0)
        block = synthesize_block(PhaseParams(), 1024, rng=0)
        core.run_block(block)
        return core

    def test_components_present(self, run_core):
        stats = run_core.statistics()
        assert set(stats.components) == {
            "L1I", "L1D", "L2", "DTLB-L0", "DTLB-L1", "ITLB", "branch",
        }

    def test_l1i_accessed_once_per_instruction(self, run_core):
        stats = run_core.statistics()
        assert stats["L1I"].accesses == 1024
        assert stats["ITLB"].accesses == 1024

    def test_l2_filtered_by_l1(self, run_core):
        stats = run_core.statistics()
        assert stats["L2"].accesses <= (
            stats["L1I"].misses + stats["L1D"].misses + 1024
        )
        assert stats["L2"].accesses >= stats["L1D"].misses

    def test_miss_rates_in_range(self, run_core):
        for component in run_core.statistics().components.values():
            assert 0.0 <= component.miss_rate <= 1.0
            assert component.hits == component.accesses - component.misses

    def test_reset_clears(self, run_core):
        run_core.reset()
        stats = run_core.statistics()
        # flush() keeps cache stats but predictor reset clears; reset()
        # flushes state — verify predictor cleared and caches still valid.
        assert stats["branch"].accesses == 0

    def test_describe(self, run_core):
        text = run_core.statistics().describe()
        assert "L1D" in text
        assert "%" in text

    def test_empty_core_zero_rates(self):
        core = SimulatedCore(MachineConfig.tiny(), rng=0)
        for component in core.statistics().components.values():
            assert component.accesses == 0
            assert component.miss_rate == 0.0

"""Checkpoint store: round trips, corruption quarantine, maintenance."""

import json

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.resilience.checkpoint import (
    CheckpointStore,
    dataset_fingerprint,
    jsonable,
)


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path / "checkpoints")


# ---------------------------------------------------------------------------
# Round trips
# ---------------------------------------------------------------------------
class TestRoundTrip:
    def test_store_and_load(self, store):
        payload = {"fold": 3, "predictions": [1.25, -0.5]}
        store.store("run", "fold-003", payload)
        assert store.load("run", "fold-003") == payload

    def test_floats_survive_bit_exactly(self, store):
        # Shortest-round-trip repr: every double comes back identical.
        values = np.random.default_rng(0).normal(size=256)
        store.store("run", "unit", {"values": values})
        loaded = np.asarray(store.load("run", "unit")["values"])
        assert loaded.dtype == np.float64
        np.testing.assert_array_equal(loaded, values)

    def test_numpy_scalars_and_arrays_become_json(self, store):
        payload = {
            "f": np.float64(1.5), "i": np.int64(3), "b": np.bool_(True),
            "a": np.arange(3), "nested": [np.float32(0.5), (1, 2)],
        }
        clean = jsonable(payload)
        json.dumps(clean)  # must be serializable as-is
        assert clean["f"] == 1.5 and clean["i"] == 3 and clean["b"] is True
        assert clean["a"] == [0, 1, 2]

    def test_missing_unit_is_none(self, store):
        assert store.load("run", "absent") is None

    def test_unserializable_payload_raises(self, store):
        with pytest.raises(CheckpointError, match="not serializable"):
            store.store("run", "unit", {"bad": object()})


# ---------------------------------------------------------------------------
# Corruption handling
# ---------------------------------------------------------------------------
class TestCorruption:
    def _checkpoint(self, store):
        store.store("run", "unit", {"x": 1.0})
        return store.unit_path("run", "unit")

    def test_truncated_file_quarantined(self, store):
        path = self._checkpoint(store)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.load("run", "unit") is None
        assert not path.exists()
        assert path.with_suffix(".json.quarantined").exists()

    def test_tampered_payload_fails_checksum(self, store):
        path = self._checkpoint(store)
        document = json.loads(path.read_text())
        document["payload"]["x"] = 2.0
        path.write_text(json.dumps(document))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.load("run", "unit") is None

    def test_foreign_json_rejected(self, store):
        path = self._checkpoint(store)
        path.write_text(json.dumps({"something": "else"}))
        with pytest.warns(RuntimeWarning):
            assert store.load("run", "unit") is None

    def test_quarantined_unit_recomputes_and_stores_again(self, store):
        path = self._checkpoint(store)
        path.write_text("garbage")
        with pytest.warns(RuntimeWarning):
            assert store.load("run", "unit") is None
        store.store("run", "unit", {"x": 3.0})
        assert store.load("run", "unit") == {"x": 3.0}


# ---------------------------------------------------------------------------
# Addressing
# ---------------------------------------------------------------------------
class TestAddressing:
    def test_run_key_slashes_nest_directories(self, store):
        store.store("compare-abc/m5p", "fold-000", {"x": 1})
        assert store.unit_path("compare-abc/m5p", "fold-000").exists()
        assert (store.directory / "compare-abc" / "m5p").is_dir()

    def test_hostile_names_are_sanitized(self, store):
        store.store("run", "wl-a b/c", {"x": 1})
        (unit,) = store.completed_units("run")
        assert "/" not in unit and " " not in unit

    def test_empty_run_key_rejected(self, store):
        with pytest.raises(CheckpointError):
            store.store("", "unit", {})

    def test_dot_segments_rejected(self, store):
        with pytest.raises(CheckpointError):
            store.store("..", "unit", {})


# ---------------------------------------------------------------------------
# Inspection and maintenance
# ---------------------------------------------------------------------------
class TestMaintenance:
    def test_completed_units_sorted(self, store):
        for name in ("fold-002", "fold-000", "fold-001"):
            store.store("run", name, {})
        assert store.completed_units("run") == [
            "fold-000", "fold-001", "fold-002"
        ]

    def test_runs_counts_units(self, store):
        store.store("collect-1", "wl-a", {})
        store.store("collect-1", "wl-b", {})
        store.store("compare-2/ols", "fold-000", {})
        assert store.runs() == {"collect-1": 2, "compare-2/ols": 1}

    def test_clear_one_run(self, store):
        store.store("a", "u", {})
        store.store("b", "u", {})
        assert store.clear("a") == 1
        assert store.load("a", "u") is None
        assert store.load("b", "u") == {}

    def test_clear_all(self, store):
        store.store("a", "u", {})
        store.store("b/nested", "u", {})
        assert store.clear() >= 2
        assert store.runs() == {}

    def test_clear_empty_store(self, tmp_path):
        assert CheckpointStore(tmp_path / "never-created").clear() == 0


# ---------------------------------------------------------------------------
# Dataset fingerprints
# ---------------------------------------------------------------------------
class TestDatasetFingerprint:
    def test_content_addressed(self, suite_dataset):
        assert dataset_fingerprint(suite_dataset) == dataset_fingerprint(
            suite_dataset
        )
        assert len(dataset_fingerprint(suite_dataset)) == 16

    def test_changed_target_changes_fingerprint(self, suite_dataset):
        from repro.datasets.dataset import Dataset

        bumped = Dataset(
            X=suite_dataset.X.copy(),
            y=suite_dataset.y + 1e-9,
            attributes=list(suite_dataset.attributes),
            target_name=suite_dataset.target_name,
        )
        assert dataset_fingerprint(bumped) != dataset_fingerprint(suite_dataset)

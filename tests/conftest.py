"""Shared fixtures: small deterministic datasets and fitted models."""

import random

import numpy as np
import pytest

from repro.core.tree import M5Prime
from repro.datasets.synthetic import figure1_dataset
from repro.workloads import simulate_suite


def _np_states_equal(before, after) -> bool:
    return all(
        np.array_equal(x, y) if isinstance(x, np.ndarray) else x == y
        for x, y in zip(before, after)
    )


@pytest.fixture(autouse=True)
def _global_rng_guard(request):
    """Fail any test that mutates global RNG state.

    Reproducibility here rests on explicit ``np.random.Generator``
    objects threaded through every API; code reaching for the legacy
    global streams (``np.random.seed``/``np.random.rand``/
    ``random.random``) makes results depend on test execution order.
    Hypothesis manages (and restores) the global streams itself, so
    property tests pass through untouched.
    """
    python_state = random.getstate()
    numpy_state = np.random.get_state()
    yield
    if random.getstate() != python_state:
        pytest.fail(
            "test mutated the global `random` module state; use an "
            "explicit seeded generator instead", pytrace=False,
        )
    if not _np_states_equal(numpy_state, np.random.get_state()):
        pytest.fail(
            "test mutated the global numpy RNG state; use "
            "np.random.default_rng(seed) instead", pytrace=False,
        )


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def suite_result():
    """A small but phase-structured simulated suite (shared, read-only)."""
    return simulate_suite(
        sections_per_workload=12, instructions_per_section=384, seed=3
    )


@pytest.fixture(scope="session")
def suite_dataset(suite_result):
    return suite_result.dataset


@pytest.fixture(scope="session")
def figure1_data():
    """Piecewise-linear ground truth matching the paper's Figure 1."""
    return figure1_dataset(n=1500, noise_sd=0.05, rng=1)


@pytest.fixture(scope="session")
def figure1_tree(figure1_data):
    """An M5' tree fitted on the Figure 1 data (shared, read-only)."""
    return M5Prime(min_instances=40).fit(figure1_data)


@pytest.fixture(scope="session")
def suite_tree(suite_dataset):
    """An M5' tree fitted on the small suite dataset (shared, read-only)."""
    return M5Prime(min_instances=12).fit(suite_dataset)


@pytest.fixture(scope="session")
def fast_profiles():
    """Two tiny single-phase workloads for fast-engine tests.

    Small footprints keep the calibration's trace-oracle legs cheap; one
    cache-resident and one jumping phase exercise both anchor regimes.
    """
    from repro.workloads import PhaseParams, WorkloadProfile

    return [
        WorkloadProfile.single_phase(
            "tiny_hot",
            PhaseParams(
                data_footprint=32 << 10, hot_set_bytes=8 << 10,
                hot_fraction=0.95,
            ),
        ),
        WorkloadProfile.single_phase(
            "tiny_jump",
            PhaseParams(
                data_footprint=8 << 20, hot_set_bytes=4 << 10,
                hot_fraction=0.2, stride_fraction=0.1,
            ),
        ),
    ]


@pytest.fixture(scope="session")
def small_calibration(fast_profiles):
    """A fast-engine calibration over the tiny profiles (shared, read-only)."""
    from repro.fastsim import calibrate

    return calibrate(profiles=fast_profiles, seed=7, replicas=4,
                     instructions=2048)

"""Shared fixtures: small deterministic datasets and fitted models."""

import numpy as np
import pytest

from repro.core.tree import M5Prime
from repro.datasets.synthetic import figure1_dataset
from repro.workloads import simulate_suite


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def suite_result():
    """A small but phase-structured simulated suite (shared, read-only)."""
    return simulate_suite(
        sections_per_workload=12, instructions_per_section=384, seed=3
    )


@pytest.fixture(scope="session")
def suite_dataset(suite_result):
    return suite_result.dataset


@pytest.fixture(scope="session")
def figure1_data():
    """Piecewise-linear ground truth matching the paper's Figure 1."""
    return figure1_dataset(n=1500, noise_sd=0.05, rng=1)


@pytest.fixture(scope="session")
def figure1_tree(figure1_data):
    """An M5' tree fitted on the Figure 1 data (shared, read-only)."""
    return M5Prime(min_instances=40).fit(figure1_data)


@pytest.fixture(scope="session")
def suite_tree(suite_dataset):
    """An M5' tree fitted on the small suite dataset (shared, read-only)."""
    return M5Prime(min_instances=12).fit(suite_dataset)

"""Pruning and stopping-rule edge cases, pinned by golden structures.

The golden skeletons under ``tests/golden/`` record the exact split
structure (attribute names, 10-significant-digit thresholds, node
populations, leaf-model term names) these datasets must produce.  Regenerate
a file deliberately with::

    PYTHONPATH=src python -c "
    from tests.test_pruning_edges import regenerate_goldens; regenerate_goldens()"

and review the diff like any other behaviour change.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.conformance.structure import tree_skeleton
from repro.core.tree import M5Prime
from repro.datasets.synthetic import (
    constant_dataset,
    figure1_dataset,
    step_dataset,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The paper prunes to >= 430 sections per leaf (1% of its ~43k corpus).
PAPER_MIN_LEAF = 430


def _golden_cases():
    return {
        "constant_target": M5Prime(min_instances=10).fit(
            constant_dataset(value=2.5, n=90, p=3)
        ),
        "step_at_paper_floor": M5Prime(
            min_instances=PAPER_MIN_LEAF, prune=False
        ).fit(step_dataset(n=2 * PAPER_MIN_LEAF, rng=2007)),
        "single_feature_pruned": M5Prime(min_instances=25).fit(
            step_dataset(n=400, noise_sd=0.1, rng=2007)
        ),
        "figure1_pruned": M5Prime(min_instances=40).fit(
            figure1_dataset(n=900, noise_sd=0.05, rng=2007)
        ),
    }


def regenerate_goldens() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, model in _golden_cases().items():
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(
            json.dumps(tree_skeleton(model.root_), indent=1, sort_keys=True)
            + "\n"
        )


class TestGoldenStructures:
    @pytest.mark.parametrize("name", sorted(_golden_cases()))
    def test_structure_matches_golden(self, name):
        golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        model = _golden_cases()[name]
        assert tree_skeleton(model.root_) == golden


class TestMinLeafThreshold:
    def test_one_below_the_floor_cannot_split(self):
        # 2 * min_instances - 1 rows: the stopping rule forbids any split.
        data = step_dataset(n=2 * PAPER_MIN_LEAF - 1, rng=2007)
        model = M5Prime(min_instances=PAPER_MIN_LEAF, prune=False).fit(data)
        assert model.n_leaves == 1

    def test_exactly_the_floor_splits_in_half(self):
        # 2 * min_instances rows admit exactly one legal boundary: the
        # 430/430 midpoint split.
        data = step_dataset(n=2 * PAPER_MIN_LEAF, rng=2007)
        model = M5Prime(min_instances=PAPER_MIN_LEAF, prune=False).fit(data)
        assert model.n_leaves == 2
        left, right = model.root_.left, model.root_.right
        assert left.n_instances == PAPER_MIN_LEAF
        assert right.n_instances == PAPER_MIN_LEAF

    def test_every_leaf_respects_the_floor(self):
        data = step_dataset(n=3 * PAPER_MIN_LEAF, noise_sd=0.05, rng=3)
        model = M5Prime(min_instances=PAPER_MIN_LEAF, prune=False).fit(data)
        for leaf in model.root_.leaves():
            assert leaf.n_instances >= PAPER_MIN_LEAF


class TestConstantTarget:
    def test_single_leaf_and_exact_prediction(self):
        data = constant_dataset(value=2.5, n=90, p=3)
        model = M5Prime(min_instances=10).fit(data)
        assert model.n_leaves == 1
        assert np.allclose(model.predict(data.X), 2.5)

    def test_unpruned_is_also_single_leaf(self):
        # The sd > sd_fraction * global_sd stopping rule (not pruning)
        # must refuse to split a zero-variance target.
        data = constant_dataset(value=1.0, n=120, p=2)
        model = M5Prime(min_instances=10, prune=False).fit(data)
        assert model.n_leaves == 1


class TestSingleFeature:
    def test_clean_step_needs_exactly_one_split(self):
        data = step_dataset(n=300, rng=4)
        model = M5Prime(min_instances=20).fit(data)
        assert model.n_leaves == 2
        assert model.root_.attribute_name == "X1"
        assert model.root_.threshold == pytest.approx(0.5, abs=0.05)

    def test_pruning_removes_noise_splits(self):
        data = step_dataset(n=400, noise_sd=0.1, rng=2007)
        pruned = M5Prime(min_instances=25).fit(data)
        unpruned = M5Prime(min_instances=25, prune=False).fit(data)
        assert pruned.n_leaves <= unpruned.n_leaves

"""Verify-on-publish: the registry's certificate gate and storage."""

import numpy as np
import pytest

from repro.errors import RegistryError
from repro.serve.registry import ModelRegistry
from repro.verify import verify_model


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


class TestPublishStoresCertificate:
    def test_certificate_written_beside_blob(self, registry, suite_tree):
        record = registry.publish("cpi-tree", suite_tree)
        assert record.certificate is not None
        assert record.certificate.startswith("cert-")
        assert (registry.directory / record.certificate).exists()

    def test_stored_certificate_round_trips(self, registry, suite_tree):
        record = registry.publish("cpi-tree", suite_tree)
        stored = registry.load_certificate(record)
        assert stored == verify_model(suite_tree).certificate

    def test_record_for_carries_certificate(self, registry, suite_tree):
        registry.publish("cpi-tree", suite_tree, aliases=("prod",))
        assert registry.record_for("cpi-tree@prod").certificate is not None

    def test_certificate_outside_cache_namespace(self, registry, suite_tree):
        # cert-*.json must not look like a cache entry, or every lint
        # of the registry directory would demand a checksum sidecar.
        record = registry.publish("cpi-tree", suite_tree)
        assert record.certificate not in registry.cache.info().entries


class TestPublishRefusesBrokenModels:
    def test_broken_arena_refused_before_any_write(self, registry,
                                                   suite_dataset):
        from repro.core.tree import M5Prime

        model = M5Prime(min_instances=12).fit(suite_dataset)
        arena = model.compiled_  # cache, then corrupt in place
        split = int(np.flatnonzero(arena.feature >= 0)[0])
        arena.left[split] = arena.n_nodes + 7
        with pytest.raises(RegistryError, match="static verification"):
            registry.publish("bad-tree", model)
        assert registry.names() == {}
        assert not list(registry.directory.glob("model-*.json"))

    def test_unfitted_model_still_refused(self, registry):
        from repro.core.tree import M5Prime

        with pytest.raises(RegistryError, match="unfitted"):
            registry.publish("empty", M5Prime())


class TestVerifyOptOut:
    def test_verify_false_publishes_without_certificate(self, registry,
                                                        suite_tree):
        record = registry.publish("cpi-tree", suite_tree, verify=False)
        assert record.certificate is None
        assert registry.load_certificate(record) is None


class TestCertificateLoadFailures:
    def test_missing_certificate_file(self, registry, suite_tree):
        record = registry.publish("cpi-tree", suite_tree)
        (registry.directory / record.certificate).unlink()
        with pytest.raises(RegistryError, match="unreadable"):
            registry.load_certificate(record)

    def test_malformed_certificate_file(self, registry, suite_tree):
        record = registry.publish("cpi-tree", suite_tree)
        (registry.directory / record.certificate).write_text("{broken")
        with pytest.raises(RegistryError, match="malformed"):
            registry.load_certificate(record)

"""Tests for the comparison learners."""

import numpy as np
import pytest

from repro.baselines import (
    EpsilonSVR,
    KNNRegressor,
    LinearRegressionBaseline,
    MLPRegressor,
    NaiveFixedPenaltyModel,
    RegressionTree,
    default_penalty_table,
)
from repro.baselines.base import Standardizer
from repro.datasets.synthetic import (
    figure1_dataset,
    interaction_dataset,
    linear_dataset,
    step_dataset,
)
from repro.errors import ConfigError, DataError, NotFittedError
from repro.evaluation import evaluate_predictions


class TestStandardizer:
    def test_zero_mean_unit_sd(self, rng):
        X = rng.normal(5.0, 3.0, size=(200, 2))
        Z = Standardizer().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_safe(self):
        X = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        Z = Standardizer().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_transform_requires_fit(self):
        with pytest.raises(NotFittedError):
            Standardizer().transform(np.ones((2, 2)))


class TestRegressorBaseContract:
    @pytest.mark.parametrize(
        "factory",
        [
            LinearRegressionBaseline,
            lambda: RegressionTree(min_instances=5),
            lambda: KNNRegressor(k=3),
            lambda: MLPRegressor(epochs=5),
            lambda: EpsilonSVR(max_sweeps=5),
            NaiveFixedPenaltyModel,
        ],
    )
    def test_predict_before_fit_raises(self, factory):
        with pytest.raises(NotFittedError):
            factory().predict(np.zeros((1, 2)))

    def test_width_mismatch_raises(self):
        ds = linear_dataset([1.0, 2.0], n=50, rng=0)
        model = LinearRegressionBaseline().fit(ds)
        with pytest.raises(DataError):
            model.predict(np.zeros((2, 3)))

    def test_empty_fit_rejected(self):
        with pytest.raises(DataError):
            LinearRegressionBaseline().fit(np.zeros((0, 2)), np.zeros(0))


class TestLinearRegression:
    def test_recovers_coefficients(self):
        ds = linear_dataset([2.0, -1.0], intercept=0.5, n=300, rng=0)
        model = LinearRegressionBaseline().fit(ds)
        assert model.intercept_ == pytest.approx(0.5, abs=1e-9)
        assert model.coefficients_ == pytest.approx([2.0, -1.0], abs=1e-9)

    def test_ridge_shrinks(self):
        ds = linear_dataset([2.0], n=100, rng=0)
        plain = LinearRegressionBaseline().fit(ds)
        ridged = LinearRegressionBaseline(ridge=100.0).fit(ds)
        assert abs(ridged.coefficients_[0]) < abs(plain.coefficients_[0])

    def test_describe(self):
        ds = linear_dataset([2.0], n=100, rng=0)
        model = LinearRegressionBaseline().fit(ds)
        assert "X1" in model.describe()

    def test_invalid_ridge(self):
        with pytest.raises(ConfigError):
            LinearRegressionBaseline(ridge=-1.0)


class TestRegressionTree:
    def test_step_function_exact(self):
        ds = step_dataset(threshold=0.5, low_value=0.0, high_value=4.0, n=400, rng=0)
        model = RegressionTree(min_instances=20).fit(ds)
        predictions = model.predict(ds.X)
        assert evaluate_predictions(ds.y, predictions).correlation > 0.99

    def test_piecewise_constant_output(self):
        ds = figure1_dataset(n=600, rng=0)
        model = RegressionTree(min_instances=30).fit(ds)
        assert len(np.unique(model.predict(ds.X))) == model.n_leaves

    def test_worse_than_m5_on_piecewise_linear(self, figure1_data, figure1_tree):
        cart = RegressionTree(min_instances=40).fit(figure1_data)
        cart_result = evaluate_predictions(
            figure1_data.y, cart.predict(figure1_data.X)
        )
        m5_result = evaluate_predictions(
            figure1_data.y, figure1_tree.predict(figure1_data.X)
        )
        assert m5_result.rae < cart_result.rae

    def test_pruning_shrinks(self):
        ds = linear_dataset([1.0], n=300, noise_sd=0.5, rng=0)
        pruned = RegressionTree(min_instances=10, prune=True).fit(ds)
        unpruned = RegressionTree(min_instances=10, prune=False).fit(ds)
        assert pruned.n_leaves <= unpruned.n_leaves

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            RegressionTree(min_instances=0)
        with pytest.raises(ConfigError):
            RegressionTree(sd_fraction=2.0)


class TestKNN:
    def test_exact_on_training_points_k1(self):
        ds = figure1_dataset(n=200, rng=0)
        model = KNNRegressor(k=1).fit(ds)
        assert np.allclose(model.predict(ds.X), ds.y)

    def test_smooth_function_approximated(self):
        ds = interaction_dataset(n=800, rng=0)
        model = KNNRegressor(k=5).fit(ds)
        result = evaluate_predictions(ds.y, model.predict(ds.X))
        assert result.correlation > 0.97

    def test_k_larger_than_train_clamped(self):
        ds = linear_dataset([1.0], n=5, rng=0)
        model = KNNRegressor(k=50).fit(ds)
        assert model.predict(ds.X[:1])[0] == pytest.approx(float(np.mean(ds.y)))

    def test_weighted_variant(self):
        ds = interaction_dataset(n=400, rng=0)
        model = KNNRegressor(k=5, weighted=True).fit(ds)
        result = evaluate_predictions(ds.y, model.predict(ds.X))
        assert result.correlation > 0.97

    def test_invalid_k(self):
        with pytest.raises(ConfigError):
            KNNRegressor(k=0)


class TestMLP:
    def test_learns_linear_function(self):
        ds = linear_dataset([2.0, -1.0], intercept=1.0, n=400, rng=0)
        model = MLPRegressor(hidden=(16,), epochs=200, seed=0).fit(ds)
        result = evaluate_predictions(ds.y, model.predict(ds.X))
        assert result.correlation > 0.99

    def test_learns_interaction(self):
        ds = interaction_dataset(n=600, rng=0)
        model = MLPRegressor(hidden=(32, 16), epochs=300, seed=0).fit(ds)
        result = evaluate_predictions(ds.y, model.predict(ds.X))
        assert result.correlation > 0.98

    def test_deterministic_given_seed(self):
        ds = linear_dataset([1.0], n=100, rng=0)
        a = MLPRegressor(epochs=20, seed=5).fit(ds).predict(ds.X)
        b = MLPRegressor(epochs=20, seed=5).fit(ds).predict(ds.X)
        assert np.array_equal(a, b)

    def test_relu_variant(self):
        ds = linear_dataset([1.0], n=200, rng=0)
        model = MLPRegressor(activation="relu", epochs=100, seed=0).fit(ds)
        result = evaluate_predictions(ds.y, model.predict(ds.X))
        assert result.correlation > 0.95

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            MLPRegressor(hidden=())
        with pytest.raises(ConfigError):
            MLPRegressor(activation="sigmoid")
        with pytest.raises(ConfigError):
            MLPRegressor(epochs=0)
        with pytest.raises(ConfigError):
            MLPRegressor(learning_rate=0.0)


class TestSVR:
    def test_fits_linear_function(self):
        ds = linear_dataset([2.0], intercept=1.0, n=300, rng=0)
        model = EpsilonSVR(C=10.0, epsilon=0.01, seed=0).fit(ds)
        result = evaluate_predictions(ds.y, model.predict(ds.X))
        assert result.correlation > 0.99

    def test_fits_interaction(self):
        ds = interaction_dataset(n=500, rng=0)
        model = EpsilonSVR(C=10.0, epsilon=0.01, seed=0).fit(ds)
        result = evaluate_predictions(ds.y, model.predict(ds.X))
        assert result.correlation > 0.98

    def test_epsilon_tube_sparsifies(self):
        ds = linear_dataset([1.0], n=200, noise_sd=0.01, rng=0)
        tight = EpsilonSVR(epsilon=0.001, seed=0).fit(ds)
        loose = EpsilonSVR(epsilon=0.3, seed=0).fit(ds)
        assert loose.n_support_ < tight.n_support_

    def test_subsampling_cap(self):
        ds = linear_dataset([1.0], n=500, rng=0)
        model = EpsilonSVR(max_train=100, seed=0).fit(ds)
        assert model._support.shape[0] == 100

    def test_explicit_gamma(self):
        ds = linear_dataset([1.0], n=100, rng=0)
        model = EpsilonSVR(gamma=0.5, seed=0).fit(ds)
        assert model._gamma_value == 0.5

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            EpsilonSVR(C=0)
        with pytest.raises(ConfigError):
            EpsilonSVR(epsilon=-1)
        with pytest.raises(ConfigError):
            EpsilonSVR(gamma="auto")
        with pytest.raises(ConfigError):
            EpsilonSVR(gamma=-1.0)


class TestNaive:
    def test_penalty_table_covers_stall_metrics(self):
        table = default_penalty_table()
        assert table["L2M"] > 100
        assert table["BrMisPr"] > 0
        assert table["InstLd"] == 0.0

    def test_prediction_formula(self, suite_dataset):
        model = NaiveFixedPenaltyModel(base_cpi=0.3).fit(suite_dataset)
        weights = np.array(
            [default_penalty_table().get(a, 0.0) for a in suite_dataset.attributes]
        )
        expected = 0.3 + suite_dataset.X @ weights
        assert np.allclose(model.predict(suite_dataset.X), expected)

    def test_fitted_base(self, suite_dataset):
        model = NaiveFixedPenaltyModel().fit(suite_dataset)
        residual = suite_dataset.y - (
            model.predict(suite_dataset.X) - model.fitted_base_cpi
        )
        assert model.fitted_base_cpi == pytest.approx(float(residual.mean()))

    def test_overestimates_overlapped_sections(self, suite_dataset):
        """The paper's core claim: fixed penalties ignore overlap."""
        model = NaiveFixedPenaltyModel(base_cpi=0.3).fit(suite_dataset)
        predictions = model.predict(suite_dataset.X)
        mask = suite_dataset.meta["workload"] == "libq_like"
        bias = float(np.mean(predictions[mask] - suite_dataset.y[mask]))
        assert bias > 0

    def test_custom_penalties(self, suite_dataset):
        model = NaiveFixedPenaltyModel(penalties={"L2M": 100.0}, base_cpi=0.0)
        model.fit(suite_dataset)
        expected = 100.0 * suite_dataset.column("L2M")
        assert np.allclose(model.predict(suite_dataset.X), expected)

    def test_unknown_penalty_name_rejected(self, suite_dataset):
        model = NaiveFixedPenaltyModel(penalties={"NotAnEvent": 1.0})
        with pytest.raises(DataError):
            model.fit(suite_dataset)

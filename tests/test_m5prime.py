"""Tests for the M5Prime estimator end to end."""

import numpy as np
import pytest

from repro.core.tree import M5Prime
from repro.datasets import Dataset
from repro.datasets.synthetic import (
    constant_dataset,
    interaction_dataset,
    linear_dataset,
)
from repro.errors import DataError, NotFittedError
from repro.evaluation import evaluate_predictions


class TestFitApi:
    def test_fit_from_dataset(self, figure1_data, figure1_tree):
        assert figure1_tree.attributes_ == figure1_data.attributes
        assert figure1_tree.target_name_ == "Y"

    def test_fit_from_arrays(self):
        ds = linear_dataset([1.0, 2.0], n=100, rng=0)
        model = M5Prime().fit(ds.X, ds.y, attribute_names=["p", "q"])
        assert model.attributes_ == ("p", "q")

    def test_fit_from_arrays_default_names(self):
        ds = linear_dataset([1.0], n=100, rng=0)
        model = M5Prime().fit(ds.X, ds.y)
        assert model.attributes_ == ("X1",)

    def test_dataset_plus_y_rejected(self, figure1_data):
        with pytest.raises(DataError):
            M5Prime().fit(figure1_data, figure1_data.y)

    def test_missing_y_rejected(self):
        with pytest.raises(DataError):
            M5Prime().fit(np.zeros((5, 2)))

    def test_fit_returns_self(self):
        ds = linear_dataset([1.0], n=50, rng=0)
        model = M5Prime()
        assert model.fit(ds) is model


class TestNotFitted:
    def test_predict_requires_fit(self):
        with pytest.raises(NotFittedError):
            M5Prime().predict(np.zeros((1, 2)))

    def test_properties_require_fit(self):
        with pytest.raises(NotFittedError):
            _ = M5Prime().n_leaves
        with pytest.raises(NotFittedError):
            M5Prime().to_text()


class TestAccuracy:
    def test_figure1_structure_recovered(self, figure1_tree):
        assert 3 <= figure1_tree.n_leaves <= 7
        assert figure1_tree.root_.attribute_name == "X1"

    def test_figure1_high_accuracy(self, figure1_data, figure1_tree):
        result = evaluate_predictions(
            figure1_data.y, figure1_tree.predict(figure1_data.X)
        )
        assert result.correlation > 0.99
        assert result.rae < 0.08

    def test_interaction_beats_constant_model(self):
        ds = interaction_dataset(n=1500, noise_sd=0.01, rng=0)
        model = M5Prime(min_instances=40).fit(ds)
        result = evaluate_predictions(ds.y, model.predict(ds.X))
        assert result.rae < 0.30  # a mean predictor would be 1.0

    def test_constant_target_handled(self):
        ds = constant_dataset(value=2.5)
        model = M5Prime().fit(ds)
        assert model.n_leaves == 1
        assert model.predict(ds.X) == pytest.approx(np.full(len(ds), 2.5))

    def test_single_instance(self):
        ds = Dataset([[1.0]], [3.0], ("a",))
        model = M5Prime().fit(ds)
        assert model.predict_one([9.0]) == pytest.approx(3.0)


class TestPrediction:
    def test_width_checked(self, figure1_tree):
        with pytest.raises(DataError):
            figure1_tree.predict(np.zeros((2, 3)))

    def test_predict_one_matches_predict(self, figure1_data, figure1_tree):
        x = figure1_data.X[0]
        assert figure1_tree.predict_one(x) == pytest.approx(
            figure1_tree.predict([x])[0]
        )

    def test_smoothing_changes_predictions(self, figure1_data):
        plain = M5Prime(min_instances=40, smoothing=False).fit(figure1_data)
        smooth = M5Prime(min_instances=40, smoothing=True).fit(figure1_data)
        a = plain.predict(figure1_data.X[:20])
        b = smooth.predict(figure1_data.X[:20])
        assert not np.allclose(a, b)

    def test_smoothing_stays_accurate(self, figure1_data):
        smooth = M5Prime(min_instances=40, smoothing=True).fit(figure1_data)
        result = evaluate_predictions(
            figure1_data.y, smooth.predict(figure1_data.X)
        )
        assert result.correlation > 0.99


class TestClassification:
    def test_leaf_ids_cover_all_leaves(self, figure1_data, figure1_tree):
        ids = figure1_tree.leaf_ids(figure1_data.X)
        assert set(ids) == set(range(1, figure1_tree.n_leaves + 1))

    def test_leaf_for_consistent_with_leaf_ids(self, figure1_data, figure1_tree):
        x = figure1_data.X[7]
        leaf = figure1_tree.leaf_for(x)
        assert leaf.leaf_id == figure1_tree.leaf_ids([x])[0]

    def test_decision_path_ends_at_leaf(self, figure1_data, figure1_tree):
        path = figure1_tree.decision_path(figure1_data.X[0])
        assert path[-1].is_leaf
        assert all(not node.is_leaf for node in path[:-1])

    def test_leaf_models_keyed_by_id(self, figure1_tree):
        models = figure1_tree.leaf_models()
        assert set(models) == set(range(1, figure1_tree.n_leaves + 1))

    def test_wrong_width_instance_rejected(self, figure1_tree):
        with pytest.raises(DataError):
            figure1_tree.leaf_for([1.0, 2.0])


class TestText:
    def test_contains_structure_and_models(self, figure1_tree):
        text = figure1_tree.to_text()
        assert "X1" in text
        assert "LM1" in text
        assert "Y = " in text

    def test_single_leaf_rendering(self):
        ds = constant_dataset()
        model = M5Prime().fit(ds)
        assert "LM1" in model.to_text()

    def test_repr(self, figure1_tree):
        assert "fitted" in repr(figure1_tree)
        assert "unfitted" in repr(M5Prime())


class TestNoPruneOption:
    def test_unpruned_has_at_least_as_many_leaves(self, figure1_data):
        pruned = M5Prime(min_instances=40, prune=True).fit(figure1_data)
        unpruned = M5Prime(min_instances=40, prune=False).fit(figure1_data)
        assert unpruned.n_leaves >= pruned.n_leaves

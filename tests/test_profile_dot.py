"""Tests for dataset profiling and GraphViz export."""

import pytest

from repro.core.tree import M5Prime, render_dot
from repro.datasets import Dataset, profile_dataset
from repro.datasets.synthetic import constant_dataset
from repro.errors import NotFittedError


class TestProfileDataset:
    def test_column_statistics(self):
        ds = Dataset(
            X=[[0.0, 1.0], [1.0, 1.0], [2.0, 1.0], [3.0, 1.0]],
            y=[1.0, 2.0, 3.0, 4.0],
            attributes=("a", "b"),
        )
        profile = profile_dataset(ds)
        column_a = profile.columns[0]
        assert column_a.minimum == 0.0
        assert column_a.maximum == 3.0
        assert column_a.mean == pytest.approx(1.5)
        assert column_a.median == pytest.approx(1.5)
        assert column_a.zero_fraction == pytest.approx(0.25)

    def test_target_profiled(self):
        ds = constant_dataset(value=2.0, n=10)
        profile = profile_dataset(ds)
        assert profile.target.mean == 2.0
        assert profile.target.sd == 0.0

    def test_dead_columns_detected(self):
        ds = Dataset(
            X=[[0.0, 1.0], [0.0, 2.0]], y=[1.0, 2.0], attributes=("dead", "live")
        )
        profile = profile_dataset(ds)
        assert profile.dead_columns() == ["dead"]
        assert "WARNING" in profile.render()

    def test_workload_means(self, suite_dataset):
        profile = profile_dataset(suite_dataset)
        assert "mcf_like" in profile.workload_target_means
        mask = suite_dataset.meta["workload"] == "mcf_like"
        assert profile.workload_target_means["mcf_like"] == pytest.approx(
            float(suite_dataset.y[mask].mean())
        )

    def test_render_contains_table(self, suite_dataset):
        text = profile_dataset(suite_dataset).render()
        assert "column" in text
        assert "L2M" in text
        assert "per-workload mean CPI" in text

    def test_no_meta_no_workload_section(self):
        ds = constant_dataset()
        profile = profile_dataset(ds)
        assert profile.workload_target_means == {}


class TestRenderDot:
    def test_structure(self, figure1_tree):
        dot = render_dot(figure1_tree)
        assert dot.startswith("digraph m5prime {")
        assert dot.rstrip().endswith("}")
        # One box per leaf, one diamond per split.
        assert dot.count("shape=box") == figure1_tree.n_leaves
        n_splits = sum(
            1 for node in figure1_tree.root_.iter_nodes() if not node.is_leaf
        )
        assert dot.count("shape=diamond") == n_splits
        # Two edges per split.
        assert dot.count(" -> ") == 2 * n_splits

    def test_equations_included_and_truncated(self, figure1_tree):
        dot = render_dot(figure1_tree, max_equation_terms=1)
        assert "Y = " in dot

    def test_equations_can_be_omitted(self, figure1_tree):
        dot = render_dot(figure1_tree, include_equations=False)
        assert "Y = " not in dot

    def test_single_leaf(self):
        model = M5Prime().fit(constant_dataset())
        dot = render_dot(model)
        assert dot.count("shape=box") == 1
        assert " -> " not in dot

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            render_dot(M5Prime())

    def test_quotes_escaped(self, figure1_tree):
        # No raw unescaped quotes that would break DOT parsing.
        dot = render_dot(figure1_tree)
        for line in dot.splitlines():
            assert line.count('"') % 2 == 0

"""Property-based tests on the cycle-accounting model's physical invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import CycleAccounting, MachineConfig, SectionEvents

ACCOUNTING = CycleAccounting(MachineConfig())

EVENT_FIELDS = [
    "l1dm", "l2m", "store_l1m", "store_l2m", "l1im", "l2im", "itlbm",
    "dtlb0_ld", "dtlb_walk_ld", "dtlb_walk_st", "mispred",
    "ldbl_sta", "ldbl_std", "ldbl_ov", "misal", "split_ld", "split_st", "lcp",
]


@st.composite
def random_events(draw, n=128):
    rng_seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(rng_seed)
    fields = {}
    mix = rng.dirichlet([3, 1, 1, 4])  # load, store, branch, other
    kinds = rng.choice(4, size=n, p=mix)
    fields["is_load"] = kinds == 0
    fields["is_store"] = kinds == 1
    fields["is_branch"] = kinds == 2
    for name in EVENT_FIELDS:
        rate = draw(st.floats(0.0, 0.3))
        fields[name] = rng.random(n) < rate
    # Keep the event hierarchy consistent: an L2 miss implies an L1 miss,
    # and load events only occur on loads (approximately; the accounting
    # does not require it, but realistic inputs should satisfy it).
    fields["l1dm"] = fields["l1dm"] | fields["l2m"]
    fields["store_l1m"] = fields["store_l1m"] | fields["store_l2m"]
    fields["l1im"] = fields["l1im"] | fields["l2im"]
    ilp = draw(st.floats(0.0, 1.0))
    dep = draw(st.floats(0.0, 1.0))
    return SectionEvents(ilp=ilp, dependent_miss_fraction=dep, **fields)


class TestPhysicalInvariants:
    @settings(max_examples=60, deadline=None)
    @given(random_events())
    def test_all_breakdown_categories_nonnegative(self, events):
        breakdown = ACCOUNTING.account(events)
        for name, value in breakdown.as_dict().items():
            assert value >= -1e-9, f"{name} went negative"

    @settings(max_examples=60, deadline=None)
    @given(random_events())
    def test_total_is_sum_of_categories(self, events):
        breakdown = ACCOUNTING.account(events)
        assert breakdown.total >= 0
        assert breakdown.total == sum(breakdown.as_dict().values())

    @settings(max_examples=60, deadline=None)
    @given(random_events())
    def test_cpi_at_least_issue_width_floor(self, events):
        cpi = ACCOUNTING.cpi(events)
        assert cpi >= 1.0 / ACCOUNTING.config.issue_width - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(random_events())
    def test_more_ilp_never_costs_cycles(self, events):
        import dataclasses

        low = dataclasses.replace(events, ilp=0.1)
        high = dataclasses.replace(events, ilp=0.9)
        assert ACCOUNTING.cycles(high) <= ACCOUNTING.cycles(low) + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(random_events())
    def test_serialized_misses_never_cheaper(self, events):
        import dataclasses

        parallel = dataclasses.replace(events, dependent_miss_fraction=0.0)
        serialized = dataclasses.replace(events, dependent_miss_fraction=1.0)
        assert (
            ACCOUNTING.cycles(serialized) >= ACCOUNTING.cycles(parallel) - 1e-6
        )

    @settings(max_examples=40, deadline=None)
    @given(random_events())
    def test_deterministic(self, events):
        assert ACCOUNTING.cycles(events) == ACCOUNTING.cycles(events)

"""Compat-family lint rules: model-vs-dataset cross checks."""

import numpy as np
import pytest

from repro.core.tree import M5Prime
from repro.core.tree.linear import LinearModel
from repro.core.tree.node import LeafNode, SplitNode, assign_leaf_ids
from repro.lint import Table, lint_compatibility


def lm(intercept=1.0, **kwargs):
    defaults = dict(
        indices=(), names=(), coefficients=(), n_training=10,
        training_error=0.1,
    )
    defaults.update(kwargs)
    return LinearModel(intercept=intercept, **defaults)


def two_leaf_model(threshold=5.0, ranges=((0.0, 10.0), (0.0, 10.0))):
    left, right = LeafNode(10, 0.1, 1.0), LeafNode(10, 0.1, 2.0)
    left.model = lm(1.0)
    right.model = lm(2.0)
    root = SplitNode(20, 0.2, 1.5, 0, "f0", threshold, left, right)
    root.model = lm(1.5)
    assign_leaf_ids(root)
    model = M5Prime(min_instances=2)
    model.root_ = root
    model.attributes_ = ("f0", "f1")
    model.target_name_ = "CPI"
    model.feature_ranges_ = ranges
    return model


def table(names, X, y, target_name="CPI"):
    return Table(
        attributes=tuple(names),
        X=np.asarray(X, dtype=float),
        y=np.asarray(y, dtype=float),
        target_name=target_name,
    )


@pytest.fixture
def model():
    return two_leaf_model()


@pytest.fixture
def matched_table():
    return table(
        ("f0", "f1"),
        [[2.0, 1.0], [8.0, 3.0], [4.0, 9.0], [7.0, 5.0]],
        [1.0, 2.0, 1.1, 2.2],
    )


class TestCleanCompat:
    def test_matched_pair_lints_clean(self, model, matched_table):
        report = lint_compatibility(model, matched_table)
        assert report.is_clean, [d.render() for d in report.diagnostics]
        assert report.families == ("compat",)

    def test_real_model_and_dataset(self, suite_tree, suite_dataset):
        assert lint_compatibility(suite_tree, suite_dataset).is_clean


class TestCompat001Attributes:
    def test_missing_attribute(self, model):
        t = table(("f0",), [[1.0], [2.0]], [1.0, 2.0])
        found = lint_compatibility(model, t).by_rule("COMPAT001")
        assert found and "lacks attribute(s)" in found[0].message
        assert "f1" in found[0].message

    def test_extra_attribute(self, model):
        t = table(
            ("f0", "f1", "f2"),
            [[1.0, 2.0, 3.0], [2.0, 3.0, 4.0]],
            [1.0, 2.0],
        )
        found = lint_compatibility(model, t).by_rule("COMPAT001")
        assert found and "unknown to the model" in found[0].message

    def test_reordered_attributes(self, model):
        t = table(("f1", "f0"), [[1.0, 2.0], [2.0, 3.0]], [1.0, 2.0])
        found = lint_compatibility(model, t).by_rule("COMPAT001")
        assert found and "different order" in found[0].message


class TestCompat002Target:
    def test_target_name_mismatch(self, model):
        t = table(("f0", "f1"), [[2.0, 1.0], [8.0, 3.0]], [1.0, 2.0],
                  target_name="IPC")
        found = lint_compatibility(model, t).by_rule("COMPAT002")
        assert found and "'IPC'" in found[0].message and "'CPI'" in found[0].message


class TestCompat003TrainedRange:
    def test_values_far_outside_training_range(self, model):
        t = table(
            ("f0", "f1"),
            [[2.0, 1.0], [100.0, 3.0], [4.0, 200.0]],
            [1.0, 2.0, 1.5],
        )
        found = lint_compatibility(model, t).by_rule("COMPAT003")
        locations = [d.location for d in found]
        assert "column f0" in locations
        assert "column f1" in locations

    def test_slack_tolerates_mild_extrapolation(self, model):
        # 10.5 is within the 10% slack over the [0, 10] training range
        t = table(("f0", "f1"), [[10.5, 1.0], [2.0, 3.0]], [1.0, 2.0])
        assert not lint_compatibility(model, t).by_rule("COMPAT003")

    def test_skipped_when_attributes_mismatch(self, model):
        t = table(("zz",), [[1e9], [2e9]], [1.0, 2.0])
        assert not lint_compatibility(model, t).by_rule("COMPAT003")


class TestCompat004LeafConcentration:
    def test_all_rows_one_leaf(self, model):
        t = table(
            ("f0", "f1"),
            [[8.0, 1.0], [9.0, 3.0], [7.0, 2.0]],
            [2.0, 2.1, 1.9],
        )
        found = lint_compatibility(model, t).by_rule("COMPAT004")
        assert found and "route to leaf LM2" in found[0].message

    def test_spread_rows_clean(self, model, matched_table):
        assert not lint_compatibility(model, matched_table).by_rule("COMPAT004")


class TestCompat005FinitePredictions:
    def test_infinite_leaf_prediction(self, matched_table):
        model = two_leaf_model()
        model.root_.left.model = lm(float("inf"))
        found = lint_compatibility(model, matched_table).by_rule("COMPAT005")
        assert found and "non-finite prediction(s)" in found[0].message

    def test_skipped_on_non_finite_input(self, model):
        # NaN inputs are DATA001's finding, not a compat crash
        t = table(
            ("f0", "f1"),
            [[float("nan"), 1.0], [2.0, 3.0]],
            [1.0, 2.0],
        )
        report = lint_compatibility(model, t)
        assert not report.by_rule("COMPAT005")

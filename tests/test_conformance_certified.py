"""CONF007: certified bounds must hold empirically on every corpus model."""

import dataclasses

import repro.conformance.certified as certified_module
from repro.conformance import run_certified
from repro.verify import verify_model
from repro.verify.runner import VerificationResult


class TestCleanRun:
    def test_quick_corpus_sample_is_conformant(self):
        report = run_certified(max_cases=2, rows=500)
        assert report.n_cases == 2
        assert report.n_checks == 4  # verify + containment per case
        assert report.diagnostics == []
        assert report.exit_code() == 0

    def test_report_metadata(self):
        report = run_certified(seed=11, tier="quick", max_cases=1, rows=200)
        assert report.tier == "quick"
        assert report.seed == 11


class TestForcedViolations:
    def test_shrunken_certificate_is_caught(self, monkeypatch):
        # Squeeze every certified interval to a point: almost every
        # prediction now "escapes", and the harness must say so.
        def lying_verify(model):
            result = verify_model(model)
            assert result.certificate is not None
            squeezed = tuple(
                dataclasses.replace(leaf, output=(0.0, 0.0))
                for leaf in result.certificate.leaves
            )
            certificate = dataclasses.replace(
                result.certificate, leaves=squeezed, output=(0.0, 0.0)
            )
            return dataclasses.replace(result, certificate=certificate)

        monkeypatch.setattr(certified_module, "verify_model", lying_verify)
        report = run_certified(max_cases=1, rows=200)
        assert report.exit_code() == 2
        finding = report.diagnostics[0]
        assert finding.rule_id == "CONF007"
        assert "escaped" in finding.message

    def test_missing_certificate_is_caught(self, monkeypatch):
        def certless_verify(model):
            return dataclasses.replace(
                verify_model(model), certificate=None
            )

        monkeypatch.setattr(certified_module, "verify_model", certless_verify)
        report = run_certified(max_cases=1, rows=200)
        assert report.exit_code() == 2
        assert "no certificate" in report.diagnostics[0].message


def test_result_is_a_plain_dataclass():
    # The monkeypatch tests above lean on dataclasses.replace; fail
    # loudly here if VerificationResult ever stops supporting it.
    assert dataclasses.is_dataclass(VerificationResult)

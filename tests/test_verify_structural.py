"""Layer 1 of the static verifier: arena/graph/leaf-id/finiteness rules.

Each test seeds one concrete corruption into a deep copy of a real
compiled arena and asserts the *named* rule catches it — the mutation
half of the acceptance contract (the clean half is that production
arenas produce no findings at all).
"""

import copy
import dataclasses

import numpy as np
import pytest

from repro.lint.diagnostics import Severity
from repro.verify import reachable_nodes, verify_structure


@pytest.fixture
def arena(suite_tree):
    """A mutable deep copy of a production-fitted compiled arena."""
    return copy.deepcopy(suite_tree.compiled_)


def _ids(diagnostics):
    return {d.rule_id for d in diagnostics}


def _error_ids(diagnostics):
    return {d.rule_id for d in diagnostics if d.severity is Severity.ERROR}


def _first_split(arena):
    return int(np.flatnonzero(arena.feature >= 0)[0])


def _leaf_nodes(arena):
    return np.flatnonzero(arena.feature < 0)


class TestCleanArena:
    def test_production_arena_has_no_findings(self, suite_tree):
        assert verify_structure(suite_tree.compiled_) == []

    def test_smoothed_model_arena_clean(self, suite_dataset):
        from repro.core.tree import M5Prime

        model = M5Prime(min_instances=12, smoothing=True).fit(suite_dataset)
        assert verify_structure(model.compiled_) == []

    def test_reachable_nodes_covers_everything(self, suite_tree):
        compiled = suite_tree.compiled_
        assert reachable_nodes(compiled) == set(range(compiled.n_nodes))


class TestArenaWellFormedness:
    def test_out_of_bounds_child_index(self, arena):
        arena.left[_first_split(arena)] = arena.n_nodes + 40
        assert "VERIFY001" in _error_ids(verify_structure(arena))

    def test_self_loop_child(self, arena):
        split = _first_split(arena)
        arena.left[split] = split
        assert "VERIFY001" in _error_ids(verify_structure(arena))

    def test_broken_term_offset_ramp(self, arena):
        arena.term_offset[1] = arena.term_offset[2] + 1
        assert "VERIFY001" in _error_ids(verify_structure(arena))

    def test_understated_max_depth(self, arena):
        shallow = dataclasses.replace(arena, max_depth=0)
        findings = verify_structure(shallow)
        assert "VERIFY001" in _error_ids(findings)
        assert any("max_depth" in d.message for d in findings)

    def test_leaf_with_child_pointer(self, arena):
        leaf = int(_leaf_nodes(arena)[0])
        arena.left[leaf] = 0
        assert "VERIFY001" in _error_ids(verify_structure(arena))

    def test_term_feature_out_of_range(self, arena):
        if arena.term_feature.shape[0] == 0:
            pytest.skip("arena has no model terms")
        arena.term_feature[0] = arena.n_features + 3
        assert "VERIFY001" in _error_ids(verify_structure(arena))


class TestGraphShape:
    def test_orphaned_subtree(self, arena):
        # Cutting one child edge strands that whole subtree.
        arena.left[_first_split(arena)] = -1
        assert "VERIFY002" in _error_ids(verify_structure(arena))

    def test_node_with_two_parents(self, arena):
        split = _first_split(arena)
        arena.left[split] = int(arena.right[split])
        assert "VERIFY002" in _error_ids(verify_structure(arena))


class TestLeafIds:
    def test_duplicate_leaf_ids(self, arena):
        leaves = _leaf_nodes(arena)
        assert leaves.shape[0] >= 2
        arena.leaf_id[leaves[1]] = arena.leaf_id[leaves[0]]
        assert "VERIFY003" in _error_ids(verify_structure(arena))

    def test_interior_node_with_leaf_id(self, arena):
        arena.leaf_id[_first_split(arena)] = 1
        assert "VERIFY003" in _error_ids(verify_structure(arena))


class TestFiniteness:
    def test_nan_threshold(self, arena):
        arena.threshold[_first_split(arena)] = np.nan
        findings = verify_structure(arena)
        assert "VERIFY004" in _error_ids(findings)

    def test_nonfinite_coefficient(self, arena):
        if arena.term_coefficient.shape[0] == 0:
            pytest.skip("arena has no model terms")
        arena.term_coefficient[0] = np.inf
        assert "VERIFY004" in _error_ids(verify_structure(arena))

    def test_negative_population_is_error(self, arena):
        arena.n_instances[int(_leaf_nodes(arena)[0])] = -3
        assert "VERIFY004" in _error_ids(verify_structure(arena))

    def test_zero_population_leaf_is_warning(self, arena):
        arena.n_instances[int(_leaf_nodes(arena)[0])] = 0
        findings = verify_structure(arena)
        assert "VERIFY004" in _ids(findings)
        assert "VERIFY004" not in _error_ids(findings)

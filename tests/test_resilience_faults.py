"""The deterministic fault-injection harness (REPRO_FAULTS)."""

import pytest

from repro.errors import ConfigError, FaultInjected, ReproError
from repro.resilience.faults import (
    FAULTS_ENV,
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    active_plan,
    maybe_inject,
    reset_faults,
)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """Isolate every test from ambient REPRO_FAULTS and cached plans."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    reset_faults()
    yield
    reset_faults()


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_full_grammar(self):
        spec = FaultSpec.parse("sim:0.2, cache_read:0.1, seed=7")
        assert spec.rates == {"sim": 0.2, "cache_read": 0.1}
        assert spec.seed == 7

    def test_seed_defaults_to_zero(self):
        assert FaultSpec.parse("fold:1.0").seed == 0

    @pytest.mark.parametrize("text,match", [
        ("warp_core:0.5", "unknown fault site"),
        ("sim:1.5", r"\[0, 1\]"),
        ("sim:-0.1", r"\[0, 1\]"),
        ("sim:often", "must be a number"),
        ("sim", "expected site:rate"),
        ("seed=7", "names no sites"),
        ("", "names no sites"),
        ("sim:0.5,seed=many", "must be an integer"),
    ])
    def test_parse_rejects(self, text, match):
        with pytest.raises(ConfigError, match=match):
            FaultSpec.parse(text)

    def test_describe_lists_rates_and_sites(self):
        text = FaultSpec.parse("sim:0.25,seed=3").describe()
        assert "seed 3" in text
        assert "sim" in text
        assert "25.0%" in text

    def test_known_sites_have_descriptions(self):
        for site, description in KNOWN_SITES.items():
            assert site and description


# ---------------------------------------------------------------------------
# Deterministic decisions
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_identical_plans_make_identical_decisions(self):
        spec = FaultSpec.parse("sim:0.5,seed=13")
        sequence_a = [FaultPlan(spec).should_fail("sim", f"wl-{i}")
                      for i in range(64)]
        plan_b = FaultPlan(spec)
        sequence_b = [plan_b.should_fail("sim", f"wl-{i}") for i in range(64)]
        assert sequence_a == sequence_b
        assert any(sequence_a) and not all(sequence_a)

    def test_rate_zero_never_fails_rate_one_always(self):
        plan = FaultPlan(FaultSpec.parse("sim:1.0,fold:0.0"))
        assert all(plan.should_fail("sim", f"k{i}") for i in range(16))
        assert not any(plan.should_fail("fold", f"k{i}") for i in range(16))

    def test_unlisted_site_never_fails(self):
        plan = FaultPlan(FaultSpec.parse("sim:1.0"))
        assert not plan.should_fail("cache_read", "k")

    def test_occurrences_are_independent_decisions(self):
        # With a 50% rate, repeated occurrences of one key must not all
        # agree — this is what lets retries clear injected faults.
        plan = FaultPlan(FaultSpec.parse("sim:0.5,seed=2"))
        decisions = [plan.should_fail("sim", "wl-gcc") for _ in range(64)]
        assert plan.occurrence("sim", "wl-gcc") == 64
        assert any(decisions) and not all(decisions)

    def test_inject_raises_with_identity(self):
        plan = FaultPlan(FaultSpec.parse("sim:1.0"))
        with pytest.raises(FaultInjected) as excinfo:
            plan.inject("sim", "wl-gcc")
        error = excinfo.value
        assert error.site == "sim"
        assert error.key == "wl-gcc"
        assert error.occurrence == 1
        assert isinstance(error, ReproError)


# ---------------------------------------------------------------------------
# Environment activation
# ---------------------------------------------------------------------------
class TestActivation:
    def test_inactive_without_env(self):
        assert active_plan() is None
        maybe_inject("sim", "anything")  # no-op, must not raise

    def test_plan_cached_per_env_value(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "sim:1.0,seed=1")
        first = active_plan()
        assert first is not None
        assert active_plan() is first  # counters persist across calls
        monkeypatch.setenv(FAULTS_ENV, "sim:1.0,seed=2")
        assert active_plan() is not first

    def test_maybe_inject_fires_under_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "cache_read:1.0")
        with pytest.raises(FaultInjected):
            maybe_inject("cache_read", "entry")

    def test_reset_faults_drops_counters(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "sim:0.5,seed=4")
        plan = active_plan()
        plan.should_fail("sim", "k")
        assert plan.occurrence("sim", "k") == 1
        reset_faults()
        fresh = active_plan()
        assert fresh is not plan
        assert fresh.occurrence("sim", "k") == 0

    def test_bad_env_spec_raises_config_error(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "nonsense")
        with pytest.raises(ConfigError):
            active_plan()

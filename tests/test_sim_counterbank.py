"""Tests for the CounterBank (simulated PMU registers)."""

import pytest

from repro.errors import DataError
from repro.simulator import CounterBank


class TestCounterBank:
    def test_starts_at_zero(self):
        bank = CounterBank()
        assert bank.value("L1I_MISSES") == 0.0

    def test_add(self):
        bank = CounterBank()
        bank.add("L1I_MISSES")
        bank.add("L1I_MISSES", 2.0)
        assert bank["L1I_MISSES"] == 3.0

    def test_add_many(self):
        bank = CounterBank()
        bank.add_many({"L1I_MISSES": 2.0, "ILD_STALL": 1.0})
        assert bank["ILD_STALL"] == 1.0

    def test_unknown_event_rejected(self):
        bank = CounterBank()
        with pytest.raises(DataError):
            bank.add("NOT_AN_EVENT")
        with pytest.raises(DataError):
            bank.value("NOT_AN_EVENT")

    def test_negative_increment_rejected(self):
        bank = CounterBank()
        with pytest.raises(DataError):
            bank.add("L1I_MISSES", -1.0)

    def test_snapshot_is_a_copy(self):
        bank = CounterBank()
        snap = bank.snapshot()
        bank.add("L1I_MISSES")
        assert snap["L1I_MISSES"] == 0.0

    def test_delta_since(self):
        bank = CounterBank()
        bank.add("L1I_MISSES", 5.0)
        snap = bank.snapshot()
        bank.add("L1I_MISSES", 3.0)
        assert bank.delta_since(snap)["L1I_MISSES"] == 3.0

    def test_reset(self):
        bank = CounterBank()
        bank.add("L1I_MISSES", 5.0)
        bank.reset()
        assert bank["L1I_MISSES"] == 0.0

    def test_iterates_all_events(self):
        from repro.counters import ALL_EVENTS

        assert set(CounterBank()) == {e.name for e in ALL_EVENTS}

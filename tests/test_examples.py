"""Smoke checks on the example scripts.

Examples simulate full suites and are too slow for unit tests; these
checks only verify they parse, import their dependencies correctly, and
expose a ``main`` entry point.  The examples are executed for real in
the final verification pass (see README / EXPERIMENTS).
"""

import ast
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
class TestExampleScripts:
    def test_parses(self, path):
        tree = ast.parse(path.read_text(), filename=str(path))
        assert tree.body, f"{path.name} is empty"

    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert isinstance(tree.body[0], ast.Expr), f"{path.name} lacks a docstring"

    def test_defines_main_and_guard(self, path):
        source = path.read_text()
        assert "def main()" in source
        assert '__name__ == "__main__"' in source

    def test_imports_resolve(self, path):
        """Compile and execute only the import statements."""
        tree = ast.parse(path.read_text())
        imports = [
            node
            for node in tree.body
            if isinstance(node, (ast.Import, ast.ImportFrom))
        ]
        module = ast.Module(body=imports, type_ignores=[])
        code = compile(module, str(path), "exec")
        exec(code, {})  # noqa: S102 - our own example files


def test_expected_example_set():
    names = {path.stem for path in EXAMPLES}
    assert names == {
        "quickstart",
        "analyze_mcf_like",
        "compare_learners",
        "custom_workload",
        "phase_explorer",
        "serve_and_score",
        "what_if_analysis",
    }

"""Property-based round-trip tests for serialization layers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.tree import M5Prime, model_from_dict, model_to_dict
from repro.datasets import Dataset
from repro.datasets.arff import dumps_arff, loads_arff
from repro.datasets.csvio import load_csv, save_csv

# Values that survive repr() round trips and keep learners numerically sane.
values = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False, width=64)


@st.composite
def datasets(draw, max_rows=25, max_cols=4):
    n = draw(st.integers(1, max_rows))
    p = draw(st.integers(1, max_cols))
    X = draw(hnp.arrays(np.float64, (n, p), elements=values))
    y = draw(hnp.arrays(np.float64, (n,), elements=values))
    names = tuple(f"attr{i}" for i in range(p))
    return Dataset(X, y, names, target_name="T")


class TestArffRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(datasets())
    def test_exact_round_trip(self, dataset):
        loaded = loads_arff(dumps_arff(dataset))
        assert loaded.attributes == dataset.attributes
        assert loaded.target_name == dataset.target_name
        assert np.array_equal(loaded.X, dataset.X)
        assert np.array_equal(loaded.y, dataset.y)


class TestCsvRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(datasets())
    def test_exact_round_trip(self, dataset):
        import os
        import tempfile

        handle, path = tempfile.mkstemp(suffix=".csv")
        os.close(handle)
        try:
            save_csv(dataset, path)
            loaded = load_csv(path)
        finally:
            os.unlink(path)
        assert loaded.attributes == dataset.attributes
        assert np.array_equal(loaded.X, dataset.X)
        assert np.array_equal(loaded.y, dataset.y)


class TestModelRoundTrip:
    @settings(max_examples=15, deadline=None)
    @given(datasets(max_rows=40, max_cols=3), st.integers(2, 8))
    def test_predictions_survive_serialization(self, dataset, min_instances):
        if np.std(dataset.y) == 0:
            return
        model = M5Prime(min_instances=min_instances).fit(dataset)
        restored = model_from_dict(model_to_dict(model))
        assert np.allclose(
            model.predict(dataset.X), restored.predict(dataset.X)
        )
        assert restored.n_leaves == model.n_leaves

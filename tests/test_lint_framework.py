"""Lint framework: registry, reports, reporters, loading, properties."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import M5Prime, load_model, save_model
from repro.counters.invariants import (
    METRIC_INVARIANTS,
    RAW_COUNT_INVARIANTS,
    applicable_invariants,
    check_dataset,
)
from repro.errors import LintError, ParseError
from repro.lint import (
    ALL_FAMILIES,
    Diagnostic,
    LintReport,
    Severity,
    all_rules,
    as_table,
    get_rule,
    lint_model,
    load_table,
    render_json,
    render_text,
    rule,
    run_lint,
)


class TestRegistry:
    def test_all_three_families_present(self):
        families = {r.family for r in all_rules()}
        assert families == set(ALL_FAMILIES)

    def test_rule_ids_are_stable_and_unique(self):
        ids = [r.rule_id for r in all_rules()]
        assert len(ids) == len(set(ids))
        assert {"TREE001", "DATA001", "COMPAT001"} <= set(ids)
        assert len(ids) >= 20

    def test_get_rule(self):
        assert get_rule("TREE002").severity is Severity.ERROR
        with pytest.raises(LintError):
            get_rule("NOPE999")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(LintError):
            @rule("TREE001", "tree", Severity.ERROR, "imposter")
            def imposter(ctx):
                return ()


class TestRunLintGuards:
    def test_no_inputs_rejected(self):
        with pytest.raises(LintError):
            run_lint()

    def test_unfitted_model_rejected(self):
        with pytest.raises(LintError):
            run_lint(model=M5Prime())

    def test_unknown_family_rejected(self, figure1_tree):
        with pytest.raises(LintError):
            run_lint(model=figure1_tree, families=("nonsense",))

    def test_family_without_inputs_rejected(self, figure1_tree):
        with pytest.raises(LintError):
            run_lint(model=figure1_tree, families=("dataset",))


class TestReport:
    def _report(self, *severities):
        return LintReport(
            diagnostics=[
                Diagnostic("X001", s, "msg", "loc") for s in severities
            ],
            families=("tree",),
            n_rules=5,
        )

    def test_exit_code_contract(self):
        assert self._report().exit_code() == 0
        assert self._report(Severity.INFO).exit_code(strict=True) == 0
        warn = self._report(Severity.WARNING)
        assert warn.exit_code() == 0
        assert warn.exit_code(strict=True) == 1
        err = self._report(Severity.WARNING, Severity.ERROR)
        assert err.exit_code() == 2
        assert err.exit_code(strict=True) == 2

    def test_counts_and_summary(self):
        report = self._report(Severity.ERROR, Severity.WARNING)
        assert report.n_errors == 1 and report.n_warnings == 1
        assert not report.is_clean
        assert "1 error(s), 1 warning(s)" in report.summary()
        assert "clean" in self._report().summary()


class TestReporters:
    def test_text_rendering(self):
        report = LintReport(
            diagnostics=[
                Diagnostic("TREE002", Severity.ERROR, "dead branch", "leaf LM3")
            ],
            families=("tree",),
            n_rules=9,
        )
        text = render_text(report)
        assert "error" in text and "TREE002" in text and "[leaf LM3]" in text

    def test_json_envelope(self):
        report = LintReport(
            diagnostics=[Diagnostic("DATA001", Severity.ERROR, "nan", "column a")],
            families=("dataset",),
            n_rules=8,
        )
        doc = json.loads(render_json(report))
        assert doc["format"] == "repro-report"
        assert doc["version"] == 1
        assert doc["kind"] == "lint"
        assert doc["n_errors"] == 1
        assert doc["diagnostics"][0]["rule_id"] == "DATA001"
        assert doc["diagnostics"][0]["severity"] == "error"


class TestLoading:
    def _write(self, tmp_path, text):
        path = tmp_path / "data.csv"
        path.write_text(text)
        return path

    def test_unparseable_cells_become_nan(self, tmp_path):
        path = self._write(tmp_path, "a,b,CPI\n1,2,0.5\noops,3,0.7\n")
        t = load_table(path)
        assert t.attributes == ("a", "b")
        assert t.target_name == "CPI"
        assert np.isnan(t.X[1, 0])
        assert t.y[1] == 0.7

    def test_meta_columns_skipped(self, tmp_path):
        path = self._write(
            tmp_path, "#workload,a,CPI\nmcf,1.0,0.5\ngcc,2.0,0.7\n"
        )
        t = load_table(path)
        assert t.attributes == ("a",)
        assert t.n_instances == 2

    def test_structural_errors_raise_with_path(self, tmp_path):
        for text in ("", "only\n", "a,b,CPI\n", "a,b,CPI\n1,2\n"):
            path = self._write(tmp_path, text)
            with pytest.raises(ParseError) as excinfo:
                load_table(path)
            assert str(path) in str(excinfo.value)

    def test_as_table_passthrough_and_view(self, suite_dataset):
        t = as_table(suite_dataset)
        assert as_table(t) is t
        assert t.attributes == tuple(suite_dataset.attributes)
        assert t.n_instances == suite_dataset.n_instances


class TestInvariantTables:
    def test_check_dataset_reports_rows(self):
        columns = {"L1DM": [0.02, 0.01, 0.03], "L2M": [0.01, 0.05, 0.01]}
        violations = check_dataset(
            columns,
            applicable_invariants(METRIC_INVARIANTS, columns),
            check_negative=False,
        )
        assert len(violations) == 1
        assert violations[0].invariant == "metric-l2-exceeds-l1d"
        assert violations[0].rows == (1,)

    def test_negative_check(self):
        violations = check_dataset(
            {"L1DM": [0.02, -0.01]}, METRIC_INVARIANTS
        )
        assert any(v.invariant == "negative-L1DM" for v in violations)

    def test_tolerance_is_scale_aware(self):
        # equality within float noise passes at both count and ratio scales
        assert not check_dataset(
            {
                "MEM_LOAD_RETIRED.L2_LINE_MISS": [1000.0000001],
                "MEM_LOAD_RETIRED.L1D_LINE_MISS": [1000.0],
                "INST_RETIRED.LOADS": [2000.0],
                "INST_RETIRED.ANY": [5000.0],
                "CPU_CLK_UNHALTED.CORE": [6000.0],
            },
            RAW_COUNT_INVARIANTS,
        )
        assert not check_dataset(
            {"L1DM": [1e-7], "L2M": [1e-7 + 1e-15]},
            METRIC_INVARIANTS,
            check_negative=False,
        )

    def test_applicable_invariants_filters(self):
        subset = applicable_invariants(METRIC_INVARIANTS, ["L1DM", "L2M"])
        assert [inv.name for inv in subset] == ["metric-l2-exceeds-l1d"]


class TestFittedTreesLintClean:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=12, max_value=120),
        min_instances=st.integers(min_value=4, max_value=30),
    )
    def test_fit_produces_lint_clean_tree(self, seed, n, min_instances):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0.0, 1.0, size=(n, 3))
        y = (
            0.5
            + 2.0 * X[:, 0]
            + np.where(X[:, 1] > 0.5, 3.0, 0.0)
            + rng.normal(0.0, 0.05, size=n)
        )
        model = M5Prime(min_instances=min_instances).fit(
            X, y, ["f0", "f1", "f2"]
        )
        report = lint_model(model)
        assert report.is_clean, [d.render() for d in report.diagnostics]

    def test_save_load_lint_clean(self, suite_tree, suite_dataset, tmp_path):
        path = tmp_path / "model.json"
        save_model(suite_tree, path)
        loaded = load_model(path)
        assert lint_model(loaded).is_clean
        report = run_lint(model=loaded, dataset=suite_dataset)
        assert report.families == ("tree", "dataset", "compat", "verify")
        assert report.n_errors == 0

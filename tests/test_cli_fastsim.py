"""The ``repro fastsim`` command group, run against a seeded cache.

The tiny-profile calibration is pre-stored under the default-suite
cache key, so ``calibrate`` cache-hits instantly instead of refitting
the full suite; ``check`` and ``predict`` then exercise the staleness
gates end-to-end — the cached artifact genuinely does not cover the
default suite's phases.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.config import CACHE_ENV
from repro.fastsim import store_calibration
from repro.parallel.cache import ArtifactCache


@pytest.fixture()
def seeded_cache(monkeypatch, tmp_path, small_calibration):
    """Point the CLI's cache at tmp and plant the tiny calibration.

    Stored under ``profiles=None`` (the default-suite key, seed 7): the
    exact entry ``repro fastsim --seed 7`` commands look up.
    """
    monkeypatch.setenv(CACHE_ENV, str(tmp_path))
    store_calibration(
        ArtifactCache(tmp_path / "artifacts"), small_calibration,
        profiles=None,
    )
    return tmp_path


class TestCalibrate:
    def test_cache_hit_reports_the_artifact(self, seeded_cache, capsys,
                                            small_calibration):
        assert main(["fastsim", "calibrate", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert small_calibration.digest in out
        assert "phase anchor(s)" in out
        assert "relative error" in out

    def test_json_envelope(self, seeded_cache, capsys, small_calibration):
        assert main([
            "fastsim", "calibrate", "--seed", "7", "--format", "json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["format"] == "repro-report"
        assert document["kind"] == "fastsim-calibrate"
        assert document["digest"] == small_calibration.digest
        assert document["seed"] == 7
        assert document["stats"]["rel_err_p95"] > 0

    def test_out_writes_a_loadable_artifact(self, seeded_cache, tmp_path,
                                            capsys, small_calibration):
        from repro.fastsim import Calibration

        artifact = tmp_path / "calibration.json"
        assert main([
            "fastsim", "calibrate", "--seed", "7", "--out", str(artifact),
        ]) == 0
        restored = Calibration.from_dict(json.loads(artifact.read_text()))
        assert restored.digest == small_calibration.digest

    def test_out_artifact_audited_by_lint(self, seeded_cache, tmp_path,
                                          capsys):
        artifact = tmp_path / "calibration.json"
        main(["fastsim", "calibrate", "--seed", "7", "--out", str(artifact)])
        capsys.readouterr()
        # The tiny fit was stored under the default-suite key but its
        # *content* names the tiny suite: lint flags the mismatch.
        assert main(["lint", "--calibration", str(artifact)]) != 0
        assert "FASTSIM004" in capsys.readouterr().out

    def test_publish_to_registry(self, seeded_cache, tmp_path, capsys):
        registry = tmp_path / "registry"
        assert main([
            "fastsim", "calibrate", "--seed", "7",
            "--publish", "--registry", str(registry),
        ]) == 0
        out = capsys.readouterr().out
        assert "published residual model" in out
        assert "fastsim-residual" in out
        assert any(registry.iterdir())


class TestCheck:
    def test_stale_cached_calibration_fails_fast001(self, seeded_cache,
                                                    capsys):
        # The cached artifact does not cover the default suite: the
        # drift harness must refuse it, not report bogus numbers.
        assert main(["fastsim", "check", "--seed", "7"]) != 0
        assert "FAST001" in capsys.readouterr().out

    def test_json_format(self, seeded_cache, capsys):
        assert main([
            "fastsim", "check", "--seed", "7", "--format", "json",
        ]) != 0
        document = json.loads(capsys.readouterr().out)
        assert "FAST001" in json.dumps(document)


class TestPredict:
    def test_stale_calibration_is_a_cli_error(self, seeded_cache, tmp_path,
                                              capsys):
        assert main([
            "fastsim", "predict", "--seed", "7",
            "--out", str(tmp_path / "fast.csv"),
        ]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "recalibrate" in err or "uncalibrated" in err

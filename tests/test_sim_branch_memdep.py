"""Tests for the branch predictor and the store buffer."""

import pytest

from repro.errors import ConfigError
from repro.simulator import GsharePredictor, StoreBuffer
from repro.simulator.memdep import (
    BLOCK_OVERLAP,
    BLOCK_STA,
    BLOCK_STD,
    NO_BLOCK,
)


class TestGshare:
    def test_learns_always_taken(self):
        predictor = GsharePredictor(8)
        for _ in range(100):
            predictor.access(0x400, True)
        # After warmup, an always-taken branch should be near-perfect.
        predictor.reset()
        for _ in range(50):
            predictor.access(0x400, True)
        late = [predictor.access(0x400, True) for _ in range(50)]
        assert sum(late) >= 49

    def test_learns_alternating_pattern(self):
        predictor = GsharePredictor(10)
        outcomes = [bool(i % 2) for i in range(400)]
        results = [predictor.access(0x400, t) for t in outcomes]
        # Global history makes alternation learnable.
        assert sum(results[200:]) >= 190

    def test_random_branches_mispredict_half(self, rng):
        predictor = GsharePredictor(12)
        outcomes = rng.random(4000) < 0.5
        correct = sum(predictor.access(0x400, bool(t)) for t in outcomes)
        assert 0.4 < correct / 4000 < 0.6

    def test_biased_branch_accuracy_tracks_bias(self, rng):
        predictor = GsharePredictor(12)
        outcomes = rng.random(4000) < 0.9
        correct = sum(predictor.access(0x400, bool(t)) for t in outcomes)
        assert correct / 4000 > 0.75

    def test_stats(self):
        predictor = GsharePredictor(4)
        predictor.access(0, True)
        assert predictor.accesses == 1
        assert predictor.mispredict_rate in (0.0, 1.0)

    def test_reset_clears(self):
        predictor = GsharePredictor(4)
        predictor.access(0, True)
        predictor.reset()
        assert predictor.accesses == 0

    def test_invalid_history_bits(self):
        with pytest.raises(ConfigError):
            GsharePredictor(0)
        with pytest.raises(ConfigError):
            GsharePredictor(30)

    def test_empty_rate_is_zero(self):
        assert GsharePredictor(4).mispredict_rate == 0.0


class TestStoreBuffer:
    def test_no_store_no_block(self):
        buffer = StoreBuffer(8)
        assert buffer.check_load(0x100, 8) == NO_BLOCK

    def test_clean_forwarding_not_blocked(self):
        buffer = StoreBuffer(8)
        buffer.push_store(0x100, 8, sta=False, std=False)
        assert buffer.check_load(0x100, 8) == NO_BLOCK

    def test_sta_blocks(self):
        buffer = StoreBuffer(8)
        buffer.push_store(0x100, 8, sta=True, std=False)
        assert buffer.check_load(0x100, 8) == BLOCK_STA

    def test_std_blocks(self):
        buffer = StoreBuffer(8)
        buffer.push_store(0x100, 8, sta=False, std=True)
        assert buffer.check_load(0x100, 8) == BLOCK_STD

    def test_sta_takes_priority_over_std(self):
        buffer = StoreBuffer(8)
        buffer.push_store(0x100, 8, sta=True, std=True)
        assert buffer.check_load(0x100, 8) == BLOCK_STA

    def test_partial_overlap_blocks(self):
        buffer = StoreBuffer(8)
        buffer.push_store(0x100, 4, sta=False, std=False)
        # Load reads 8 bytes; store covers only the first 4.
        assert buffer.check_load(0x100, 8) == BLOCK_OVERLAP

    def test_store_covering_load_forwards(self):
        buffer = StoreBuffer(8)
        buffer.push_store(0x100, 8, sta=False, std=False)
        assert buffer.check_load(0x104, 4) == NO_BLOCK

    def test_unrelated_address_not_blocked(self):
        buffer = StoreBuffer(8)
        buffer.push_store(0x100, 8, sta=True, std=True)
        assert buffer.check_load(0x900, 8) == NO_BLOCK

    def test_newest_store_wins(self):
        buffer = StoreBuffer(16)
        buffer.push_store(0x100, 8, sta=True, std=False)
        buffer.push_store(0x100, 8, sta=False, std=False)
        assert buffer.check_load(0x100, 8) == NO_BLOCK

    def test_window_expiry(self):
        buffer = StoreBuffer(window=4)
        buffer.push_store(0x100, 8, sta=True, std=False)
        buffer.advance(10)
        assert buffer.check_load(0x100, 8) == NO_BLOCK

    def test_occupancy_tracks_distinct_granules(self):
        buffer = StoreBuffer(32)
        buffer.push_store(0x100, 8, False, False)
        buffer.push_store(0x200, 8, False, False)
        assert buffer.occupancy == 2

    def test_clear(self):
        buffer = StoreBuffer(8)
        buffer.push_store(0x100, 8, sta=True, std=False)
        buffer.clear()
        assert buffer.check_load(0x100, 8) == NO_BLOCK

    def test_wide_store_spans_granules(self):
        buffer = StoreBuffer(8)
        buffer.push_store(0x100, 16, sta=True, std=False)
        assert buffer.check_load(0x108, 8) == BLOCK_STA

"""Golden regression tests for the forest format, arena, and weights.

Two goldens under ``tests/golden/``:

* ``forest_small.json`` — a fitted-and-refined 3-tree forest in the
  full ``repro-forest`` document format (exact float values).
* ``forest_small_arena.json`` — the compiled arena layout (offsets,
  per-node features, leaf columns) and the selected refined weights.

Any change to bootstrap draws, tree growing, arena compilation order,
or the refinement solve shows up here as an exact-value diff.
Regenerate deliberately with::

    PYTHONPATH=src python -c "
    from tests.test_forest_golden import regenerate_goldens; regenerate_goldens()"

and review the diff like any other behaviour change.
"""

import json
from pathlib import Path

import numpy as np

from repro.baselines import BaggedM5
from repro.datasets.synthetic import figure1_dataset
from repro.serve.forest_io import forest_from_dict, forest_to_dict
from repro.serve.refine import RefinedForest
from repro.verify import verify_forest

GOLDEN_DIR = Path(__file__).parent / "golden"


def _golden_forest():
    data = figure1_dataset(n=120, noise_sd=0.05, rng=7)
    forest = BaggedM5(n_estimators=3, min_instances=20, seed=11).fit(data)
    RefinedForest(forest, prune_pct=0.2, n_prunings=2).fit(data)
    return forest, data


def _arena_document(forest) -> dict:
    compiled = forest.compiled_
    refined = forest.refined_
    return {
        "n_trees": compiled.n_trees,
        "n_nodes": compiled.n_nodes,
        "total_leaves": compiled.total_leaves,
        "max_depth": compiled.max_depth,
        "tree_offset": compiled.tree_offset.tolist(),
        "leaf_offset": compiled.leaf_offset.tolist(),
        "feature": compiled.feature.tolist(),
        "leaf_col": compiled.leaf_col.tolist(),
        "leaf_node": compiled.leaf_node.tolist(),
        "term_offset": compiled.term_offset.tolist(),
        "refined": {
            "weights": refined.weights.tolist(),
            "active": [int(flag) for flag in refined.active.tolist()],
            "train_mae": refined.train_mae,
        },
    }


def regenerate_goldens() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    forest, _ = _golden_forest()
    (GOLDEN_DIR / "forest_small.json").write_text(
        json.dumps(forest_to_dict(forest), indent=1, sort_keys=True) + "\n"
    )
    (GOLDEN_DIR / "forest_small_arena.json").write_text(
        json.dumps(_arena_document(forest), indent=1, sort_keys=True) + "\n"
    )


class TestGoldenForest:
    def test_document_matches_golden(self):
        golden = json.loads((GOLDEN_DIR / "forest_small.json").read_text())
        forest, _ = _golden_forest()
        fresh = json.loads(json.dumps(forest_to_dict(forest), sort_keys=True))
        assert fresh == golden

    def test_arena_matches_golden(self):
        golden = json.loads(
            (GOLDEN_DIR / "forest_small_arena.json").read_text()
        )
        forest, _ = _golden_forest()
        fresh = json.loads(json.dumps(_arena_document(forest), sort_keys=True))
        assert fresh == golden

    def test_golden_restores_and_reverifies(self):
        """The stored document loads, verifies clean, and predicts
        bit-identically to a fresh fit."""
        golden = json.loads((GOLDEN_DIR / "forest_small.json").read_text())
        restored = forest_from_dict(golden)
        result = verify_forest(restored)
        assert result.ok, [d.render() for d in result.diagnostics]
        forest, data = _golden_forest()
        assert np.array_equal(
            restored.predict(data.X), forest.predict(data.X)
        )

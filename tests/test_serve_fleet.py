"""The supervised fleet end to end: real forked workers, real sockets.

The chaos cases lean on the deterministic ``REPRO_FAULTS`` sites —
``worker_crash`` (a worker ``os._exit``\\ s mid-request),
``slow_handler`` (a request stalls past its deadline), and
``registry_read`` (worker startup cannot resolve its model) — so every
availability claim here is assertable, not probabilistic.
"""

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import FleetError
from repro.resilience.faults import reset_faults
from repro.serve.fleet import FleetConfig, ServingFleet
from repro.serve.registry import ModelRegistry


@pytest.fixture(scope="module")
def fleet_registry(tmp_path_factory, suite_tree):
    directory = tmp_path_factory.mktemp("fleet-registry")
    registry = ModelRegistry(directory)
    registry.publish("cpi-tree", suite_tree, aliases=["prod"])
    return registry


def make_config(registry, **overrides):
    settings = dict(
        model="cpi-tree@prod",
        workers=2,
        port=0,
        registry_dir=str(registry.directory),
        drain_timeout_s=2.0,
        probe_interval_s=0.2,
        startup_timeout_s=30.0,
    )
    settings.update(overrides)
    return FleetConfig(**settings)


@pytest.fixture(scope="module")
def fleet(fleet_registry):
    serving = ServingFleet(make_config(fleet_registry)).start()
    serving.serve_in_background()
    yield serving
    serving.shutdown()


def call(port, path, payload=None, timeout=15):
    url = f"http://127.0.0.1:{port}{path}"
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(url, data=data)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), \
                json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


class TestFleetConfig:
    def test_round_trips_through_dict(self):
        config = FleetConfig(model="m@latest", workers=3, port=0)
        assert FleetConfig.from_dict(config.to_dict()) == config

    def test_unknown_key_rejected(self):
        with pytest.raises(FleetError, match="unknown fleet config key"):
            FleetConfig.from_dict({"wrokers": 2})

    @pytest.mark.parametrize("overrides", [
        {"workers": 0},
        {"mode": "bogus"},
        {"port": 70000},
        {"mode": "reuseport", "port": 0},
        {"max_inflight": 0},
        {"task_timeout": -1.0},
        {"probe_interval_s": 0.0},
        {"drain_timeout_s": -1.0},
        {"breaker_threshold": 0},
    ])
    def test_validation(self, overrides):
        settings = dict(workers=2)
        settings.update(overrides)
        with pytest.raises(FleetError):
            FleetConfig(**settings)


class TestRouting:
    def test_predictions_bit_identical_to_single_replica(
        self, fleet, suite_tree, suite_dataset
    ):
        rows = suite_dataset.X[:6]
        status, _, document = call(
            fleet.bound_port, "/predict", {"sections": rows.tolist()}
        )
        assert status == 200
        assert document["predictions"] == [
            float(p) for p in suite_tree.predict(rows)
        ]

    def test_requests_spread_over_workers(self, fleet, suite_dataset):
        row = suite_dataset.X[0].tolist()
        for _ in range(4):
            status, _, _ = call(fleet.bound_port, "/predict", {"section": row})
            assert status == 200
        # Round-robin touched both workers (metrics live on the router).
        rendered = fleet.metrics.render()
        assert "repro_router_requests_total" in rendered

    def test_healthz_reports_ok(self, fleet):
        status, _, document = call(fleet.bound_port, "/healthz")
        assert status == 200
        assert document["status"] == "ok"
        assert document["healthy_workers"] == 2

    def test_fleet_status_lists_workers(self, fleet):
        status, _, document = call(fleet.bound_port, "/fleet/status")
        assert status == 200
        assert document["healthy_workers"] == 2
        assert len(document["workers"]) == 2
        for worker in document["workers"]:
            assert worker["healthy"]
            assert worker["pid"] > 0
            assert worker["port"] > 0
        assert any("fleet up" in event for event in document["events"])

    def test_worker_errors_are_relayed_verbatim(self, fleet):
        status, _, document = call(
            fleet.bound_port, "/predict", {"wrong": "shape"}
        )
        assert status == 400
        assert "error" in document

    def test_unknown_path_proxied_to_worker_404(self, fleet):
        status, _, document = call(fleet.bound_port, "/nope")
        assert status == 404
        assert "error" in document


class TestCrashResilience:
    def test_kill_one_worker_mid_traffic_no_client_failures(
        self, fleet, suite_dataset
    ):
        _, _, before = call(fleet.bound_port, "/fleet/status")
        victim_pid = before["workers"][0]["pid"]
        os.kill(victim_pid, signal.SIGKILL)

        row = suite_dataset.X[0].tolist()
        for _ in range(20):
            status, _, document = call(
                fleet.bound_port, "/predict", {"section": row}
            )
            # The SLO: a killed worker costs retries, never failures.
            assert status == 200, document
            time.sleep(0.02)

        deadline = time.time() + 30
        while time.time() < deadline:
            _, _, after = call(fleet.bound_port, "/fleet/status")
            if after["healthy_workers"] == 2:
                break
            time.sleep(0.2)
        assert after["healthy_workers"] == 2
        assert any(w["restarts"] >= 1 for w in after["workers"])


class TestRollout:
    def test_alias_rollout_zero_failed_requests(
        self, fleet, fleet_registry, suite_tree, suite_dataset
    ):
        record = fleet_registry.publish("cpi-tree", suite_tree)
        row = suite_dataset.X[0].tolist()
        failures = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                status, _, document = call(
                    fleet.bound_port, "/predict", {"section": row}
                )
                if status != 200:
                    failures.append((status, document))

        thread = threading.Thread(target=hammer, daemon=True)
        thread.start()
        try:
            status, _, document = call(
                fleet.bound_port, "/fleet/rollout",
                {"name": "cpi-tree", "alias": "prod",
                 "version": record.version},
            )
        finally:
            stop.set()
            thread.join(10)
        assert status == 200
        assert any("rolled" in event for event in document["events"])
        assert failures == []
        status, _, document = call(
            fleet.bound_port, "/predict", {"section": row}
        )
        assert document["model"] == f"cpi-tree@{record.version}"

    def test_rollout_bad_payload_400(self, fleet):
        status, _, document = call(
            fleet.bound_port, "/fleet/rollout", {"name": "cpi-tree"}
        )
        assert status == 400
        assert "alias" in document["error"]

    def test_rollout_unknown_model_400(self, fleet):
        status, _, document = call(
            fleet.bound_port, "/fleet/rollout",
            {"name": "no-such-model", "alias": "prod"},
        )
        assert status == 400


class TestChaosSites:
    @pytest.fixture(autouse=True)
    def _clean_plan(self):
        reset_faults()
        yield
        reset_faults()

    def test_worker_crash_sheds_with_retry_after(
        self, fleet_registry, suite_dataset, monkeypatch
    ):
        # Rate 1.0: every worker dies on its first /predict, the router
        # runs out of healthy workers, and the request is shed with the
        # full 503 contract — not reset, not hung.
        monkeypatch.setenv("REPRO_FAULTS", "worker_crash:1.0")
        reset_faults()
        serving = ServingFleet(
            make_config(fleet_registry, workers=2, breaker_cooldown_s=60.0)
        ).start()
        serving.serve_in_background()
        try:
            row = suite_dataset.X[0].tolist()
            status, headers, document = call(
                serving.bound_port, "/predict", {"section": row}
            )
            assert status == 503
            assert headers.get("Retry-After") is not None
            assert document["reason"] == "degraded"
            assert document["status"] == 503
        finally:
            serving.shutdown()

    def test_slow_handler_sheds_deadline_through_router(
        self, fleet_registry, suite_dataset, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "slow_handler:1.0")
        reset_faults()
        serving = ServingFleet(
            make_config(fleet_registry, workers=1, task_timeout=0.05)
        ).start()
        serving.serve_in_background()
        try:
            row = suite_dataset.X[0].tolist()
            status, headers, document = call(
                serving.bound_port, "/predict", {"section": row}
            )
            # The worker's own deadline shed, relayed verbatim.
            assert status == 503
            assert document["reason"] == "deadline"
            assert headers.get("Retry-After") is not None
        finally:
            serving.shutdown()

    def test_registry_read_fault_fails_startup(
        self, fleet_registry, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "registry_read:1.0")
        reset_faults()
        serving = ServingFleet(make_config(fleet_registry, workers=1))
        with pytest.raises(FleetError):
            serving.start()
        serving.shutdown()

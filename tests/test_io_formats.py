"""Tests for ARFF and CSV serialization round trips."""

import numpy as np
import pytest

from repro.datasets import Dataset, load_arff, load_csv, save_arff, save_csv
from repro.datasets.arff import dumps_arff, loads_arff
from repro.errors import ParseError


def sample_dataset():
    return Dataset(
        X=[[0.1, 2.0], [0.25, -1.5]],
        y=[1.25, 0.75],
        attributes=("L2M", "BrMisPr"),
        target_name="CPI",
        meta={"workload": ["mcf", "gcc"]},
    )


class TestArff:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "data.arff"
        save_arff(sample_dataset(), path)
        loaded = load_arff(path)
        assert loaded.attributes == ("L2M", "BrMisPr")
        assert loaded.target_name == "CPI"
        assert np.allclose(loaded.X, sample_dataset().X)
        assert np.allclose(loaded.y, sample_dataset().y)

    def test_header_structure(self):
        text = dumps_arff(sample_dataset(), relation="sections")
        assert text.startswith("@relation sections")
        assert "@attribute L2M numeric" in text
        assert "@attribute CPI numeric" in text
        assert "@data" in text

    def test_quoted_names(self):
        ds = Dataset([[1.0]], [2.0], ("name with space",))
        text = dumps_arff(ds)
        assert "'name with space'" in text
        loaded = loads_arff(text)
        assert loaded.attributes == ("name with space",)

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "% comment\n@relation r\n\n@attribute a numeric\n"
            "@attribute y numeric\n@data\n% data comment\n1,2\n"
        )
        loaded = loads_arff(text)
        assert loaded.n_instances == 1

    def test_rejects_nominal_attribute(self):
        text = "@relation r\n@attribute a {x,y}\n@attribute y numeric\n@data\n"
        with pytest.raises(ParseError):
            loads_arff(text)

    def test_rejects_missing_data(self):
        text = "@relation r\n@attribute a numeric\n@attribute y numeric\n@data\n"
        with pytest.raises(ParseError):
            loads_arff(text)

    def test_rejects_ragged_rows(self):
        text = (
            "@relation r\n@attribute a numeric\n@attribute y numeric\n"
            "@data\n1,2\n1\n"
        )
        with pytest.raises(ParseError):
            loads_arff(text)

    def test_rejects_non_numeric_datum(self):
        text = (
            "@relation r\n@attribute a numeric\n@attribute y numeric\n"
            "@data\n1,oops\n"
        )
        with pytest.raises(ParseError):
            loads_arff(text)

    def test_rejects_single_column(self):
        text = "@relation r\n@attribute y numeric\n@data\n1\n"
        with pytest.raises(ParseError):
            loads_arff(text)


class TestCsv:
    def test_round_trip_with_meta(self, tmp_path):
        path = tmp_path / "data.csv"
        save_csv(sample_dataset(), path)
        loaded = load_csv(path)
        assert loaded.attributes == ("L2M", "BrMisPr")
        assert np.allclose(loaded.X, sample_dataset().X)
        assert np.allclose(loaded.y, sample_dataset().y)
        assert list(loaded.meta["workload"]) == ["mcf", "gcc"]

    def test_round_trip_without_meta(self, tmp_path):
        ds = Dataset([[1.0]], [2.0], ("a",))
        path = tmp_path / "plain.csv"
        save_csv(ds, path)
        loaded = load_csv(path)
        assert loaded.meta == {}

    def test_values_survive_exactly(self, tmp_path):
        # repr round-trip must preserve float bits.
        ds = Dataset([[0.1 + 0.2]], [1.0 / 3.0], ("a",))
        path = tmp_path / "exact.csv"
        save_csv(ds, path)
        loaded = load_csv(path)
        assert loaded.X[0, 0] == ds.X[0, 0]
        assert loaded.y[0] == ds.y[0]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ParseError):
            load_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,CPI\n")
        with pytest.raises(ParseError):
            load_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b,CPI\n1,2,3\n1,2\n")
        with pytest.raises(ParseError):
            load_csv(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,CPI\nx,1\n")
        with pytest.raises(ParseError):
            load_csv(path)

    def test_meta_must_precede_numeric(self, tmp_path):
        path = tmp_path / "order.csv"
        path.write_text("a,#workload,CPI\n1,x,2\n")
        with pytest.raises(ParseError):
            load_csv(path)

    def test_suite_dataset_round_trip(self, tmp_path, suite_dataset):
        path = tmp_path / "suite.csv"
        save_csv(suite_dataset, path)
        loaded = load_csv(path)
        assert loaded.n_instances == suite_dataset.n_instances
        assert np.allclose(loaded.X, suite_dataset.X)
        assert set(loaded.meta) >= {"workload", "section", "phase"}

"""Tests for ARFF and CSV serialization round trips."""

import numpy as np
import pytest

from repro.datasets import Dataset, load_arff, load_csv, save_arff, save_csv
from repro.datasets.arff import dumps_arff, loads_arff
from repro.errors import ParseError


def sample_dataset():
    return Dataset(
        X=[[0.1, 2.0], [0.25, -1.5]],
        y=[1.25, 0.75],
        attributes=("L2M", "BrMisPr"),
        target_name="CPI",
        meta={"workload": ["mcf", "gcc"]},
    )


class TestArff:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "data.arff"
        save_arff(sample_dataset(), path)
        loaded = load_arff(path)
        assert loaded.attributes == ("L2M", "BrMisPr")
        assert loaded.target_name == "CPI"
        assert np.allclose(loaded.X, sample_dataset().X)
        assert np.allclose(loaded.y, sample_dataset().y)

    def test_header_structure(self):
        text = dumps_arff(sample_dataset(), relation="sections")
        assert text.startswith("@relation sections")
        assert "@attribute L2M numeric" in text
        assert "@attribute CPI numeric" in text
        assert "@data" in text

    def test_quoted_names(self):
        ds = Dataset([[1.0]], [2.0], ("name with space",))
        text = dumps_arff(ds)
        assert "'name with space'" in text
        loaded = loads_arff(text)
        assert loaded.attributes == ("name with space",)

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "% comment\n@relation r\n\n@attribute a numeric\n"
            "@attribute y numeric\n@data\n% data comment\n1,2\n"
        )
        loaded = loads_arff(text)
        assert loaded.n_instances == 1

    def test_rejects_nominal_attribute(self):
        text = "@relation r\n@attribute a {x,y}\n@attribute y numeric\n@data\n"
        with pytest.raises(ParseError):
            loads_arff(text)

    def test_rejects_missing_data(self):
        text = "@relation r\n@attribute a numeric\n@attribute y numeric\n@data\n"
        with pytest.raises(ParseError):
            loads_arff(text)

    def test_rejects_ragged_rows(self):
        text = (
            "@relation r\n@attribute a numeric\n@attribute y numeric\n"
            "@data\n1,2\n1\n"
        )
        with pytest.raises(ParseError):
            loads_arff(text)

    def test_rejects_non_numeric_datum(self):
        text = (
            "@relation r\n@attribute a numeric\n@attribute y numeric\n"
            "@data\n1,oops\n"
        )
        with pytest.raises(ParseError):
            loads_arff(text)

    def test_rejects_single_column(self):
        text = "@relation r\n@attribute y numeric\n@data\n1\n"
        with pytest.raises(ParseError):
            loads_arff(text)


class TestCsv:
    def test_round_trip_with_meta(self, tmp_path):
        path = tmp_path / "data.csv"
        save_csv(sample_dataset(), path)
        loaded = load_csv(path)
        assert loaded.attributes == ("L2M", "BrMisPr")
        assert np.allclose(loaded.X, sample_dataset().X)
        assert np.allclose(loaded.y, sample_dataset().y)
        assert list(loaded.meta["workload"]) == ["mcf", "gcc"]

    def test_round_trip_without_meta(self, tmp_path):
        ds = Dataset([[1.0]], [2.0], ("a",))
        path = tmp_path / "plain.csv"
        save_csv(ds, path)
        loaded = load_csv(path)
        assert loaded.meta == {}

    def test_values_survive_exactly(self, tmp_path):
        # repr round-trip must preserve float bits.
        ds = Dataset([[0.1 + 0.2]], [1.0 / 3.0], ("a",))
        path = tmp_path / "exact.csv"
        save_csv(ds, path)
        loaded = load_csv(path)
        assert loaded.X[0, 0] == ds.X[0, 0]
        assert loaded.y[0] == ds.y[0]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ParseError):
            load_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,CPI\n")
        with pytest.raises(ParseError):
            load_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b,CPI\n1,2,3\n1,2\n")
        with pytest.raises(ParseError):
            load_csv(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,CPI\nx,1\n")
        with pytest.raises(ParseError):
            load_csv(path)

    def test_meta_must_precede_numeric(self, tmp_path):
        path = tmp_path / "order.csv"
        path.write_text("a,#workload,CPI\n1,x,2\n")
        with pytest.raises(ParseError):
            load_csv(path)

    def test_suite_dataset_round_trip(self, tmp_path, suite_dataset):
        path = tmp_path / "suite.csv"
        save_csv(suite_dataset, path)
        loaded = load_csv(path)
        assert loaded.n_instances == suite_dataset.n_instances
        assert np.allclose(loaded.X, suite_dataset.X)
        assert set(loaded.meta) >= {"workload", "section", "phase"}


class TestErrorContext:
    """Loader errors name their source and the offending line."""

    def test_arff_names_path_and_line(self, tmp_path):
        from repro.datasets.arff import load_arff

        path = tmp_path / "bad.arff"
        path.write_text(
            "@relation r\n@attribute a numeric\n@attribute b numeric\n"
            "@data\n1.0,2.0\n1.0,oops\n"
        )
        with pytest.raises(ParseError, match=r"bad\.arff.*line 6"):
            load_arff(path)

    def test_arff_width_error_has_line_number(self):
        from repro.datasets.arff import loads_arff

        text = (
            "@relation r\n@attribute a numeric\n@attribute b numeric\n"
            "@data\n1.0,2.0\n3.0\n"
        )
        with pytest.raises(ParseError, match="line 6"):
            loads_arff(text)

    def test_arff_nan_rejected_with_column(self):
        from repro.datasets.arff import loads_arff

        text = (
            "@relation r\n@attribute a numeric\n@attribute b numeric\n"
            "@data\nNaN,2.0\n"
        )
        with pytest.raises(ParseError, match="line 5.*'a'"):
            loads_arff(text)

    def test_arff_duplicate_names_are_a_parse_error(self):
        from repro.datasets.arff import loads_arff

        text = (
            "@relation r\n@attribute a numeric\n@attribute a numeric\n"
            "@attribute y numeric\n@data\n1.0,2.0,3.0\n"
        )
        with pytest.raises(ParseError, match="unique"):
            loads_arff(text)

    def test_arff_non_utf8_is_a_parse_error(self, tmp_path):
        from repro.datasets.arff import load_arff

        path = tmp_path / "binary.arff"
        path.write_bytes(b"@relation r\n\xff\xfe\x00bad")
        with pytest.raises(ParseError, match="UTF-8"):
            load_arff(path)

    def test_csv_names_path_and_line(self, tmp_path):
        from repro.datasets.csvio import load_csv

        path = tmp_path / "bad.csv"
        path.write_text("a,b,Y\n1.0,2.0,3.0\n1.0,x,3.0\n")
        with pytest.raises(ParseError, match=r"bad\.csv.*line 3"):
            load_csv(path)

    def test_csv_string_parser_reports_inf(self):
        from repro.datasets.csvio import loads_csv

        with pytest.raises(ParseError, match="line 2.*'b'"):
            loads_csv("a,b,Y\n1.0,inf,3.0\n")

    def test_csv_ragged_row_has_line_number(self):
        from repro.datasets.csvio import loads_csv

        with pytest.raises(ParseError, match="line 3"):
            loads_csv("a,b,Y\n1.0,2.0,3.0\n1.0,2.0\n")

    def test_loads_csv_round_trips_save_csv(self, tmp_path, suite_dataset):
        from repro.datasets.csvio import load_csv, loads_csv, save_csv

        path = tmp_path / "suite.csv"
        save_csv(suite_dataset, path)
        from_text = loads_csv(path.read_text())
        from_file = load_csv(path)
        assert (from_text.X == from_file.X).all()
        assert (from_text.y == from_file.y).all()
        assert from_text.attributes == from_file.attributes

    def test_loads_model_names_source(self):
        from repro.core.tree.serialize import loads_model

        with pytest.raises(ParseError, match="registry blob.*invalid JSON"):
            loads_model("{not json", source="registry blob")

    def test_model_bad_document_without_source(self):
        from repro.core.tree.serialize import loads_model

        with pytest.raises(ParseError, match="repro-m5prime"):
            loads_model('{"format": "something-else"}')

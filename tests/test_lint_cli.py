"""CLI surface of the lint subsystem: exit codes, formats, rule listing."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """A small collect -> train --save pipeline's CSV and model JSON."""
    root = tmp_path_factory.mktemp("lint_cli")
    csv_path = str(root / "sections.csv")
    model_path = str(root / "model.json")
    assert main([
        "collect", "--out", csv_path, "--sections", "8",
        "--instructions", "256", "--seed", "11",
    ]) == 0
    assert main([
        "train", "--data", csv_path, "--min-instances", "10",
        "--save", model_path,
    ]) == 0
    return csv_path, model_path


class TestLintCommand:
    def test_clean_artifacts_exit_zero(self, artifacts, capsys):
        csv_path, model_path = artifacts
        code = main(["lint", "--model", model_path, "--data", csv_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "tree, dataset, compat" in out

    def test_model_only_and_data_only(self, artifacts, capsys):
        csv_path, model_path = artifacts
        assert main(["lint", "--model", model_path]) == 0
        assert "families tree" in capsys.readouterr().out
        assert main(["lint", "--data", csv_path]) == 0
        assert "families dataset" in capsys.readouterr().out

    def test_no_inputs_is_an_error(self, capsys):
        assert main(["lint"]) == 2
        assert "lint needs" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("TREE001", "TREE007", "DATA001", "COMPAT001"):
            assert rule_id in out

    def test_json_format(self, artifacts, capsys):
        csv_path, model_path = artifacts
        code = main([
            "lint", "--model", model_path, "--data", csv_path,
            "--format", "json",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["format"] == "repro-report"
        assert doc["kind"] == "lint"
        assert doc["clean"] is True

    def test_corrupt_data_exits_two_with_diagnostics(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text(
            "L1DM,L2M,CPI\n"
            "0.02,0.01,0.8\n"
            "nan,0.01,0.9\n"
            "0.02,0.01,-1.0\n"
        )
        code = main(["lint", "--data", str(bad), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 2
        rule_ids = {d["rule_id"] for d in doc["diagnostics"]}
        assert "DATA001" in rule_ids
        assert "DATA006" in rule_ids

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        warn_only = tmp_path / "warn.csv"
        warn_only.write_text(
            "a,b,Y\n"
            "2.0,3.0,2.0\n"
            "2.0,1.0,2.5\n"
            "2.0,7.0,1.5\n"
            "2.0,2.0,3.0\n"
        )
        assert main(["lint", "--data", str(warn_only)]) == 0
        out = capsys.readouterr().out
        assert "DATA002" in out
        assert main(["lint", "--data", str(warn_only), "--strict"]) == 1

    def test_corrupt_model_file_exits_two_naming_path(self, tmp_path, capsys):
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        assert main(["lint", "--model", str(broken)]) == 2
        err = capsys.readouterr().err
        assert str(broken) in err

    def test_missing_data_file_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.csv")
        assert main(["lint", "--data", missing]) == 2
        assert "error" in capsys.readouterr().err


class TestEvaluateJson:
    def test_shared_report_envelope(self, artifacts, capsys):
        csv_path, _ = artifacts
        code = main([
            "evaluate", "--data", csv_path, "--learner", "ols",
            "--folds", "3", "--format", "json",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["format"] == "repro-report"
        assert doc["kind"] == "evaluate"
        assert doc["learner"] == "ols"
        assert doc["folds"] == 3
        assert len(doc["per_fold"]) == 3
        for block in (doc["mean"], doc["pooled"]):
            assert set(block) == {
                "correlation", "mae", "rae", "rmse", "rrse", "n",
            }

"""Fast/trace suite-dataset cache identity: no collisions, no cross-hits.

A fast dataset served where a trace dataset was requested (or vice
versa, or across calibrations) would silently corrupt every downstream
experiment, so these tests pin the cache-key contract of
:func:`repro.experiments.suite_dataset`: the key covers the engine, the
fast engine's revision, the calibration content digest, and the
predict-time differential shrink/clip constants.

Simulation is stubbed out — the subject here is key construction and
cache routing, not the engines.
"""

import types

import numpy as np
import pytest

from repro.datasets.dataset import Dataset
from repro.experiments import ExperimentConfig, suite_dataset
from repro.experiments import data as data_module
from repro.experiments.data import experiment_fingerprint
from repro.fastsim import machine_fingerprint
from repro.workloads.suite import SuiteResult, workload_fingerprint


def _result(value: float) -> SuiteResult:
    dataset = Dataset(
        np.full((4, 2), value),
        np.full(4, value),
        ("A", "B"),
        meta={"workload": np.asarray(["w"] * 4, dtype=object)},
    )
    return SuiteResult(dataset=dataset, cpi_by_workload={"w": value},
                       failures=[])


@pytest.fixture()
def stub_sim(monkeypatch):
    """Replace the simulation leg with a counting stub.

    Each call returns a dataset stamped with the call ordinal, so a
    cache cross-hit (same bytes served for a different identity) and a
    missed cache hit (a re-simulation) are both observable.
    """
    calls = []

    def fake_simulate_suite(*args, **kwargs):
        calls.append(kwargs)
        return _result(float(len(calls)))

    monkeypatch.setattr(data_module, "simulate_suite", fake_simulate_suite)
    data_module._MEMORY_CACHE.clear()
    yield calls
    data_module._MEMORY_CACHE.clear()


def _calibration(digest: str) -> types.SimpleNamespace:
    # suite_dataset only reads .digest for the key and forwards the
    # object to the (stubbed) engine.
    return types.SimpleNamespace(digest=digest)


CFG = ExperimentConfig.tiny().with_overrides(use_cache=True, seed=321)


class TestEngineSeparation:
    def test_trace_and_fast_never_share_an_entry(self, tmp_path, stub_sim):
        trace = suite_dataset(CFG, cache_dir=tmp_path)
        fast = suite_dataset(CFG, cache_dir=tmp_path, engine="fast",
                             calibration=_calibration("cal-a"))
        assert trace.y[0] != fast.y[0]
        assert len(stub_sim) == 2

        # Served back from cache, each under its own identity.
        data_module._MEMORY_CACHE.clear()
        trace_again = suite_dataset(CFG, cache_dir=tmp_path)
        fast_again = suite_dataset(CFG, cache_dir=tmp_path, engine="fast",
                                   calibration=_calibration("cal-a"))
        assert len(stub_sim) == 2
        assert trace_again.y[0] == trace.y[0]
        assert fast_again.y[0] == fast.y[0]

    def test_unknown_engine_rejected(self, tmp_path):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="engine"):
            suite_dataset(CFG, cache_dir=tmp_path, engine="warp")


class TestCalibrationIdentity:
    def test_different_digests_never_cross_hit(self, tmp_path, stub_sim):
        first = suite_dataset(CFG, cache_dir=tmp_path, engine="fast",
                              calibration=_calibration("cal-a"))
        other = suite_dataset(CFG, cache_dir=tmp_path, engine="fast",
                              calibration=_calibration("cal-b"))
        assert len(stub_sim) == 2
        assert first.y[0] != other.y[0]

        data_module._MEMORY_CACHE.clear()
        again = suite_dataset(CFG, cache_dir=tmp_path, engine="fast",
                              calibration=_calibration("cal-b"))
        assert len(stub_sim) == 2
        assert again.y[0] == other.y[0]

    def test_differential_constants_are_part_of_the_key(
        self, tmp_path, stub_sim, monkeypatch
    ):
        """Changing the predict-time shrink/clip must invalidate caches.

        The constants are applied at prediction time, not baked into the
        artifact, so without this a constants change would keep serving
        datasets computed under the old values.
        """
        suite_dataset(CFG, cache_dir=tmp_path, engine="fast",
                      calibration=_calibration("cal-a"))
        assert len(stub_sim) == 1
        from repro.fastsim import calibration as calibration_module

        monkeypatch.setattr(calibration_module, "DIFFERENTIAL_SHRINK", 0.99)
        data_module._MEMORY_CACHE.clear()
        suite_dataset(CFG, cache_dir=tmp_path, engine="fast",
                      calibration=_calibration("cal-a"))
        assert len(stub_sim) == 2

    def test_engine_revision_is_part_of_the_key(
        self, tmp_path, stub_sim, monkeypatch
    ):
        suite_dataset(CFG, cache_dir=tmp_path, engine="fast",
                      calibration=_calibration("cal-a"))
        from repro.fastsim import engine as engine_module

        monkeypatch.setattr(engine_module, "ENGINE_REVISION", 99)
        data_module._MEMORY_CACHE.clear()
        suite_dataset(CFG, cache_dir=tmp_path, engine="fast",
                      calibration=_calibration("cal-a"))
        assert len(stub_sim) == 2


class TestMachineIdentity:
    def test_fingerprint_covers_machine_and_workloads(self):
        fingerprint = experiment_fingerprint(CFG)
        assert workload_fingerprint() in fingerprint
        # Datasets and calibrations must agree on what "the machine"
        # is, so the experiment fingerprint delegates to fastsim's.
        assert machine_fingerprint() in fingerprint

    def test_machine_physics_change_invalidates(
        self, tmp_path, stub_sim, monkeypatch
    ):
        suite_dataset(CFG, cache_dir=tmp_path)
        monkeypatch.setattr(data_module, "_machine_fingerprint",
                            lambda: "other-machine")
        data_module._MEMORY_CACHE.clear()
        suite_dataset(CFG, cache_dir=tmp_path)
        assert len(stub_sim) == 2

    def test_config_seed_and_jitter_separate_keys(self):
        base = experiment_fingerprint(CFG)
        assert experiment_fingerprint(
            CFG.with_overrides(seed=CFG.seed + 1)
        ) != base
        assert experiment_fingerprint(
            CFG.with_overrides(jitter=CFG.jitter + 0.01)
        ) != base

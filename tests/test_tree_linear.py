"""Tests for node linear models and M5 term dropping."""

import numpy as np
import pytest

from repro.core.tree.linear import (
    LinearModel,
    adjusted_error,
    fit_linear_model,
    simplify_model,
)
from repro.errors import DataError


def exact_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 3))
    y = 2.0 + 3.0 * X[:, 0] - 1.5 * X[:, 2]
    return X, y


class TestFit:
    def test_recovers_exact_coefficients(self):
        X, y = exact_data()
        model = fit_linear_model(X, y, [0, 1, 2], ("a", "b", "c"))
        assert model.intercept == pytest.approx(2.0, abs=1e-9)
        coefs = dict(zip(model.names, model.coefficients))
        assert coefs["a"] == pytest.approx(3.0, abs=1e-9)
        assert coefs["c"] == pytest.approx(-1.5, abs=1e-9)
        assert model.training_error == pytest.approx(0.0, abs=1e-9)

    def test_restricted_candidates(self):
        X, y = exact_data()
        model = fit_linear_model(X, y, [0], ("a", "b", "c"))
        assert model.names == ("a",)

    def test_no_candidates_gives_mean(self):
        X, y = exact_data()
        model = fit_linear_model(X, y, [], ("a", "b", "c"))
        assert model.is_constant
        assert model.intercept == pytest.approx(float(np.mean(y)))

    def test_constant_column_dropped(self):
        X = np.column_stack([np.ones(50), np.linspace(0, 1, 50)])
        y = 2 * X[:, 1]
        model = fit_linear_model(X, y, [0, 1], ("const", "x"))
        assert "const" not in model.names

    def test_zero_instances_rejected(self):
        with pytest.raises(DataError):
            fit_linear_model(np.zeros((0, 2)), np.zeros(0), [0], ("a", "b"))

    def test_more_candidates_than_instances_guarded(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(3, 5))
        y = rng.uniform(size=3)
        model = fit_linear_model(X, y, [0, 1, 2, 3, 4], tuple("abcde"))
        assert model.n_parameters <= 3


class TestPredict:
    def test_predict_matrix(self):
        X, y = exact_data()
        model = fit_linear_model(X, y, [0, 2], ("a", "b", "c"))
        assert np.allclose(model.predict(X), y)

    def test_predict_one(self):
        X, y = exact_data()
        model = fit_linear_model(X, y, [0, 2], ("a", "b", "c"))
        assert model.predict_one(X[3]) == pytest.approx(y[3])

    def test_misaligned_fields_rejected(self):
        with pytest.raises(DataError):
            LinearModel(0.0, (1,), ("a", "b"), (1.0,), 10, 0.0)


class TestAdjustedError:
    def test_inflation_factor(self):
        assert adjusted_error(1.0, 100, 4) == pytest.approx(104 / 96)

    def test_saturated_penalty(self):
        assert adjusted_error(1.0, 3, 3) == pytest.approx(10.0)

    def test_zero_instances_infinite(self):
        assert adjusted_error(1.0, 0, 1) == float("inf")

    def test_small_leaves_penalized_more(self):
        assert adjusted_error(1.0, 20, 5) > adjusted_error(1.0, 200, 5)


class TestSimplify:
    def test_drops_irrelevant_terms(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(300, 4))
        y = 1.0 + 2.0 * X[:, 0] + rng.normal(0, 0.05, 300)
        names = ("sig", "n1", "n2", "n3")
        full = fit_linear_model(X, y, [0, 1, 2, 3], names)
        simple = simplify_model(full, X, y, names)
        assert "sig" in simple.names
        assert len(simple.names) < 4

    def test_keeps_all_needed_terms(self):
        X, y = exact_data(300)
        names = ("a", "b", "c")
        full = fit_linear_model(X, y, [0, 1, 2], names)
        simple = simplify_model(full, X, y, names)
        assert set(simple.names) == {"a", "c"}

    def test_pure_noise_collapses_to_constant(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(size=(40, 3))
        y = np.full(40, 3.0) + rng.normal(0, 1e-12, 40)
        names = ("a", "b", "c")
        full = fit_linear_model(X, y, [0, 1, 2], names)
        simple = simplify_model(full, X, y, names)
        assert simple.is_constant
        assert simple.intercept == pytest.approx(3.0, abs=1e-6)

    def test_never_increases_adjusted_error(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(size=(100, 5))
        y = X @ rng.uniform(-1, 1, 5) + rng.normal(0, 0.1, 100)
        names = tuple("abcde")
        full = fit_linear_model(X, y, list(range(5)), names)
        simple = simplify_model(full, X, y, names)
        assert simple.adjusted_error() <= full.adjusted_error() + 1e-12


class TestDescribe:
    def test_equation_format(self):
        model = LinearModel(0.52, (0, 1), ("ItlbM", "L1IM"), (139.91, 6.69), 100, 0.1)
        text = model.describe("CPI")
        assert text.startswith("CPI = 0.52")
        assert "+ 139.91 * ItlbM" in text
        assert "+ 6.69 * L1IM" in text

    def test_negative_coefficient_sign(self):
        model = LinearModel(1.0, (0,), ("x",), (-2.5,), 10, 0.0)
        assert "- 2.5 * x" in model.describe()

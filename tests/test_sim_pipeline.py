"""Tests for the cycle-accounting pipeline model (overlap behaviour)."""

import numpy as np
import pytest

from repro.errors import ConfigError, DataError
from repro.simulator import CycleAccounting, MachineConfig, SectionEvents
from repro.simulator.pipeline import IssueCosts, OverlapModel


def make_events(n=256, ilp=0.5, dep=0.0, **flags):
    """SectionEvents with all-false flags except the named overrides.

    An override may be a bool array or a set of indices to set True.
    """
    fields = dict(
        is_load=np.zeros(n, bool),
        is_store=np.zeros(n, bool),
        is_branch=np.zeros(n, bool),
        l1dm=np.zeros(n, bool),
        l2m=np.zeros(n, bool),
        store_l1m=np.zeros(n, bool),
        store_l2m=np.zeros(n, bool),
        l1im=np.zeros(n, bool),
        l2im=np.zeros(n, bool),
        itlbm=np.zeros(n, bool),
        dtlb0_ld=np.zeros(n, bool),
        dtlb_walk_ld=np.zeros(n, bool),
        dtlb_walk_st=np.zeros(n, bool),
        mispred=np.zeros(n, bool),
        ldbl_sta=np.zeros(n, bool),
        ldbl_std=np.zeros(n, bool),
        ldbl_ov=np.zeros(n, bool),
        misal=np.zeros(n, bool),
        split_ld=np.zeros(n, bool),
        split_st=np.zeros(n, bool),
        lcp=np.zeros(n, bool),
    )
    for name, value in flags.items():
        if isinstance(value, np.ndarray):
            fields[name] = value
        else:
            arr = np.zeros(n, bool)
            arr[list(value)] = True
            fields[name] = arr
    return SectionEvents(ilp=ilp, dependent_miss_fraction=dep, **fields)


@pytest.fixture
def accounting():
    return CycleAccounting(MachineConfig())


class TestBaseCost:
    def test_clean_section_costs_base_only(self, accounting):
        events = make_events()
        breakdown = accounting.account(events)
        assert breakdown.total == pytest.approx(breakdown.base)
        assert breakdown.base == pytest.approx(256 * 0.25)

    def test_mix_raises_base(self, accounting):
        loads = make_events(is_load=np.ones(256, bool))
        assert accounting.account(loads).base > 256 * 0.25

    def test_cpi_helper(self, accounting):
        events = make_events()
        assert accounting.cpi(events) == pytest.approx(0.25)


class TestLongMissOverlap:
    def test_serialized_misses_pay_full_latency(self, accounting):
        # Spread misses far apart so no window overlap, full dependence.
        indices = list(range(0, 256, 128))
        events = make_events(dep=1.0, l2m=indices, is_load=set(range(256)))
        breakdown = accounting.account(events)
        memory = accounting.config.latency.memory
        assert breakdown.load_l2_miss == pytest.approx(len(indices) * memory)

    def test_clustered_independent_misses_overlap(self, accounting):
        clustered = make_events(dep=0.0, l2m=set(range(0, 32)), is_load=set(range(256)))
        serialized = make_events(dep=1.0, l2m=set(range(0, 32)), is_load=set(range(256)))
        cost_clustered = accounting.account(clustered).load_l2_miss
        cost_serialized = accounting.account(serialized).load_l2_miss
        assert cost_clustered < cost_serialized / 3

    def test_mlp_capped_by_mshrs(self):
        config = MachineConfig()
        events = make_events(dep=0.0, l2m=set(range(0, 64)))
        cost = CycleAccounting(config).account(events).load_l2_miss
        floor = 64 * config.latency.memory / config.mshr_count
        assert cost >= floor * 0.99

    def test_store_misses_mostly_hidden(self, accounting):
        loads = make_events(l2m={10}, dep=1.0)
        stores = make_events(store_l2m={10}, dep=1.0)
        assert (
            accounting.account(stores).store_l2_miss
            < accounting.account(loads).load_l2_miss / 2
        )


class TestShortPenalties:
    def test_ilp_hides_l1_misses(self, accounting):
        low = make_events(ilp=0.0, l1dm={5})
        high = make_events(ilp=1.0, l1dm={5})
        assert (
            accounting.account(high).load_l1_miss
            < accounting.account(low).load_l1_miss
        )

    def test_l1_only_excludes_l2_misses(self, accounting):
        both = make_events(l1dm={5}, l2m={5}, dep=1.0)
        breakdown = accounting.account(both)
        assert breakdown.load_l1_miss == pytest.approx(0.0)
        assert breakdown.load_l2_miss > 0

    def test_shadow_discounts_branch_penalty(self, accounting):
        alone = make_events(mispred={200})
        shadowed = make_events(mispred={200}, l2m={195}, dep=1.0)
        cost_alone = accounting.account(alone).branch
        cost_shadowed = accounting.account(shadowed).branch
        assert cost_shadowed < cost_alone

    def test_page_walks_cost_cycles(self, accounting):
        events = make_events(dtlb_walk_ld={3})
        assert accounting.account(events).dtlb == pytest.approx(
            accounting.config.latency.dtlb_walk
        )

    def test_load_blocks_scale_with_ilp(self, accounting):
        low = make_events(ilp=0.1, ldbl_sta={1}, ldbl_std={2}, ldbl_ov={3})
        high = make_events(ilp=0.9, ldbl_sta={1}, ldbl_std={2}, ldbl_ov={3})
        assert accounting.account(high).load_block < accounting.account(low).load_block

    def test_lcp_cost(self, accounting):
        events = make_events(ilp=0.0, lcp=set(range(10)))
        assert accounting.account(events).lcp == pytest.approx(
            10 * accounting.config.latency.lcp_stall
        )

    def test_alignment_costs(self, accounting):
        events = make_events(ilp=0.0, misal={1}, split_ld={2})
        breakdown = accounting.account(events)
        lat = accounting.config.latency
        assert breakdown.alignment == pytest.approx(lat.misaligned + lat.split_access)


class TestFrontEnd:
    def test_l1i_refill_cost(self, accounting):
        events = make_events(ilp=0.0, l1im={7})
        assert accounting.account(events).ifetch == pytest.approx(
            accounting.config.latency.l1i_refill
        )

    def test_instruction_l2_miss_starves(self, accounting):
        events = make_events(l1im={7}, l2im={7})
        assert accounting.account(events).ifetch == pytest.approx(
            accounting.config.latency.ifetch_memory
        )

    def test_itlb_walk(self, accounting):
        events = make_events(itlbm={1, 2})
        assert accounting.account(events).itlb == pytest.approx(
            2 * accounting.config.latency.itlb_walk
        )

    def test_fetch_and_data_stalls_overlap(self, accounting):
        """The LM18 saturation: fetch + data stalls are less than their sum."""
        fetch_only = make_events(l1im=set(range(0, 64)), l2im=set(range(0, 64)))
        data_only = make_events(l2m=set(range(0, 64)), dep=1.0)
        both = make_events(
            l1im=set(range(0, 64)),
            l2im=set(range(0, 64)),
            l2m=set(range(0, 64)),
            dep=1.0,
        )
        cost_fetch = accounting.account(fetch_only).total
        cost_data = accounting.account(data_only).total
        cost_both = accounting.account(both).total
        assert cost_both < cost_fetch + cost_data - 256 * 0.25
        assert cost_both >= max(cost_fetch, cost_data) * 0.95


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DataError):
            make_events(is_load=np.zeros(5, bool))

    def test_bad_ilp_rejected(self):
        with pytest.raises(DataError):
            make_events(ilp=2.0)

    def test_bad_dep_rejected(self):
        with pytest.raises(DataError):
            make_events(dep=-0.1)

    def test_overlap_model_validation(self):
        with pytest.raises(ConfigError):
            OverlapModel(shadow_discount=1.5)

    def test_issue_costs_validation(self):
        with pytest.raises(ConfigError):
            IssueCosts(load_extra=-1.0)

    def test_breakdown_as_dict(self, accounting):
        breakdown = accounting.account(make_events())
        as_dict = breakdown.as_dict()
        assert as_dict["base"] == pytest.approx(breakdown.base)
        assert sum(as_dict.values()) == pytest.approx(breakdown.total)

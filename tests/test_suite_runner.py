"""Tests for the suite runner (dataset collection campaign)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads import simulate_suite, spec_like_suite
from repro.workloads.spec import calm_like, mcf_like
from repro.workloads.suite import workload_fingerprint


class TestSimulateSuite:
    def test_dataset_shape(self, suite_result):
        dataset = suite_result.dataset
        assert dataset.n_instances == 11 * 12
        assert dataset.n_attributes == 20
        assert dataset.target_name == "CPI"

    def test_metadata_columns(self, suite_dataset):
        assert set(suite_dataset.meta) == {"workload", "section", "phase"}
        assert set(suite_dataset.meta["workload"]) == {
            p.name for p in spec_like_suite()
        }

    def test_cpi_by_workload_matches_dataset(self, suite_result):
        dataset = suite_result.dataset
        for name, cpi in suite_result.cpi_by_workload.items():
            mask = dataset.meta["workload"] == name
            assert dataset.y[mask].mean() == pytest.approx(cpi, rel=0.02)

    def test_deterministic(self):
        profiles = [calm_like()]
        a = simulate_suite(profiles, 4, 256, seed=9)
        b = simulate_suite(profiles, 4, 256, seed=9)
        assert np.array_equal(a.dataset.X, b.dataset.X)
        assert np.array_equal(a.dataset.y, b.dataset.y)

    def test_seed_changes_data(self):
        profiles = [calm_like()]
        a = simulate_suite(profiles, 4, 256, seed=1)
        b = simulate_suite(profiles, 4, 256, seed=2)
        assert not np.array_equal(a.dataset.y, b.dataset.y)

    def test_mcf_cpi_exceeds_calm(self, suite_result):
        cpis = suite_result.cpi_by_workload
        assert cpis["mcf_like"] > 3 * cpis["calm_like"]

    def test_bzip_has_dtlb_without_l2(self, suite_dataset):
        mask = suite_dataset.meta["workload"] == "bzip_like"
        assert suite_dataset.column("Dtlb")[mask].mean() > 0.003
        assert suite_dataset.column("L2M")[mask].mean() < 0.005

    def test_gcc_sections_include_lcp_phase(self, suite_dataset):
        mask = suite_dataset.meta["workload"] == "gcc_like"
        lcp = suite_dataset.column("LCP")[mask]
        assert np.any(lcp > 0.05)

    def test_progress_callback_invoked(self):
        calls = []
        simulate_suite(
            [calm_like()], 3, 256, seed=0,
            progress=lambda name, done, total: calls.append((name, done, total)),
        )
        assert calls == [("calm_like", 1, 3), ("calm_like", 2, 3), ("calm_like", 3, 3)]

    def test_progress_once_per_workload_when_parallel(self):
        """n_jobs > 1 reports in the parent, exactly once per workload.

        Per-section callbacks cannot cross a process boundary; the
        parallel path must neither drop a workload nor double-fire
        (parent and child both reporting was the historical bug).
        """
        calls = []
        simulate_suite(
            [mcf_like(), calm_like()], 3, 256, seed=0, n_jobs=2,
            progress=lambda name, done, total: calls.append(
                (name, done, total)
            ),
        )
        assert sorted(calls) == [("calm_like", 3, 3), ("mcf_like", 3, 3)]

    def test_progress_skips_workloads_a_policy_failed(self, monkeypatch):
        """Failed workloads produce no sections and no callback.

        Under ``collect_errors`` with injected faults, a workload that
        exhausts its retries must not fire the callback — a consumer
        using callbacks to count completed work would otherwise
        overcount.  Fault seed 4 at rate 0.5 deterministically fails
        exactly ``gcc_like`` on its only attempt.
        """
        from repro.resilience import FailPolicy, RetryPolicy, RunPolicy
        from repro.resilience.faults import FAULTS_ENV, reset_faults
        from repro.workloads.spec import cactus_like, gcc_like

        monkeypatch.setenv(FAULTS_ENV, "sim:0.5,seed=4")
        reset_faults()
        try:
            calls = []
            result = simulate_suite(
                [mcf_like(), cactus_like(), gcc_like(), calm_like()],
                3, 256, seed=0, n_jobs=2,
                policy=RunPolicy(
                    retry=RetryPolicy(max_attempts=1, base_delay=0.0),
                    fail_policy=FailPolicy.parse("collect_errors"),
                ),
                progress=lambda name, done, total: calls.append(
                    (name, done, total)
                ),
            )
        finally:
            monkeypatch.delenv(FAULTS_ENV, raising=False)
            reset_faults()
        assert [f.key for f in result.failures] == ["wl-gcc_like"]
        assert sorted(calls) == [
            ("cactus_like", 3, 3), ("calm_like", 3, 3), ("mcf_like", 3, 3),
        ]
        assert sorted(calls) == sorted(
            (name, 3, 3) for name in result.cpi_by_workload
        )

    def test_summary_text(self, suite_result):
        text = suite_result.summary()
        assert "mcf_like" in text
        assert "mean CPI" in text

    def test_validation(self):
        with pytest.raises(ConfigError):
            simulate_suite([], 4, 256)
        with pytest.raises(ConfigError):
            simulate_suite([calm_like()], 0, 256)
        with pytest.raises(ConfigError):
            simulate_suite([calm_like()], 4, 32)


class TestWorkloadFingerprint:
    def test_stable(self):
        assert workload_fingerprint() == workload_fingerprint()

    def test_sensitive_to_profile_change(self):
        import dataclasses

        profile = mcf_like()
        changed_params = dataclasses.replace(
            profile.schedule.phases[0], ilp=0.123
        )
        from repro.workloads import PhaseSchedule, WorkloadProfile

        changed = WorkloadProfile(
            profile.name,
            PhaseSchedule(
                [(changed_params, 1.0)]
            ),
        )
        assert workload_fingerprint([profile]) != workload_fingerprint([changed])

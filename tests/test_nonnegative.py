"""Tests for the non-negative stall-coefficient option."""

import numpy as np
import pytest

from repro.core.tree import M5Prime
from repro.core.tree.linear import fit_linear_model
from repro.counters import PREDICTOR_NAMES, STALL_METRICS
from repro.errors import DataError


class TestStallMetricCatalogue:
    def test_stall_metrics_are_predictors(self):
        assert set(STALL_METRICS) <= set(PREDICTOR_NAMES)

    def test_mix_metrics_excluded(self):
        for mix in ("InstLd", "InstSt", "BrPred", "InstOther"):
            assert mix not in STALL_METRICS

    def test_count(self):
        assert len(STALL_METRICS) == 16


class TestBoundedFit:
    def test_constraint_enforced(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(200, 2))
        # y genuinely *decreases* with x0; the constraint must clamp it.
        y = -2.0 * X[:, 0] + 1.0 * X[:, 1]
        model = fit_linear_model(X, y, [0, 1], ("a", "b"), nonnegative=[0])
        coefs = dict(zip(model.names, model.coefficients))
        assert coefs.get("a", 0.0) >= -1e-9
        # With a clamped at zero, b stays positive and absorbs the rest.
        assert coefs["b"] > 0.5

    def test_unconstrained_columns_free(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(200, 2))
        y = 2.0 * X[:, 0] - 1.5 * X[:, 1]
        model = fit_linear_model(X, y, [0, 1], ("a", "b"), nonnegative=[0])
        coefs = dict(zip(model.names, model.coefficients))
        assert coefs["a"] == pytest.approx(2.0, abs=0.01)
        assert coefs["b"] == pytest.approx(-1.5, abs=0.01)

    def test_inactive_constraint_matches_ols(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(200, 2))
        y = 1.0 + 2.0 * X[:, 0] + 3.0 * X[:, 1]
        free = fit_linear_model(X, y, [0, 1], ("a", "b"))
        bounded = fit_linear_model(X, y, [0, 1], ("a", "b"), nonnegative=[0, 1])
        assert bounded.coefficients == pytest.approx(free.coefficients, abs=1e-6)
        assert bounded.intercept == pytest.approx(free.intercept, abs=1e-6)

    def test_with_ridge(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(200, 1))
        y = -3.0 * X[:, 0]
        model = fit_linear_model(X, y, [0], ("a",), ridge=1e-3, nonnegative=[0])
        assert all(c >= -1e-9 for c in model.coefficients)


class TestTreeNonnegative:
    def test_all_stall_coefficients_nonnegative(self, suite_dataset):
        model = M5Prime(
            min_instances=12, nonnegative_attributes=STALL_METRICS
        ).fit(suite_dataset)
        for lm in model.leaf_models().values():
            for name, coefficient in zip(lm.names, lm.coefficients):
                if name in STALL_METRICS:
                    assert coefficient >= -1e-9

    def test_accuracy_cost_is_modest(self, suite_dataset):
        from repro.evaluation import evaluate_predictions

        free = M5Prime(min_instances=12).fit(suite_dataset)
        bounded = M5Prime(
            min_instances=12, nonnegative_attributes=STALL_METRICS
        ).fit(suite_dataset)
        free_rae = evaluate_predictions(
            suite_dataset.y, free.predict(suite_dataset.X)
        ).rae
        bounded_rae = evaluate_predictions(
            suite_dataset.y, bounded.predict(suite_dataset.X)
        ).rae
        assert bounded_rae <= free_rae * 1.5 + 0.02

    def test_unknown_attribute_rejected(self, suite_dataset):
        model = M5Prime(min_instances=12, nonnegative_attributes=("Bogus",))
        with pytest.raises(DataError):
            model.fit(suite_dataset)

    def test_round_trips_through_serialization(self, suite_dataset, tmp_path):
        from repro.core.tree import load_model, save_model

        model = M5Prime(
            min_instances=12, nonnegative_attributes=STALL_METRICS
        ).fit(suite_dataset)
        path = tmp_path / "nn.json"
        save_model(model, path)
        loaded = load_model(path)
        assert tuple(loaded.nonnegative_attributes) == STALL_METRICS
        assert np.allclose(
            model.predict(suite_dataset.X), loaded.predict(suite_dataset.X)
        )

"""Cross-validation of the trace-driven simulator against closed forms.

Each test drives the real components with a controlled access pattern
and compares measured rates to the analytical expectation.  Bands are
deliberately loose (conflict misses, warmup and prefetch interplay are
real); a failure here means the machinery drifted, not that it is noisy.
"""

import numpy as np
import pytest

from repro.counters import events as ev
from repro.simulator import MachineConfig, SimulatedCore
from repro.simulator.analytic import (
    expected_branch_mispredict_rate,
    expected_data_miss_rates,
    expected_dtlb_walk_rate,
    expected_profile_rates,
    uniform_hit_probability,
)
from repro.workloads import PhaseParams, synthesize_block
from repro.workloads.suite import prewarm


def measured_rates(params, n=6144, seed=3, config=None):
    machine = config or MachineConfig(measurement_noise_sd=0.0)
    rng = np.random.default_rng(seed)
    core = SimulatedCore(machine, rng=rng)
    prewarm(core, params)
    # One warmup block, then measure.
    core.run_block(synthesize_block(params, n, rng))
    result = core.run_block(synthesize_block(params, n, rng))
    counts = result.counts
    loads = max(counts[ev.INST_RETIRED_LOADS.name], 1.0)
    branches = max(counts[ev.BR_INST_RETIRED_ANY.name], 1.0)
    return {
        "l1d_per_load": counts[ev.MEM_LOAD_RETIRED_L1D_LINE_MISS.name] / loads,
        "l2_per_load": counts[ev.MEM_LOAD_RETIRED_L2_LINE_MISS.name] / loads,
        "walk_per_load": counts[ev.MEM_LOAD_RETIRED_DTLB_MISS.name] / loads,
        "mispredict_per_branch": counts[ev.BR_INST_RETIRED_MISPRED.name] / branches,
    }


class TestUniformHitProbability:
    def test_fitting_region_always_hits(self):
        assert uniform_hit_probability(1 << 20, 1 << 18) == 1.0

    def test_proportional_when_overflowing(self):
        assert uniform_hit_probability(1 << 20, 1 << 22) == pytest.approx(0.25)

    def test_degenerate_region(self):
        assert uniform_hit_probability(1024, 0) == 1.0


class TestCacheValidation:
    def test_hot_resident_set_rarely_misses(self):
        params = PhaseParams(
            hot_fraction=1.0, hot_set_bytes=8 << 10, data_footprint=8 << 10
        )
        rates = measured_rates(params)
        assert rates["l1d_per_load"] < 0.02

    def test_uniform_overflow_tracks_capacity_ratio(self):
        footprint = 32 << 20  # 8x the 4MB L2
        params = PhaseParams(
            hot_fraction=0.0,
            stride_fraction=0.0,
            data_footprint=footprint,
            hot_set_bytes=4 << 10,
            misalign_fraction=0.0,
            store_load_alias_fraction=0.0,
        )
        expected = expected_data_miss_rates(params, MachineConfig())
        rates = measured_rates(params, n=8192)
        # Uniform jumps: nearly every access misses L1; L2 hits ~1/8.
        assert rates["l1d_per_load"] == pytest.approx(expected["l1d"], abs=0.08)
        assert rates["l2_per_load"] == pytest.approx(expected["l2"], abs=0.15)

    def test_streaming_mostly_prefetched(self):
        params = PhaseParams(
            hot_fraction=0.0,
            stride_fraction=1.0,
            data_footprint=32 << 20,
            hot_set_bytes=4 << 10,
            misalign_fraction=0.0,
            store_load_alias_fraction=0.0,
        )
        expected = expected_data_miss_rates(params, MachineConfig())
        rates = measured_rates(params, n=8192)
        # One miss per 4 accesses without prefetch; far less with it.
        assert rates["l1d_per_load"] < 0.15
        assert rates["l1d_per_load"] == pytest.approx(expected["l1d"], abs=0.1)

    def test_prefetcher_off_restores_compulsory_rate(self):
        params = PhaseParams(
            hot_fraction=0.0,
            stride_fraction=1.0,
            data_footprint=32 << 20,
            hot_set_bytes=4 << 10,
            misalign_fraction=0.0,
            store_load_alias_fraction=0.0,
        )
        config = MachineConfig(prefetch_next_line=False, measurement_noise_sd=0.0)
        rates = measured_rates(params, config=config)
        # 16B stride over 64B lines: one compulsory miss per 4 accesses.
        assert rates["l1d_per_load"] == pytest.approx(0.25, abs=0.06)


class TestTlbValidation:
    def test_walk_rate_tracks_reach_ratio(self):
        footprint = 8 << 20  # 8x the 1MB DTLB reach
        params = PhaseParams(
            hot_fraction=0.0,
            stride_fraction=0.0,
            data_footprint=footprint,
            hot_set_bytes=4 << 10,
            misalign_fraction=0.0,
            store_load_alias_fraction=0.0,
        )
        expected = expected_dtlb_walk_rate(params, MachineConfig())
        rates = measured_rates(params, n=8192)
        assert expected == pytest.approx(0.875, abs=0.01)
        assert rates["walk_per_load"] == pytest.approx(expected, abs=0.12)

    def test_resident_pages_never_walk(self):
        params = PhaseParams(
            hot_fraction=1.0, hot_set_bytes=64 << 10, data_footprint=64 << 10
        )
        rates = measured_rates(params)
        assert rates["walk_per_load"] < 0.01


class TestBranchValidation:
    def test_biased_branches(self):
        params = PhaseParams(branch_bias=0.9, hard_branch_fraction=0.0,
                             branch_fraction=0.3)
        expected = expected_branch_mispredict_rate(params)
        rates = measured_rates(params)
        assert expected == pytest.approx(0.1)
        assert rates["mispredict_per_branch"] == pytest.approx(expected, abs=0.06)

    def test_hard_branches(self):
        params = PhaseParams(branch_bias=0.95, hard_branch_fraction=1.0,
                             branch_fraction=0.3)
        rates = measured_rates(params)
        assert rates["mispredict_per_branch"] == pytest.approx(0.5, abs=0.08)

    def test_mixed_hard_and_biased_band(self):
        """The closed form must hold *between* the pure regimes too.

        A 30/70 blend of hard and trained-biased branches lands at
        0.3*0.5 + 0.7*0.15 = 0.255 mispredicts per branch; the trace
        predictor must track that within the same band the pure cases
        use, or the blend term in the closed form has drifted.
        """
        params = PhaseParams(branch_bias=0.85, hard_branch_fraction=0.3,
                             branch_fraction=0.3)
        expected = expected_branch_mispredict_rate(params)
        assert expected == pytest.approx(0.255)
        rates = measured_rates(params)
        assert rates["mispredict_per_branch"] == pytest.approx(expected, abs=0.06)


class TestProfileRates:
    def test_per_instruction_scaling(self):
        params = PhaseParams(load_fraction=0.4, branch_fraction=0.2,
                             lcp_fraction=0.1)
        rates = expected_profile_rates(params, MachineConfig())
        data = expected_data_miss_rates(params, MachineConfig())
        assert rates.l1dm == pytest.approx(0.4 * data["l1d"])
        assert rates.lcp == pytest.approx(0.1)
        assert set(rates.as_dict()) == {"L1DM", "L2M", "DtlbLdM", "BrMisPr", "LCP"}

    def test_l2_never_exceeds_l1(self):
        for footprint in (1 << 20, 8 << 20, 64 << 20):
            params = PhaseParams(data_footprint=footprint, hot_set_bytes=4 << 10)
            data = expected_data_miss_rates(params, MachineConfig())
            assert data["l2"] <= data["l1d"] + 1e-12

"""Tests for the refined-forest leaf re-weighting pass."""

import numpy as np
import pytest

from repro.baselines import BaggedM5
from repro.datasets.synthetic import figure1_dataset
from repro.errors import ConfigError, DataError, NotFittedError
from repro.serve.refine import RefinedForest, refined_predict


@pytest.fixture(scope="module")
def data():
    return figure1_dataset(n=220, noise_sd=0.05, rng=13)


@pytest.fixture(scope="module")
def forest(data):
    return BaggedM5(n_estimators=5, min_instances=20, seed=17).fit(data)


@pytest.fixture(scope="module")
def refinement(forest, data):
    return RefinedForest(forest).fit(data)


def _plain_mae(forest, data):
    per_tree = forest.compiled_.predict_trees(data.X)
    return float(np.mean(np.abs(per_tree.mean(axis=0) - data.y)))


class TestFit:
    def test_never_worse_than_uniform_mean(self, forest, refinement, data):
        assert refinement.refined_.train_mae <= _plain_mae(forest, data)

    def test_history_records_all_stages(self, refinement):
        stages = [entry["stage"] for entry in refinement.history_]
        assert stages[0] == "uniform"
        assert stages[1] == "refit-0"
        assert sum(entry["selected"] for entry in refinement.history_) == 1
        best = min(entry["train_mae"] for entry in refinement.history_)
        selected = next(
            entry for entry in refinement.history_ if entry["selected"]
        )
        assert selected["train_mae"] == best

    def test_attaches_to_forest(self, forest, refinement):
        assert forest.refined_ is refinement.refined_

    def test_forest_predict_serves_refined(self, forest, refinement, data):
        expected = refined_predict(
            forest.compiled_, refinement.refined_, data.X
        )
        assert np.array_equal(forest.predict(data.X), expected)

    def test_pruned_leaves_contribute_zero(self, forest, refinement, data):
        refined = refinement.refined_
        if refined.n_active == refined.weights.size:
            pytest.skip("selected candidate pruned nothing")
        columns = forest.compiled_.leaf_columns(data.X)
        live = refined.active[columns]
        per_tree = forest.compiled_.predict_trees(data.X)
        manual = (
            per_tree.T * np.where(live, refined.weights[columns], 0.0)
        ).sum(axis=1)
        assert np.array_equal(
            refined_predict(forest.compiled_, refined, data.X), manual
        )

    def test_accepts_xy_pair(self, forest, data):
        refinement = RefinedForest(forest, n_prunings=0).fit(data.X, data.y)
        assert refinement.refined_ is not None

    def test_at_least_one_leaf_stays_active(self, data):
        forest = BaggedM5(n_estimators=2, min_instances=80, seed=5).fit(data)
        refinement = RefinedForest(
            forest, prune_pct=0.9, n_prunings=50
        ).fit(data)
        assert refinement.refined_.n_active >= 1

    def test_empty_training_rows(self, forest):
        with pytest.raises(DataError):
            RefinedForest(forest).fit(
                np.empty((0, len(forest.attributes_))), np.empty(0)
            )


class TestValidation:
    def test_bad_ridge(self, forest):
        with pytest.raises(ConfigError):
            RefinedForest(forest, ridge=0.0)

    def test_bad_prune_pct(self, forest):
        with pytest.raises(ConfigError):
            RefinedForest(forest, prune_pct=1.0)
        with pytest.raises(ConfigError):
            RefinedForest(forest, prune_pct=-0.1)

    def test_bad_n_prunings(self, forest):
        with pytest.raises(ConfigError):
            RefinedForest(forest, n_prunings=-1)

    def test_unfitted_forest(self):
        with pytest.raises(NotFittedError):
            RefinedForest(BaggedM5(n_estimators=2))


class TestDescribeLeaf:
    def test_names_attributes_and_weight(self, forest, refinement):
        description = refinement.describe_leaf(0)
        assert description["column"] == 0
        assert isinstance(description["weight"], float)
        assert isinstance(description["active"], bool)
        for name, _ in description["terms"]:
            assert name in forest.attributes_

    def test_requires_fit(self, forest):
        with pytest.raises(NotFittedError):
            RefinedForest(forest).describe_leaf(0)

"""Tests for the learning-curve utility."""

import pytest

from repro.baselines import LinearRegressionBaseline
from repro.core.tree import M5Prime
from repro.datasets.synthetic import figure1_dataset
from repro.errors import ConfigError
from repro.evaluation import learning_curve


@pytest.fixture(scope="module")
def curve():
    ds = figure1_dataset(n=1200, noise_sd=0.1, rng=0)
    return learning_curve(
        lambda: M5Prime(min_instances=20), ds, rng=0
    )


class TestLearningCurve:
    def test_default_points(self, curve):
        assert len(curve.points) == 4
        sizes = [point.n_train for point in curve.points]
        assert sizes == sorted(sizes)

    def test_accuracy_improves_with_data(self, curve):
        first, last = curve.points[0].result, curve.points[-1].result
        assert last.rae <= first.rae + 0.02

    def test_test_split_fixed(self, curve):
        assert curve.n_test == 300  # 25% of 1200

    def test_table(self, curve):
        table = curve.to_table()
        assert "n_train" in table
        assert "RAE %" in table

    def test_converged_flag(self, curve):
        # The piecewise-linear problem saturates quickly.
        assert curve.converged(tolerance=0.1)

    def test_converged_needs_two_points(self):
        ds = figure1_dataset(n=300, rng=1)
        single = learning_curve(
            LinearRegressionBaseline, ds, fractions=[1.0], rng=0
        )
        assert not single.converged()

    def test_invalid_fractions(self):
        ds = figure1_dataset(n=200, rng=0)
        with pytest.raises(ConfigError):
            learning_curve(LinearRegressionBaseline, ds, fractions=[0.5, 0.25])
        with pytest.raises(ConfigError):
            learning_curve(LinearRegressionBaseline, ds, fractions=[0.0, 1.0])
        with pytest.raises(ConfigError):
            learning_curve(LinearRegressionBaseline, ds, fractions=[])

    def test_deterministic(self):
        ds = figure1_dataset(n=400, rng=0)
        a = learning_curve(LinearRegressionBaseline, ds, rng=5)
        b = learning_curve(LinearRegressionBaseline, ds, rng=5)
        assert a.to_table() == b.to_table()

"""Forest registry life cycle: publish, resolve, serve, and failure paths."""

import json

import numpy as np
import pytest

from repro.baselines import BaggedM5
from repro.datasets.synthetic import figure1_dataset
from repro.errors import ParseError, RegistryError, ServeError
from repro.serve.forest_io import (
    forest_from_dict,
    forest_to_dict,
    load_any_model,
    loads_any_model,
    save_forest,
)
from repro.serve.refine import RefinedForest
from repro.serve.registry import ModelRegistry
from repro.serve.server import ModelServer


@pytest.fixture(scope="module")
def data():
    return figure1_dataset(n=180, noise_sd=0.05, rng=21)


@pytest.fixture(scope="module")
def forest(data):
    forest = BaggedM5(n_estimators=4, min_instances=20, seed=6).fit(data)
    RefinedForest(forest).fit(data)
    return forest


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


class TestPublishResolveServe:
    def test_round_trip_via_alias(self, registry, forest, data):
        record = registry.publish("cpi-forest", forest, aliases=["prod"])
        assert record.kind == "forest"
        loaded, resolved = registry.resolve("cpi-forest@prod")
        assert resolved.spec == "cpi-forest@1"
        assert loaded.refined_ is not None
        assert np.array_equal(loaded.predict(data.X), forest.predict(data.X))

    def test_render_marks_forest_kind(self, registry, forest):
        registry.publish("cpi-forest", forest)
        assert "forest" in registry.render()

    def test_served_predict_envelope(self, registry, forest, data):
        registry.publish("cpi-forest", forest)
        server = ModelServer(registry=registry, default_model="cpi-forest")
        server.start()
        server.serve_in_background()
        try:
            document = server.handle_predict(
                {"sections": [list(map(float, data.X[0]))]}
            )
        finally:
            server.shutdown()
        assert document["n_trees"] == len(forest.estimators_)
        assert document["refined"] is True
        assert "leaf_ids" not in document
        assert document["predictions"] == [float(forest.predict(data.X[:1])[0])]

    def test_explain_rejected_for_forests(self, registry, forest, data):
        registry.publish("cpi-forest", forest)
        server = ModelServer(registry=registry, default_model="cpi-forest")
        server.start()
        server.serve_in_background()
        try:
            with pytest.raises(ServeError, match="single-tree endpoint"):
                server.handle_explain(
                    {"sections": [list(map(float, data.X[0]))]}
                )
        finally:
            server.shutdown()

    def test_tree_records_keep_kind_tree(self, registry, data):
        from repro.core.tree import M5Prime

        tree = M5Prime(min_instances=30).fit(data)
        record = registry.publish("cpi-tree", tree)
        assert record.kind == "tree"

    def test_pre_forest_manifest_back_compat(self, registry, forest, data):
        """Manifests written before the kind field default to tree."""
        from repro.core.tree import M5Prime

        tree = M5Prime(min_instances=30).fit(data)
        registry.publish("cpi-tree", tree)
        manifest = json.loads(registry.manifest_path.read_text())
        for name_entry in manifest["models"].values():
            for version_entry in name_entry["versions"].values():
                version_entry.pop("kind", None)
        registry.manifest_path.write_text(json.dumps(manifest))
        _, record = registry.resolve("cpi-tree")
        assert record.kind == "tree"


class TestFailurePaths:
    def test_tampered_blob_quarantined(self, registry, forest):
        record = registry.publish("cpi-forest", forest)
        blob = registry.directory / record.blob
        blob.write_text(blob.read_text()[:100])
        with pytest.warns(RuntimeWarning, match="quarantined"):
            with pytest.raises(RegistryError, match="missing or corrupt"):
                registry.resolve("cpi-forest")
        assert not blob.exists()
        assert (registry.cache.quarantine_directory / record.blob).exists()

    def test_tree_count_mismatch_names_defect(self, forest):
        document = forest_to_dict(forest)
        document["n_trees"] = 7
        with pytest.raises(ParseError, match="tree-count mismatch"):
            forest_from_dict(document)

    def test_refined_offset_mismatch_names_defect(self, forest):
        document = forest_to_dict(forest)
        document["refined"]["weights"] = document["refined"]["weights"][:-1]
        with pytest.raises(ParseError, match="offset mismatch"):
            forest_from_dict(document)

    def test_unknown_format_names_expectations(self):
        with pytest.raises(ParseError, match="unknown model format"):
            loads_any_model(json.dumps({"format": "repro-mystery"}))

    def test_load_failure_names_source_path(self, tmp_path, forest):
        path = tmp_path / "forest.json"
        save_forest(forest, path)
        document = json.loads(path.read_text())
        document["trees"] = document["trees"][:-1]
        path.write_text(json.dumps(document))
        with pytest.raises(ParseError, match="forest.json"):
            load_any_model(path)


class TestFileRoundTrip:
    def test_save_load_bit_identical(self, tmp_path, forest, data):
        path = tmp_path / "forest.json"
        save_forest(forest, path)
        restored = load_any_model(path)
        assert np.array_equal(
            restored.predict(data.X), forest.predict(data.X)
        )
        assert restored.refined_ is not None
        assert np.array_equal(
            restored.refined_.weights, forest.refined_.weights
        )

    def test_cache_round_trip(self, tmp_path, forest, data, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        from repro.parallel.cache import ArtifactCache

        cache = ArtifactCache(tmp_path / "cache")
        cache.store_model("forest-key", forest)
        restored = cache.load_model("forest-key")
        assert np.array_equal(
            restored.predict(data.X), forest.predict(data.X)
        )

"""Tests for `repro bench` (schema) and benchmarks/compare.py (CI gate)."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.bench import SCHEMA, render_document, run_bench, write_document
from repro.errors import ConfigError


def _load_compare_module():
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "compare.py"
    spec = importlib.util.spec_from_file_location("bench_compare", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def bench_document():
    return run_bench(preset="tiny", rounds=1)


class TestRunBench:
    def test_schema_shape(self, bench_document):
        assert bench_document["schema"] == SCHEMA
        assert bench_document["preset"] == "tiny"
        assert bench_document["rounds"] == 1
        assert set(bench_document["versions"]) == {"repro", "numpy", "python"}
        names = [b["name"] for b in bench_document["benchmarks"]]
        assert names == [
            "fit_m5p", "predict_m5p", "predict_compiled_10k",
            "predict_interpreted_10k", "predict_forest_10k",
            "predict_forest_interpreted_10k", "cross_validate",
            "suite_simulate",
        ]

    def test_throughput_cases_report_rows_per_s(self, bench_document):
        by_name = {b["name"]: b for b in bench_document["benchmarks"]}
        for name in (
            "predict_compiled_10k", "predict_interpreted_10k",
            "predict_forest_10k", "predict_forest_interpreted_10k",
        ):
            assert by_name[name]["rows_per_s"] > 0
        assert "rows_per_s" not in by_name["fit_m5p"]

    def test_timings_positive_and_consistent(self, bench_document):
        for entry in bench_document["benchmarks"]:
            assert 0 < entry["min_s"] <= entry["mean_s"] <= entry["max_s"]
            assert entry["rounds"] == 1

    def test_document_is_json_serializable(self, bench_document, tmp_path):
        out = tmp_path / "bench.json"
        write_document(bench_document, str(out))
        assert json.loads(out.read_text())["schema"] == SCHEMA

    def test_render_mentions_every_benchmark(self, bench_document):
        text = render_document(bench_document)
        for entry in bench_document["benchmarks"]:
            assert entry["name"] in text

    def test_invalid_rounds(self):
        with pytest.raises(ConfigError):
            run_bench(preset="tiny", rounds=0)


class TestCompareScript:
    @pytest.fixture(scope="class")
    def compare(self):
        return _load_compare_module()

    def _write(self, path, entries, schema="repro"):
        if schema == "repro":
            payload = {
                "benchmarks": [
                    {"name": n, "mean_s": m} for n, m in entries.items()
                ]
            }
        else:  # pytest-benchmark layout
            payload = {
                "benchmarks": [
                    {"name": n, "stats": {"mean": m}} for n, m in entries.items()
                ]
            }
        path.write_text(json.dumps(payload))
        return str(path)

    def test_within_tolerance_passes(self, compare, tmp_path):
        current = self._write(tmp_path / "c.json", {"fit": 1.2})
        baseline = self._write(tmp_path / "b.json", {"fit": 1.0})
        assert compare.main([current, baseline, "--tolerance", "0.30"]) == 0

    def test_regression_fails(self, compare, tmp_path):
        current = self._write(tmp_path / "c.json", {"fit": 1.5})
        baseline = self._write(tmp_path / "b.json", {"fit": 1.0})
        assert compare.main([current, baseline, "--tolerance", "0.30"]) == 1

    def test_improvement_passes(self, compare, tmp_path):
        current = self._write(tmp_path / "c.json", {"fit": 0.2})
        baseline = self._write(tmp_path / "b.json", {"fit": 1.0})
        assert compare.main([current, baseline]) == 0

    def test_new_benchmark_passes(self, compare, tmp_path):
        current = self._write(tmp_path / "c.json", {"fit": 1.0, "new": 9.0})
        baseline = self._write(tmp_path / "b.json", {"fit": 1.0})
        assert compare.main([current, baseline]) == 0

    def test_pytest_benchmark_schema(self, compare, tmp_path):
        current = self._write(
            tmp_path / "c.json", {"fit": 2.0}, schema="pytest"
        )
        baseline = self._write(tmp_path / "b.json", {"fit": 1.0})
        assert compare.main([current, baseline]) == 1

    def test_update_rewrites_baseline(self, compare, tmp_path):
        current = self._write(tmp_path / "c.json", {"fit": 2.0})
        baseline = tmp_path / "b.json"
        assert compare.main([current, str(baseline), "--update"]) == 0
        means = compare.load_means(str(baseline))
        assert means == {"fit": 2.0}

    def test_checked_in_baseline_parses(self, compare):
        baseline = (
            Path(__file__).resolve().parent.parent / "benchmarks" / "baseline.json"
        )
        means = compare.load_means(str(baseline))
        assert means and all(m > 0 for m in means.values())


class TestCliBenchAndCache:
    def test_bench_writes_json(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        out = tmp_path / "bench.json"
        assert main([
            "bench", "--preset", "tiny", "--rounds", "1", "--out", str(out)
        ]) == 0
        document = json.loads(out.read_text())
        assert document["schema"] == SCHEMA
        assert "fit_m5p" in capsys.readouterr().out

    def test_cache_info_and_clear(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.experiments.data import artifact_cache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = artifact_cache()
        from tests.test_parallel_exec import _tiny_dataset

        cache.store_dataset(["k"], _tiny_dataset())
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out
        assert main(["cache", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert cache.info().n_entries == 0

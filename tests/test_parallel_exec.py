"""Unit tests for the execution layer: executors, seeding, artifact cache."""

import numpy as np
import pytest

from repro.datasets.dataset import Dataset
from repro.errors import ConfigError, ReproError
from repro.parallel import (
    ArtifactCache,
    parallel_map,
    parallel_starmap,
    resolve_executor,
    resolve_jobs,
    spawn_seeds,
)
from repro.parallel.executor import EXECUTOR_ENV, JOBS_ENV


def _square(x):
    return x * x


def _add(a, b):
    return a + b


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_count(self):
        assert resolve_jobs(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs(None) == 5

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs(2) == 2

    def test_all_cores(self):
        assert resolve_jobs(-1) >= 1

    def test_env_all_cores(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "-1")
        assert resolve_jobs(None) >= 1

    @pytest.mark.parametrize("bad", [0, -2, 1.5, "two"])
    def test_invalid_counts(self, bad):
        with pytest.raises(ConfigError):
            resolve_jobs(bad)

    def test_invalid_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ConfigError):
            resolve_jobs(None)


class TestResolveExecutor:
    def test_serial_for_one_worker(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert resolve_executor(None, 1) == "serial"

    def test_processes_for_many(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert resolve_executor(None, 4) == "processes"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "threads")
        assert resolve_executor(None, 4) == "threads"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "threads")
        assert resolve_executor("serial", 4) == "serial"

    def test_unknown_kind(self):
        with pytest.raises(ConfigError):
            resolve_executor("cloud", 2)


class TestParallelMap:
    def test_serial_matches_loop(self):
        assert parallel_map(_square, range(7), n_jobs=1) == [
            x * x for x in range(7)
        ]

    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_parallel_preserves_order(self, executor):
        result = parallel_map(_square, range(11), n_jobs=2, executor=executor)
        assert result == [x * x for x in range(11)]

    def test_empty_items(self):
        assert parallel_map(_square, [], n_jobs=4) == []

    def test_unpicklable_task_falls_back(self):
        captured = []
        with pytest.warns(RuntimeWarning, match="not picklable"):
            result = parallel_map(
                lambda x: captured.append(x) or x + 1,
                [1, 2, 3],
                n_jobs=2,
                executor="processes",
            )
        assert result == [2, 3, 4]
        assert sorted(captured) == [1, 2, 3]

    def test_starmap(self):
        assert parallel_starmap(_add, [(1, 2), (3, 4)], n_jobs=2) == [3, 7]

    def test_exceptions_propagate(self):
        def boom(x):
            raise ValueError(f"bad {x}")

        with pytest.raises(ValueError, match="bad 0"):
            parallel_map(boom, [0, 1], n_jobs=1)


class TestSpawnSeeds:
    def test_deterministic_for_int(self):
        a = [s.generate_state(2).tolist() for s in spawn_seeds(7, 3)]
        b = [s.generate_state(2).tolist() for s in spawn_seeds(7, 3)]
        assert a == b

    def test_children_differ(self):
        states = {tuple(s.generate_state(2)) for s in spawn_seeds(7, 5)}
        assert len(states) == 5

    def test_generator_spawning_deterministic(self):
        a = spawn_seeds(np.random.default_rng(3), 2)
        b = spawn_seeds(np.random.default_rng(3), 2)
        assert [s.generate_state(1)[0] for s in a] == [
            s.generate_state(1)[0] for s in b
        ]

    def test_seed_sequence_input(self):
        root = np.random.SeedSequence(11)
        assert len(spawn_seeds(root, 4)) == 4


def _tiny_dataset():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(30, 3))
    y = X @ np.array([1.0, -2.0, 0.5]) + rng.normal(scale=0.1, size=30)
    return Dataset(X, y, ["a", "b", "c"], meta={"workload": ["w"] * 30})


class TestArtifactCache:
    def test_path_is_deterministic(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.path_for("dataset", ["x", 1]) == cache.path_for(
            "dataset", ["x", 1]
        )

    def test_key_change_changes_path(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.path_for("dataset", ["x", 1]) != cache.path_for(
            "dataset", ["x", 2]
        )

    def test_kind_namespaces_digest(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert (
            cache.path_for("dataset", ["k"]).stem
            != cache.path_for("model", ["k"]).stem
        )

    def test_unknown_kind(self, tmp_path):
        with pytest.raises(ReproError):
            ArtifactCache(tmp_path).path_for("weights", ["k"])

    def test_dataset_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        dataset = _tiny_dataset()
        assert cache.load_dataset(["k"]) is None
        cache.store_dataset(["k"], dataset)
        loaded = cache.load_dataset(["k"])
        assert np.allclose(loaded.X, dataset.X)
        assert np.allclose(loaded.y, dataset.y)
        assert list(loaded.meta["workload"]) == ["w"] * 30

    def test_model_round_trip(self, tmp_path):
        from repro.core.tree import M5Prime

        cache = ArtifactCache(tmp_path)
        dataset = _tiny_dataset()
        model = M5Prime(min_instances=5).fit(dataset)
        assert cache.load_model(["m"]) is None
        cache.store_model(["m"], model)
        loaded = cache.load_model(["m"])
        assert np.array_equal(loaded.predict(dataset.X), model.predict(dataset.X))

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store_dataset(["k"], _tiny_dataset())
        path = cache.path_for("dataset", ["k"])
        path.write_text("not,a,valid\ndataset")
        assert cache.load_dataset(["k"]) is None
        assert not path.exists()

    def test_info_and_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.info().n_entries == 0
        cache.store_dataset(["k"], _tiny_dataset())
        info = cache.info()
        assert info.n_entries == 1
        assert info.total_bytes > 0
        assert "dataset-" in info.entries[0]
        assert cache.clear() == 1
        assert cache.info().n_entries == 0

    def test_clear_missing_directory(self, tmp_path):
        assert ArtifactCache(tmp_path / "absent").clear() == 0

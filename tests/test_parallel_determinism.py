"""Determinism suite: serial and parallel runs must be bit-identical.

The contract the parallel layer sells is that ``n_jobs`` is purely an
execution detail — every hot path pre-resolves its randomness, so worker
count can never leak into results.  These tests pin that contract for
cross validation, bagging and suite simulation, plus the artifact
cache's hit/invalidate behavior.
"""

import functools

import numpy as np
import pytest

from repro.baselines import BaggedM5
from repro.core.tree import M5Prime
from repro.datasets.synthetic import figure1_dataset
from repro.errors import ConfigError
from repro.evaluation import cross_validate
from repro.experiments import ExperimentConfig
from repro.experiments import data as data_module
from repro.experiments.data import experiment_fingerprint, suite_dataset
from repro.workloads import simulate_suite


@pytest.fixture(scope="module")
def dataset():
    return figure1_dataset(n=300, noise_sd=0.1, rng=0)


FACTORY = functools.partial(M5Prime, min_instances=30)


class TestCrossValidationDeterminism:
    def test_parallel_matches_serial_bitwise(self, dataset):
        serial = cross_validate(FACTORY, dataset, n_folds=5, rng=3, n_jobs=1)
        threaded = cross_validate(FACTORY, dataset, n_folds=5, rng=3, n_jobs=2)
        assert np.array_equal(serial.predictions, threaded.predictions)
        assert np.array_equal(serial.actuals, threaded.actuals)
        assert [f.to_dict() for f in serial.folds] == [
            f.to_dict() for f in threaded.folds
        ]

    def test_process_pool_matches_serial(self, dataset):
        serial = cross_validate(FACTORY, dataset, n_folds=4, rng=1, n_jobs=1)
        pooled = cross_validate(
            FACTORY, dataset, n_folds=4, rng=1, n_jobs=2
        )
        assert np.array_equal(serial.predictions, pooled.predictions)

    @pytest.mark.filterwarnings("ignore:parallel_map.*not picklable")
    def test_rng_taking_factory_is_reproducible(self, dataset):
        def factory(rng):
            # Derive the member seed from the fold's generator: a learner
            # that is stochastic per fold but stable per (rng, n_folds).
            return M5Prime(min_instances=20 + int(rng.integers(0, 2)))

        a = cross_validate(factory, dataset, n_folds=4, rng=9, n_jobs=1)
        b = cross_validate(factory, dataset, n_folds=4, rng=9, n_jobs=2)
        assert np.array_equal(a.predictions, b.predictions)

    def test_too_many_folds_raises_config_error(self, dataset):
        subset = dataset.subset(np.arange(6))
        with pytest.raises(ConfigError, match="6 instances"):
            cross_validate(FACTORY, subset, n_folds=7)

    def test_error_message_names_both_sides(self, dataset):
        subset = dataset.subset(np.arange(4))
        with pytest.raises(ConfigError, match="5-fold"):
            cross_validate(FACTORY, subset, n_folds=5)


class TestBaggingDeterminism:
    def test_parallel_matches_serial_bitwise(self, dataset):
        serial = BaggedM5(
            n_estimators=4, min_instances=30, seed=5, n_jobs=1
        ).fit(dataset)
        parallel = BaggedM5(
            n_estimators=4, min_instances=30, seed=5, n_jobs=2
        ).fit(dataset)
        assert np.array_equal(
            serial.predict(dataset.X), parallel.predict(dataset.X)
        )

    def test_member_trees_identical(self, dataset):
        serial = BaggedM5(n_estimators=3, min_instances=40, seed=2, n_jobs=1)
        parallel = BaggedM5(n_estimators=3, min_instances=40, seed=2, n_jobs=2)
        serial.fit(dataset)
        parallel.fit(dataset)
        for a, b in zip(serial.estimators_, parallel.estimators_):
            assert a.to_text() == b.to_text()


class TestSuiteDeterminism:
    def test_parallel_matches_serial_bitwise(self):
        kwargs = dict(
            sections_per_workload=4, instructions_per_section=128, seed=9
        )
        serial = simulate_suite(n_jobs=1, **kwargs)
        parallel = simulate_suite(n_jobs=2, **kwargs)
        assert np.array_equal(serial.dataset.X, parallel.dataset.X)
        assert np.array_equal(serial.dataset.y, parallel.dataset.y)
        assert list(serial.dataset.meta["workload"]) == list(
            parallel.dataset.meta["workload"]
        )
        assert serial.cpi_by_workload == parallel.cpi_by_workload

    def test_parallel_progress_reports_per_workload(self):
        calls = []
        simulate_suite(
            sections_per_workload=2,
            instructions_per_section=128,
            seed=1,
            n_jobs=2,
            progress=lambda name, done, total: calls.append((name, done, total)),
        )
        assert calls and all(done == total for _, done, total in calls)


class TestDatasetCache:
    def _config(self, **overrides):
        base = dict(
            name="cachetest",
            sections_per_workload=4,
            instructions_per_section=128,
            min_instances=5,
            n_folds=2,
            seed=77,
            use_cache=True,
        )
        base.update(overrides)
        return ExperimentConfig(**base)

    def test_disk_hit_skips_simulation(self, tmp_path, monkeypatch):
        cfg = self._config()
        first = suite_dataset(cfg, cache_dir=tmp_path)
        data_module._MEMORY_CACHE.clear()

        def exploding_simulate(*args, **kwargs):
            raise AssertionError("cache miss: simulation re-ran")

        monkeypatch.setattr(data_module, "simulate_suite", exploding_simulate)
        second = suite_dataset(cfg, cache_dir=tmp_path)
        assert np.array_equal(first.X, second.X)
        assert np.array_equal(first.y, second.y)
        data_module._MEMORY_CACHE.clear()

    def test_config_change_invalidates(self, tmp_path):
        cfg = self._config()
        suite_dataset(cfg, cache_dir=tmp_path)
        changed = cfg.with_overrides(seed=78)
        suite_dataset(changed, cache_dir=tmp_path)
        entries = list(tmp_path.glob("dataset-*.csv"))
        assert len(entries) == 2
        data_module._MEMORY_CACHE.clear()

    def test_fingerprint_ignores_model_params(self):
        cfg = self._config()
        assert experiment_fingerprint(cfg) == experiment_fingerprint(
            cfg.with_overrides(min_instances=99)
        )

    def test_fingerprint_sees_data_params(self):
        cfg = self._config()
        assert experiment_fingerprint(cfg) != experiment_fingerprint(
            cfg.with_overrides(jitter=0.5)
        )

    def test_use_cache_false_writes_nothing(self, tmp_path):
        cfg = self._config(use_cache=False)
        suite_dataset(cfg, cache_dir=tmp_path)
        assert list(tmp_path.iterdir()) == []
        data_module._MEMORY_CACHE.clear()

    def test_parallel_simulation_same_cache_key_content(self, tmp_path):
        cfg = self._config()
        first = suite_dataset(cfg, cache_dir=tmp_path, n_jobs=2)
        data_module._MEMORY_CACHE.clear()
        second = suite_dataset(cfg, cache_dir=tmp_path, n_jobs=1)
        assert np.array_equal(first.X, second.X)
        data_module._MEMORY_CACHE.clear()


class TestFittedTreeCache:
    def test_model_cache_round_trip(self, tmp_path, monkeypatch):
        from repro.experiments import models as models_module

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cfg = ExperimentConfig(
            name="modelcache",
            sections_per_workload=4,
            instructions_per_section=128,
            min_instances=5,
            n_folds=2,
            seed=80,
            use_cache=True,
        )
        first = models_module.fitted_tree(cfg)
        models_module._FITTED.clear()
        second = models_module.fitted_tree(cfg)
        assert first.to_text() == second.to_text()
        assert len(list((tmp_path / "artifacts").glob("model-*.json"))) == 1
        models_module._FITTED.clear()
        data_module._MEMORY_CACHE.clear()

"""Tests for the deterministic loader fuzzer."""

import pytest

import repro.conformance.fuzz as fuzz_module
from repro.conformance.fuzz import (
    TARGETS,
    _seed_documents,
    mutate_document,
    run_fuzz,
)
from repro.errors import ConfigError, ParseError


class TestDeterminism:
    def test_same_triple_same_bytes(self):
        seed_doc = b"@relation r\n@attribute a numeric\n@data\n1.0,2.0\n"
        first = mutate_document(seed_doc, 2007, 0, 17)
        second = mutate_document(seed_doc, 2007, 0, 17)
        assert first == second

    def test_different_iterations_differ(self):
        seed_doc = b"@relation r\n@attribute a numeric\n@data\n1.0,2.0\n"
        outputs = {mutate_document(seed_doc, 2007, 0, i) for i in range(20)}
        assert len(outputs) > 1

    def test_seed_corpus_is_deterministic(self):
        assert _seed_documents(2007) == _seed_documents(2007)

    def test_runs_are_reproducible(self, tmp_path):
        a = run_fuzz(seed=11, iterations=30, reproducer_dir=tmp_path / "a")
        b = run_fuzz(seed=11, iterations=30, reproducer_dir=tmp_path / "b")
        assert a.n_parse_errors == b.n_parse_errors
        assert a.n_valid == b.n_valid
        assert len(a.crashes) == len(b.crashes)


class TestContract:
    def test_no_crashes_on_smoke_budget(self, tmp_path):
        result = run_fuzz(seed=2007, iterations=60, reproducer_dir=tmp_path)
        assert result.n_iterations == 60 * len(TARGETS)
        assert result.crashes == [], [
            (c.target, c.iteration, c.exception, c.message)
            for c in result.crashes
        ]
        assert result.to_report().exit_code() == 0

    def test_seconds_budget_terminates(self, tmp_path):
        result = run_fuzz(seed=2007, seconds=0.2, reproducer_dir=tmp_path)
        assert result.elapsed_seconds < 5.0
        assert result.n_iterations > 0

    def test_unknown_target_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            run_fuzz(seed=1, iterations=1, targets=("ini",),
                     reproducer_dir=tmp_path)

    def test_target_subset(self, tmp_path):
        result = run_fuzz(seed=3, iterations=10, targets=("csv",),
                          reproducer_dir=tmp_path)
        assert result.n_iterations == 10


class TestCrashTriage:
    def test_crash_is_recorded_and_quarantined(self, tmp_path, monkeypatch):
        def crashing(text):
            raise KeyError("loader bug")

        def crashing_file(path):
            raise KeyError("loader bug")

        real = fuzz_module._loaders()

        def patched():
            loaders = dict(real)
            loaders["csv"] = (crashing, crashing_file, ".csv")
            return loaders

        monkeypatch.setattr(fuzz_module, "_loaders", patched)
        result = run_fuzz(seed=5, iterations=4, targets=("csv",),
                          reproducer_dir=tmp_path)
        assert len(result.crashes) == 4
        crash = result.crashes[0]
        assert crash.exception == "KeyError"
        assert crash.target == "csv"
        assert crash.reproducer is not None
        reproducers = list(tmp_path.glob("csv-*.bin"))
        assert reproducers
        # The quarantined bytes replay the exact mutated document.
        expected = mutate_document(
            _seed_documents(5)["csv"][0], 5, TARGETS.index("csv"), 0
        )
        assert any(p.read_bytes() == expected for p in reproducers)

    def test_parse_error_is_not_a_crash(self, tmp_path, monkeypatch):
        def rejecting(text):
            raise ParseError("typed failure")

        def rejecting_file(path):
            raise ParseError("typed failure")

        real = fuzz_module._loaders()

        def patched():
            loaders = dict(real)
            loaders["arff"] = (rejecting, rejecting_file, ".arff")
            return loaders

        monkeypatch.setattr(fuzz_module, "_loaders", patched)
        result = run_fuzz(seed=5, iterations=5, targets=("arff",),
                          reproducer_dir=tmp_path)
        assert result.crashes == []
        assert result.n_parse_errors == 5

    def test_report_carries_fuzz001(self, tmp_path, monkeypatch):
        def crashing(text):
            raise ZeroDivisionError("boom")

        def crashing_file(path):
            raise ZeroDivisionError("boom")

        real = fuzz_module._loaders()

        def patched():
            loaders = dict(real)
            loaders["model"] = (crashing, crashing_file, ".json")
            return loaders

        monkeypatch.setattr(fuzz_module, "_loaders", patched)
        result = run_fuzz(seed=5, iterations=1, targets=("model",),
                          reproducer_dir=tmp_path)
        report = result.to_report()
        assert report.exit_code() == 2
        assert all(d.rule_id == "FUZZ001" for d in report.diagnostics)
        assert "ZeroDivisionError" in report.render_text()

"""Tests for the Figure 3 ASCII scatter and assorted smaller surfaces."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.experiments.figure3 import ascii_scatter
from repro.simulator import StoreBuffer
from repro.simulator.memdep import NO_BLOCK


class TestAsciiScatter:
    def test_dimensions(self):
        x = np.linspace(0, 10, 200)
        text = ascii_scatter(x, x, width=40, height=10)
        lines = text.splitlines()
        assert len(lines) == 12  # grid + rule + caption
        assert all(len(line) == 40 for line in lines[:10])

    def test_unity_line_present(self):
        x = np.linspace(0, 10, 50)
        text = ascii_scatter(x, x)
        assert "/" in text
        assert "unity line" in text

    def test_perfect_predictions_hug_the_diagonal(self):
        x = np.linspace(0.5, 9.5, 500)
        text = ascii_scatter(x, x, width=30, height=15)
        grid = text.splitlines()[:15]
        # Every shaded cell must be adjacent to a diagonal cell; in a
        # perfect scatter the marks sit on the unity line itself, so the
        # diagonal characters get overdrawn by shades.
        shades = set(".:*#")
        marked = [
            (r, c)
            for r, row in enumerate(grid)
            for c, ch in enumerate(row)
            if ch in shades
        ]
        assert marked
        for row, col in marked:
            expected_col_lo = (15 - 1 - row - 1) / 15 * 29
            expected_col_hi = (15 - row + 1) / 15 * 29
            assert expected_col_lo - 3 <= col <= expected_col_hi + 3

    def test_handles_constant_series(self):
        x = np.full(10, 2.0)
        text = ascii_scatter(x, x)
        assert text  # must not divide by zero

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=2, max_size=200)
    )
    def test_never_crashes(self, values):
        x = np.asarray(values)
        text = ascii_scatter(x, x * 0.9 + 0.1)
        assert "unity line" in text


class TestStoreBufferProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["load", "store", "advance"]),
                st.integers(0, 1 << 12),
                st.sampled_from([4, 8, 16]),
                st.booleans(),
                st.booleans(),
            ),
            min_size=1,
            max_size=100,
        ),
        st.integers(1, 64),
    )
    def test_never_blocks_without_a_store(self, operations, window):
        """A load can only block if *some* store preceded it in-window."""
        buffer = StoreBuffer(window)
        stores_seen = 0
        for op, addr, size, sta, std in operations:
            if op == "store":
                buffer.push_store(addr, size, sta, std)
                stores_seen += 1
            elif op == "advance":
                buffer.advance(1)
            else:
                outcome = buffer.check_load(addr, size)
                if stores_seen == 0:
                    assert outcome == NO_BLOCK

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 1 << 12), st.sampled_from([4, 8]), st.integers(1, 32))
    def test_expiry_is_complete(self, addr, size, window):
        buffer = StoreBuffer(window)
        buffer.push_store(addr, size, sta=True, std=True)
        buffer.advance(window + 1)
        assert buffer.check_load(addr, size) == NO_BLOCK
        assert buffer.occupancy == 0


class TestCliDescribe:
    def test_describe_prints_profile(self, tmp_path, capsys, suite_dataset):
        from repro.datasets.csvio import save_csv

        path = tmp_path / "d.csv"
        save_csv(suite_dataset, path)
        assert main(["describe", "--data", str(path)]) == 0
        out = capsys.readouterr().out
        assert "column" in out
        assert "per-workload mean CPI" in out

    def test_train_dot_output(self, tmp_path, capsys, suite_dataset):
        from repro.datasets.csvio import save_csv

        data_path = tmp_path / "d.csv"
        save_csv(suite_dataset, data_path)
        dot_path = tmp_path / "tree.dot"
        assert main([
            "train", "--data", str(data_path), "--min-instances", "12",
            "--dot", str(dot_path),
        ]) == 0
        assert dot_path.read_text().startswith("digraph m5prime")

"""Tests for the what-if gain estimator and the bagged-tree ensemble."""

import numpy as np
import pytest

from repro.baselines import BaggedM5
from repro.core.analysis import estimate_gain, rank_gains
from repro.core.analysis.whatif import CPI_FLOOR
from repro.core.tree import M5Prime
from repro.datasets.synthetic import figure1_dataset, linear_dataset
from repro.errors import ConfigError, DataError
from repro.evaluation import evaluate_predictions


class TestEstimateGain:
    def test_zero_reduction_is_identity(self, suite_tree, suite_dataset):
        x = suite_dataset.X[0]
        result = estimate_gain(suite_tree, x, "L2M", reduction=0.0)
        assert result.modified_cpi == pytest.approx(result.baseline_cpi)
        assert result.gain_fraction == pytest.approx(0.0)
        assert not result.reclassified

    def test_matches_linear_when_no_reclassification(
        self, suite_tree, suite_dataset
    ):
        x = suite_dataset.X[0].copy()
        leaf = suite_tree.leaf_for(x)
        if not leaf.model.names:
            pytest.skip("constant leaf")
        event = leaf.model.names[0]
        result = estimate_gain(suite_tree, x, event, reduction=0.05)
        if not result.reclassified:
            assert result.gain_fraction == pytest.approx(
                result.linear_gain_fraction, abs=1e-9
            )

    def test_reclassification_detected_on_mcf(self, suite_tree, suite_dataset):
        """Eliminating L2M must move a memory-bound section left of root."""
        labels = suite_dataset.meta["workload"]
        rows = suite_dataset.X[labels == "mcf_like"]
        # Pick the highest-L2M section.
        index = suite_dataset.attribute_index("L2M")
        x = rows[np.argmax(rows[:, index])]
        result = estimate_gain(suite_tree, x, "L2M", reduction=1.0)
        root = suite_tree.root_
        if root.attribute_name == "L2M" and x[index] > root.threshold:
            assert result.reclassified
            assert result.modified_cpi < result.baseline_cpi

    def test_floor_clamps_extrapolation(self, suite_tree, suite_dataset):
        for x in suite_dataset.X[:50]:
            for event in ("L2M", "DtlbLdM"):
                result = estimate_gain(suite_tree, x, event, reduction=1.0)
                assert result.modified_cpi >= CPI_FLOOR - 1e-12

    def test_unknown_event(self, suite_tree, suite_dataset):
        with pytest.raises(DataError):
            estimate_gain(suite_tree, suite_dataset.X[0], "Bogus")

    def test_bad_reduction(self, suite_tree, suite_dataset):
        with pytest.raises(ConfigError):
            estimate_gain(suite_tree, suite_dataset.X[0], "L2M", reduction=1.5)

    def test_width_mismatch(self, suite_tree):
        with pytest.raises(DataError):
            estimate_gain(suite_tree, [1.0, 2.0], "L2M")

    def test_describe(self, suite_tree, suite_dataset):
        result = estimate_gain(suite_tree, suite_dataset.X[0], "L2M")
        assert "L2M" in result.describe()
        assert "CPI" in result.describe()


class TestRankGains:
    def test_sorted_by_gain(self, suite_tree, suite_dataset):
        results = rank_gains(suite_tree, suite_dataset.X[5])
        gains = [result.gain_fraction for result in results]
        assert gains == sorted(gains, reverse=True)

    def test_covers_all_attributes_by_default(self, suite_tree, suite_dataset):
        results = rank_gains(suite_tree, suite_dataset.X[5])
        assert len(results) == len(suite_tree.attributes_)

    def test_event_subset(self, suite_tree, suite_dataset):
        results = rank_gains(
            suite_tree, suite_dataset.X[5], events=("L2M", "BrMisPr")
        )
        assert {result.event for result in results} == {"L2M", "BrMisPr"}


class TestBaggedM5:
    def test_matches_single_tree_on_easy_data(self):
        ds = figure1_dataset(n=800, rng=0)
        ensemble = BaggedM5(n_estimators=5, min_instances=40, seed=0).fit(ds)
        result = evaluate_predictions(ds.y, ensemble.predict(ds.X))
        assert result.correlation > 0.99

    def test_improves_on_noisy_data(self):
        ds = figure1_dataset(n=600, noise_sd=0.4, rng=0)
        single = M5Prime(min_instances=30).fit(ds)
        ensemble = BaggedM5(n_estimators=15, min_instances=30, seed=0).fit(ds)
        from repro.datasets.synthetic import figure1_dataset as fresh

        test = fresh(n=600, noise_sd=0.0, rng=99)
        single_rae = evaluate_predictions(test.y, single.predict(test.X)).rae
        ensemble_rae = evaluate_predictions(test.y, ensemble.predict(test.X)).rae
        assert ensemble_rae <= single_rae * 1.05

    def test_prediction_is_member_mean(self):
        ds = linear_dataset([2.0], n=120, noise_sd=0.05, rng=0)
        ensemble = BaggedM5(n_estimators=3, min_instances=10, seed=0).fit(ds)
        stacked = np.vstack([m.predict(ds.X) for m in ensemble.estimators_])
        assert np.allclose(ensemble.predict(ds.X), stacked.mean(axis=0))

    def test_deterministic_given_seed(self):
        ds = linear_dataset([1.0], n=100, noise_sd=0.1, rng=0)
        a = BaggedM5(n_estimators=3, seed=7).fit(ds).predict(ds.X)
        b = BaggedM5(n_estimators=3, seed=7).fit(ds).predict(ds.X)
        assert np.array_equal(a, b)

    def test_mean_leaves(self):
        ds = figure1_dataset(n=400, rng=0)
        ensemble = BaggedM5(n_estimators=4, min_instances=30, seed=0).fit(ds)
        assert ensemble.mean_leaves_ >= 1.0

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            BaggedM5(n_estimators=0)
        with pytest.raises(ConfigError):
            BaggedM5(sample_fraction=0.0)


class TestGeneralizationExperiment:
    def test_runs_at_tiny_scale(self):
        from repro.experiments import ExperimentConfig, run_experiment

        report = run_experiment("E3", ExperimentConfig.tiny())
        assert report.measured["workloads"] == "11"
        assert "held-out workload" in report.body

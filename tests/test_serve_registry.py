"""Model registry: publish/resolve/alias, specs, and integrity."""

import json

import numpy as np
import pytest

from repro.core.tree import M5Prime
from repro.errors import RegistryError
from repro.serve.registry import ModelRegistry, parse_spec


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


class TestParseSpec:
    def test_bare_name_implies_latest(self):
        assert parse_spec("cpi-tree") == ("cpi-tree", "latest")

    def test_explicit_version(self):
        assert parse_spec("cpi-tree@3") == ("cpi-tree", "3")

    def test_alias(self):
        assert parse_spec("cpi-tree@prod") == ("cpi-tree", "prod")

    @pytest.mark.parametrize("bad", ["", "  ", "UPPER", "-lead", "a@", "a b"])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(RegistryError):
            parse_spec(bad)


class TestPublishResolve:
    def test_publish_then_resolve_latest(self, registry, suite_tree,
                                         suite_dataset):
        record = registry.publish("cpi-tree", suite_tree)
        assert record.spec == "cpi-tree@1"
        assert record.attributes == tuple(suite_tree.attributes_)
        loaded, resolved = registry.resolve("cpi-tree@latest")
        assert resolved.spec == "cpi-tree@1"
        assert np.array_equal(
            loaded.predict(suite_dataset.X), suite_tree.predict(suite_dataset.X)
        )

    def test_versions_increment(self, registry, suite_tree):
        assert registry.publish("m", suite_tree).version == 1
        assert registry.publish("m", suite_tree).version == 2
        assert registry.names() == {"m": 2}
        _, record = registry.resolve("m@1")
        assert record.version == 1

    def test_alias_resolution(self, registry, suite_tree):
        registry.publish("m", suite_tree)
        registry.publish("m", suite_tree)
        registry.alias("m", "prod", version=1)
        _, record = registry.resolve("m@prod")
        assert record.version == 1
        registry.alias("m", "prod")  # re-point at current latest
        _, record = registry.resolve("m@prod")
        assert record.version == 2

    def test_publish_rejects_unfitted(self, registry):
        with pytest.raises(RegistryError):
            registry.publish("m", M5Prime())

    def test_publish_rejects_spec_with_version(self, registry, suite_tree):
        with pytest.raises(RegistryError):
            registry.publish("m@1", suite_tree)

    def test_unknown_name_and_version(self, registry, suite_tree):
        with pytest.raises(RegistryError):
            registry.resolve("ghost")
        registry.publish("m", suite_tree)
        with pytest.raises(RegistryError):
            registry.resolve("m@9")
        with pytest.raises(RegistryError):
            registry.resolve("m@no-such-alias")

    def test_records_listing_and_render(self, registry, suite_tree):
        registry.publish("a", suite_tree)
        registry.publish("b", suite_tree, aliases=["prod"])
        specs = [r.spec for r in registry.records()]
        assert specs == ["a@1", "b@1"]
        text = registry.render()
        assert "a@1" in text and "b@1" in text and "prod" in text


class TestIntegrity:
    def test_corrupt_blob_raises_and_quarantines(self, registry, suite_tree):
        record = registry.publish("m", suite_tree)
        blob = registry.directory / record.blob
        blob.write_text(blob.read_text()[:50])  # truncate
        with pytest.warns(RuntimeWarning, match="quarantined"):
            with pytest.raises(RegistryError, match="missing or corrupt"):
                registry.resolve("m@1")
        assert not blob.exists()
        assert (registry.cache.quarantine_directory / record.blob).exists()

    def test_missing_blob_raises(self, registry, suite_tree):
        record = registry.publish("m", suite_tree)
        (registry.directory / record.blob).unlink()
        sidecar = registry.cache.checksum_path(registry.directory / record.blob)
        sidecar.unlink()
        with pytest.raises(RegistryError, match="missing or corrupt"):
            registry.resolve("m")

    def test_malformed_manifest_raises(self, registry, suite_tree):
        registry.publish("m", suite_tree)
        registry.manifest_path.write_text("{not json")
        with pytest.raises(RegistryError, match="unreadable manifest"):
            registry.resolve("m")

    def test_wrong_schema_manifest_raises(self, registry):
        registry.directory.mkdir(parents=True, exist_ok=True)
        registry.manifest_path.write_text(json.dumps({"schema": "other/9"}))
        with pytest.raises(RegistryError, match="not a repro-registry/1"):
            registry.records()

    def test_empty_registry_lists_nothing(self, registry):
        assert registry.records() == []
        assert registry.names() == {}

"""Calibration artifact: roundtrip, digests, staleness, storage."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ParseError, StaleCalibrationError
from repro.fastsim import (
    CALIBRATION_SCHEMA,
    RESIDUAL_FEATURE_NAMES,
    Calibration,
    analytic_sections,
    get_calibration,
    load_calibration,
    machine_fingerprint,
    phase_key,
    store_calibration,
    suite_phases,
)
from repro.parallel.cache import ArtifactCache
from repro.simulator import MachineConfig
from repro.workloads import PhaseParams, spec_like_suite
from repro.workloads.suite import workload_fingerprint


class TestRoundtrip:
    def test_to_from_dict_preserves_everything(self, small_calibration):
        payload = small_calibration.to_dict()
        assert payload["schema"] == CALIBRATION_SCHEMA
        restored = Calibration.from_dict(payload)
        assert restored.anchors == small_calibration.anchors
        assert restored.nominal_corrections \
            == small_calibration.nominal_corrections
        assert restored.machine_fingerprint \
            == small_calibration.machine_fingerprint
        assert restored.workload_fingerprint \
            == small_calibration.workload_fingerprint
        assert restored.seed == small_calibration.seed
        assert restored.digest == small_calibration.digest

    def test_restored_model_predicts_identically(
        self, small_calibration, fast_profiles
    ):
        restored = Calibration.from_dict(small_calibration.to_dict())
        phases = suite_phases(fast_profiles)
        _, _, features = analytic_sections(phases)
        assert np.array_equal(
            restored.model.predict(features),
            small_calibration.model.predict(features),
        )

    def test_wrong_schema_rejected(self, small_calibration):
        payload = small_calibration.to_dict()
        payload["schema"] = "repro-fastsim-calibration/0"
        with pytest.raises(ParseError, match="schema"):
            Calibration.from_dict(payload)

    def test_missing_key_rejected(self, small_calibration):
        payload = small_calibration.to_dict()
        del payload["anchors"]
        with pytest.raises(ParseError, match="anchors"):
            Calibration.from_dict(payload)

    def test_non_object_rejected(self):
        with pytest.raises(ParseError):
            Calibration.from_dict([1, 2])  # type: ignore[arg-type]

    def test_digest_tracks_content(self, small_calibration):
        payload = small_calibration.to_dict()
        tampered = Calibration.from_dict(payload)
        key = next(iter(tampered.anchors))
        tampered.anchors[key] += 1e-6
        assert tampered.digest != small_calibration.digest


class TestStaleness:
    def test_fresh_for_own_profiles(self, small_calibration, fast_profiles):
        assert small_calibration.staleness(profiles=fast_profiles) == []
        small_calibration.require_fresh(profiles=fast_profiles)

    def test_machine_change_is_stale(self, small_calibration, fast_profiles):
        other = dataclasses.replace(MachineConfig(), rob_size=128)
        problems = small_calibration.staleness(other, fast_profiles)
        assert any("machine fingerprint" in p for p in problems)
        with pytest.raises(StaleCalibrationError):
            small_calibration.require_fresh(other, fast_profiles)

    def test_uncovered_phase_is_stale(self, small_calibration):
        problems = small_calibration.staleness(profiles=spec_like_suite()[:1])
        assert any("uncalibrated" in p for p in problems)

    def test_default_suite_checks_workload_fingerprint(
        self, small_calibration
    ):
        problems = small_calibration.staleness(profiles=None)
        assert any("workload fingerprint" in p for p in problems)

    def test_correct_rejects_unknown_phase_key(self, small_calibration):
        unknown = PhaseParams(load_fraction=0.11)
        _, cpi, features = analytic_sections([unknown])
        with pytest.raises(StaleCalibrationError, match="recalibrate"):
            small_calibration.correct(cpi, features, [phase_key(unknown)])


class TestCorrection:
    def test_nominal_prediction_is_anchor_only(
        self, small_calibration, fast_profiles
    ):
        """At a phase's nominal point the differential vanishes exactly."""
        phases = suite_phases(fast_profiles)
        _, cpi, features = analytic_sections(phases)
        keys = [phase_key(p) for p in phases]
        predicted = small_calibration.correct(cpi, features, keys)
        expected = cpi * np.exp(
            np.array([small_calibration.anchors[k] for k in keys])
        )
        # The tree's nominal-point predictions are stored from the same
        # features, so delta == 0 up to float noise.
        assert predicted == pytest.approx(expected, rel=1e-9)

    def test_fingerprint_helpers_are_stable(self):
        assert machine_fingerprint() == machine_fingerprint(MachineConfig())
        assert workload_fingerprint(None) == workload_fingerprint(
            spec_like_suite()
        )


class TestStorage:
    def test_store_load_roundtrip(
        self, tmp_path, small_calibration, fast_profiles
    ):
        cache = ArtifactCache(tmp_path)
        store_calibration(cache, small_calibration, profiles=fast_profiles)
        loaded = load_calibration(cache, profiles=fast_profiles, seed=7)
        assert loaded is not None
        assert loaded.digest == small_calibration.digest

    def test_load_miss_returns_none(self, tmp_path, fast_profiles):
        cache = ArtifactCache(tmp_path)
        assert load_calibration(cache, profiles=fast_profiles, seed=7) is None

    def test_key_separates_profiles_and_seed(
        self, tmp_path, small_calibration, fast_profiles
    ):
        cache = ArtifactCache(tmp_path)
        store_calibration(cache, small_calibration, profiles=fast_profiles)
        # Different seed or different profile set: a miss, never a cross-hit.
        assert load_calibration(cache, profiles=fast_profiles, seed=8) is None
        assert load_calibration(cache, profiles=None, seed=7) is None

    def test_get_calibration_serves_the_cached_artifact(
        self, tmp_path, small_calibration, fast_profiles
    ):
        cache = ArtifactCache(tmp_path)
        store_calibration(cache, small_calibration, profiles=fast_profiles)
        served = get_calibration(cache, profiles=fast_profiles, seed=7)
        assert served.digest == small_calibration.digest

"""The serve/loadtest CLI surface: flags, drain-on-SIGTERM, SLO gate.

The drain tests exercise the real contract an orchestrator sees —
``SIGTERM`` to the serving process must finish in-flight work and exit
0 — so they spawn ``python -m repro.cli serve`` as a subprocess and
signal it for real.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.cli import build_parser, main
from repro.serve.registry import ModelRegistry

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


@pytest.fixture
def dataset_csv(tmp_path, suite_dataset):
    from repro.datasets.csvio import save_csv

    path = tmp_path / "sections.csv"
    save_csv(suite_dataset, path)
    return str(path)


@pytest.fixture
def published_registry(tmp_path, suite_tree):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish("cpi-tree", suite_tree, aliases=["prod"])
    return registry


def spawn_serve(registry, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--registry", str(registry.directory),
         "--model", "cpi-tree@prod", "--port", "0", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    # The banner line carries the bound port; a "serving <model>" line
    # may precede it.
    banner = ""
    for _ in range(10):
        line = process.stdout.readline()
        if not line:
            break
        if "listening on http://" in line:
            banner = line
            break
    if not banner:
        process.kill()
        raise AssertionError(f"no banner; stderr: {process.stderr.read()}")
    port = int(banner.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
    deadline = time.time() + 30
    while time.time() < deadline:
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=2
            ) as response:
                if response.status == 200:
                    return process, port
        except OSError:
            time.sleep(0.1)
    process.kill()
    raise AssertionError("server never became healthy")


class TestParser:
    def test_serve_fleet_flags(self):
        args = build_parser().parse_args([
            "serve", "--workers", "4", "--mode", "reuseport",
            "--drain-timeout", "3", "--max-inflight", "32",
        ])
        assert args.workers == 4
        assert args.mode == "reuseport"
        assert args.drain_timeout == 3.0
        assert args.max_inflight == 32

    def test_serve_defaults_single_replica(self):
        args = build_parser().parse_args(["serve"])
        assert args.workers == 1
        assert args.fleet_config is None
        assert args.max_inflight is None

    def test_loadtest_flags(self):
        args = build_parser().parse_args([
            "loadtest", "--data", "d.csv", "--rps", "100",
            "--duration", "2", "--slo", "0.95", "--format", "json",
        ])
        assert args.rps == 100.0
        assert args.duration == 2.0
        assert args.slo == 0.95

    def test_lint_fleet_config_flag(self):
        args = build_parser().parse_args(
            ["lint", "--fleet-config", "fleet.json"]
        )
        assert args.fleet_config == "fleet.json"


class TestSigtermDrain:
    def test_single_server_sigterm_exits_zero(self, published_registry):
        process, port = spawn_serve(published_registry)
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
        assert "drained and stopped" in process.stderr.read()

    def test_fleet_sigterm_exits_zero(self, published_registry):
        process, port = spawn_serve(published_registry, "--workers", "2")
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/fleet/status", timeout=5
        ) as response:
            status = json.loads(response.read())
        assert status["healthy_workers"] == 2
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0
        assert "fleet drained and stopped" in process.stderr.read()


class TestLoadtestCommand:
    def test_slo_met_exit_zero_and_report_envelope(
        self, published_registry, dataset_csv, tmp_path, capsys
    ):
        process, port = spawn_serve(published_registry)
        out = tmp_path / "loadtest.json"
        try:
            code = main([
                "loadtest", "--data", dataset_csv, "--host", "127.0.0.1",
                "--port", str(port), "--rps", "40", "--duration", "1",
                "--out", str(out),
            ])
        finally:
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
        assert code == 0
        printed = capsys.readouterr().out
        assert "SLO" in printed and "met" in printed
        document = json.loads(out.read_text())
        assert document["format"] == "repro-report"
        assert document["kind"] == "loadtest"
        assert document["slo_met"] is True
        assert document["result"]["requests"] == 40
        assert document["result"]["resets"] == 0

    def test_slo_missed_exit_two(self, dataset_csv, capsys):
        # Nothing listens on the discard port: every request resets.
        code = main([
            "loadtest", "--data", dataset_csv, "--port", "9",
            "--rps", "10", "--duration", "0.5", "--timeout", "0.5",
        ])
        assert code == 2
        assert "MISSED" in capsys.readouterr().out


class TestLintFleetConfigCommand:
    def test_broken_config_exits_two_with_fleet_findings(
        self, tmp_path, capsys
    ):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps({"workers": 0, "mode": "bogus"}))
        code = main(["lint", "--fleet-config", str(path)])
        out = capsys.readouterr().out
        assert code == 2
        assert "FLEET002" in out and "FLEET003" in out

    def test_clean_config_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps({"workers": 4}))
        assert main(["lint", "--fleet-config", str(path)]) == 0

"""Preflight failure paths: every probe must fail loudly, never skip."""

import json

import pytest

from repro.core.tree import M5Prime
from repro.core.tree.linear import LinearModel
from repro.core.tree.node import LeafNode, SplitNode, assign_leaf_ids
from repro.serve.check import preflight, render_preflight
from repro.serve.registry import ModelRegistry


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


def _probe(results, name):
    matching = [r for r in results if r.name == name]
    assert matching, f"no {name!r} probe in {[r.name for r in results]}"
    return matching[-1]


def _linear(intercept):
    return LinearModel(
        intercept=float(intercept), indices=(), names=(),
        coefficients=(), n_training=8, training_error=0.1,
    )


def _leaf(mean):
    node = LeafNode(8, 0.5, mean)
    node.model = _linear(mean)
    return node


def _dead_branch_model():
    """a <= 0.5, then a > 0.9 inside it: the inner right leaf is dead."""
    inner = SplitNode(
        8, 0.5, 1.0, attribute_index=0, attribute_name="a",
        threshold=0.9, left=_leaf(1.0), right=_leaf(2.0),
    )
    inner.model = _linear(1.0)
    root = SplitNode(
        16, 0.5, 1.5, attribute_index=0, attribute_name="a",
        threshold=0.5, left=inner, right=_leaf(3.0),
    )
    root.model = _linear(1.5)
    model = M5Prime()
    model.attributes_ = ("a", "b")
    model.target_name_ = "Y"
    model.feature_ranges_ = ((0.0, 1.0), (0.0, 1.0))
    model.root_ = root
    assign_leaf_ids(root)
    return model


class TestResolveFailures:
    def test_unknown_model_name(self, registry, suite_tree):
        registry.publish("cpi-tree", suite_tree)
        results = preflight(registry, model_spec="no-such-model@latest")
        probe = _probe(results, "resolve")
        assert not probe.ok and "no model named" in probe.detail
        assert "FAILED" in render_preflight(results)

    def test_dangling_alias(self, registry, suite_tree):
        registry.publish("cpi-tree", suite_tree)
        # Aliases created through the API are validated, so damage the
        # manifest directly: a stale alias left behind by a rollback.
        manifest = json.loads(registry.manifest_path.read_text())
        manifest["models"]["cpi-tree"]["aliases"]["prod"] = 99
        registry.manifest_path.write_text(json.dumps(manifest))
        results = preflight(registry, model_spec="cpi-tree@prod")
        probe = _probe(results, "resolve")
        assert not probe.ok and "no version 99" in probe.detail

    def test_quarantined_blob(self, registry, suite_tree):
        record = registry.publish("cpi-tree", suite_tree)
        (registry.directory / record.blob).write_text("garbage")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            results = preflight(registry, model_spec="cpi-tree@1")
        probe = _probe(results, "resolve")
        assert not probe.ok and "republish" in probe.detail


class TestVerifyProbeFailures:
    def test_dead_branch_model_fails_verification(self, registry):
        registry.publish("dead", _dead_branch_model(), verify=False)
        results = preflight(registry, model_spec="dead@1")
        probe = _probe(results, "verify")
        assert not probe.ok
        assert "VERIFY005" in probe.detail

    def test_tampered_certificate_detected(self, registry, suite_tree):
        record = registry.publish("cpi-tree", suite_tree)
        path = registry.directory / record.certificate
        document = json.loads(path.read_text())
        document["output"][1] = document["output"][1] + 5.0
        path.write_text(json.dumps(document))
        results = preflight(registry, model_spec="cpi-tree@1")
        probe = _probe(results, "verify")
        assert not probe.ok and "disagrees" in probe.detail

    def test_unreadable_certificate_detected(self, registry, suite_tree):
        record = registry.publish("cpi-tree", suite_tree)
        (registry.directory / record.certificate).write_text("{nope")
        results = preflight(registry, model_spec="cpi-tree@1")
        probe = _probe(results, "verify")
        assert not probe.ok and "malformed" in probe.detail

    def test_model_without_ranges_verifies_with_warning(self, registry,
                                                        suite_tree):
        bare = M5Prime()
        bare.root_ = suite_tree.root_
        bare.attributes_ = suite_tree.attributes_
        bare.target_name_ = suite_tree.target_name_
        registry.publish("bare", bare)
        results = preflight(registry, model_spec="bare@1")
        probe = _probe(results, "verify")
        assert probe.ok and "no certificate" in probe.detail
        # ...but drift monitoring is impossible, and that probe says so.
        assert not _probe(results, "drift").ok


class TestCleanPreflightDetail:
    def test_verify_probe_reports_certified_interval(self, registry,
                                                     suite_tree):
        registry.publish("cpi-tree", suite_tree)
        results = preflight(registry)
        probe = _probe(results, "verify")
        assert probe.ok
        assert "certified output in" in probe.detail

"""Layer 2 of the static verifier: boxes, dead branches, output bounds."""

import copy

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.lint.diagnostics import Severity
from repro.serve.compiled import CompiledTree
from repro.verify import (
    Box,
    analyze,
    full_box,
    linear_model_interval,
    smooth_interval,
    verify_arena,
    widen,
)


def _ids(diagnostics):
    return {d.rule_id for d in diagnostics}


def _error_ids(diagnostics):
    return {d.rule_id for d in diagnostics if d.severity is Severity.ERROR}


class TestBox:
    def test_restrict_le_closes_high(self):
        box = full_box(2, [(0.0, 1.0), (0.0, 1.0)])
        left = box.restrict_le(0, 0.4)
        assert left.interval(0) == (0.0, 0.4)
        assert left.interval(1) == (0.0, 1.0)

    def test_restrict_gt_sets_strict_low(self):
        box = full_box(1, [(0.0, 1.0)])
        right = box.restrict_gt(0, 0.4)
        assert right.interval(0) == (0.4, 1.0)
        assert right.low_strict[0]
        assert not right.is_empty

    def test_contradictory_path_is_empty(self):
        box = full_box(1, [(0.0, 1.0)])
        dead = box.restrict_le(0, 0.3).restrict_gt(0, 0.6)
        assert dead.is_empty
        assert list(dead.empty_features()) == [0]

    def test_point_from_strict_bound_is_empty(self):
        # x > 0.5 and x <= 0.5 leave the degenerate strict point.
        box = full_box(1, [(0.0, 1.0)])
        dead = box.restrict_gt(0, 0.5).restrict_le(0, 0.5)
        assert dead.is_empty

    def test_is_point_only_for_closed_degenerate(self):
        box = full_box(2, [(0.7, 0.7), (0.0, 1.0)])
        assert box.is_point(0)
        assert not box.is_point(1)

    def test_sibling_boxes_do_not_intersect(self):
        box = full_box(1, [(0.0, 1.0)])
        left = box.restrict_le(0, 0.5)
        right = box.restrict_gt(0, 0.5)
        # They share the boundary value 0.5, but the right side is
        # strict there, so the feasible sets are disjoint.
        assert not left.intersects(right)
        assert left.intersects(left.copy())

    def test_full_box_length_mismatch(self):
        with pytest.raises(ConfigError):
            full_box(3, [(0.0, 1.0)])


class TestIntervalArithmetic:
    def test_negative_coefficient_swaps_endpoints(self):
        box = full_box(1, [(2.0, 5.0)])
        low, high = linear_model_interval(1.0, [0], [-2.0], box)
        assert (low, high) == (1.0 - 10.0, 1.0 - 4.0)

    def test_zero_coefficient_on_infinite_domain(self):
        # 0 * inf is NaN in IEEE; the interval lift must treat the term
        # as contributing exactly nothing.
        box = full_box(1, None)
        low, high = linear_model_interval(3.0, [0], [0.0], box)
        assert (low, high) == (3.0, 3.0)

    def test_smooth_interval_blends_endpoints(self):
        blended = smooth_interval((0.0, 1.0), (2.0, 4.0), n_below=10, k=10)
        assert blended == (1.0, 2.5)

    def test_smooth_interval_rejects_zero_weights(self):
        with pytest.raises(ConfigError):
            smooth_interval((0.0, 1.0), (0.0, 1.0), n_below=0, k=0)

    def test_widen_is_outward_and_relative(self):
        low, high = widen((-100.0, 100.0), slack=1e-6)
        assert low < -100.0 < 100.0 < high
        assert high - 100.0 == pytest.approx(1e-4)


def _mini_arena(**overrides):
    """node0: split f0 <= 0.5; node1: leaf LM1; node2: leaf LM2 (term on f1)."""
    fields = dict(
        n_features=2,
        feature=np.array([0, -1, -1], dtype=np.int64),
        threshold=np.array([0.5, np.nan, np.nan]),
        left=np.array([1, -1, -1], dtype=np.int64),
        right=np.array([2, -1, -1], dtype=np.int64),
        parent=np.array([-1, 0, 0], dtype=np.int64),
        leaf_id=np.array([0, 1, 2], dtype=np.int64),
        n_instances=np.array([10, 5, 5], dtype=np.int64),
        has_model=np.array([True, True, True]),
        intercept=np.array([1.5, 1.0, 2.0]),
        term_offset=np.array([0, 0, 0, 1], dtype=np.int64),
        term_feature=np.array([1], dtype=np.int64),
        term_coefficient=np.array([3.0]),
        max_depth=1,
    )
    fields.update(overrides)
    return CompiledTree(**fields)


class TestAnalyzeMiniArena:
    ATTRS = ("a", "b")
    RANGES = [(0.0, 1.0), (0.0, 1.0)]

    def test_clean_analysis_certifies_both_leaves(self):
        analysis = analyze(_mini_arena(), self.ATTRS, self.RANGES)
        assert analysis.diagnostics == []
        assert [leaf.leaf_id for leaf in analysis.leaves] == [1, 2]
        lm2 = analysis.leaves[1]
        # raw = 2.0 + 3.0 * [0, 1]; widening only pads outward.
        assert lm2.raw == (2.0, 5.0)
        assert lm2.output[0] <= 2.0 and lm2.output[1] >= 5.0

    def test_uncovered_region_flagged(self):
        arena = _mini_arena(
            feature=np.array([0, -1], dtype=np.int64),
            threshold=np.array([0.5, np.nan]),
            left=np.array([-1, -1], dtype=np.int64),
            right=np.array([1, -1], dtype=np.int64),
            parent=np.array([-1, 0], dtype=np.int64),
            leaf_id=np.array([0, 1], dtype=np.int64),
            n_instances=np.array([10, 5], dtype=np.int64),
            has_model=np.array([True, True]),
            intercept=np.array([1.5, 1.0]),
            term_offset=np.array([0, 0, 0], dtype=np.int64),
            term_feature=np.array([], dtype=np.int64),
            term_coefficient=np.array([]),
        )
        result = verify_arena(arena, self.ATTRS, self.RANGES)
        uncovered = [
            d for d in result.diagnostics if d.rule_id == "VERIFY006"
        ]
        assert uncovered and "missing child" in uncovered[0].message
        assert result.certificate is None

    def test_dead_branch_outside_domain(self):
        # Threshold above the whole domain: the right branch (a > 2)
        # can never fire.
        arena = _mini_arena(threshold=np.array([2.0, np.nan, np.nan]))
        analysis = analyze(arena, self.ATTRS, self.RANGES)
        dead = [d for d in analysis.diagnostics if d.rule_id == "VERIFY005"]
        assert len(dead) == 1
        assert analysis.dead_nodes == [2]

    def test_invariant_infeasible_branch(self):
        # Split on L2M at 0.5 with L1DM capped at 0.3: the right branch
        # would need L2M > 0.5 > L1DM, violating the Table I hierarchy.
        arena = _mini_arena(
            feature=np.array([1, -1, -1], dtype=np.int64),
            term_feature=np.array([0], dtype=np.int64),
        )
        analysis = analyze(
            arena, ("L1DM", "L2M"), [(0.0, 0.3), (0.0, 1.0)]
        )
        dead = [d for d in analysis.diagnostics if d.rule_id == "VERIFY005"]
        assert len(dead) == 1
        assert "invariant" in dead[0].message

    def test_pinned_feature_coefficient_warns(self):
        analysis = analyze(
            _mini_arena(), self.ATTRS, [(0.0, 1.0), (0.7, 0.7)]
        )
        pinned = [d for d in analysis.diagnostics if d.rule_id == "VERIFY007"]
        assert len(pinned) == 1
        assert pinned[0].severity is Severity.WARNING
        assert "0.7" in pinned[0].message

    def test_no_ranges_is_a_single_warning(self):
        analysis = analyze(_mini_arena(), self.ATTRS, feature_ranges=None)
        assert not analysis.has_ranges
        warnings = [
            d for d in analysis.diagnostics if d.rule_id == "VERIFY008"
        ]
        assert len(warnings) == 1
        assert warnings[0].severity is Severity.WARNING

    def test_smoothing_chain_without_ancestor_model(self):
        arena = _mini_arena(
            has_model=np.array([False, True, True]),
            intercept=np.array([np.nan, 1.0, 2.0]),
        )
        result = verify_arena(
            arena, self.ATTRS, self.RANGES, smoothing_k=15.0
        )
        assert "VERIFY008" in _error_ids(result.diagnostics)
        assert result.certificate is None

    def test_smoothing_widens_toward_ancestor(self):
        result = verify_arena(
            _mini_arena(), self.ATTRS, self.RANGES, smoothing_k=15.0
        )
        assert result.ok and result.certificate is not None
        # LM1 raw output is exactly 1.0; smoothing blends in the root
        # model (1.5), pulling the certified interval strictly up.
        lm1 = result.certificate.leaf(1)
        assert lm1.output[1] > 1.0 + 1e-6


class TestAnalyzeProductionArena:
    def test_suite_tree_is_clean_and_partitioned(self, suite_tree):
        result = verify_arena(
            suite_tree.compiled_,
            suite_tree.attributes_,
            suite_tree.feature_ranges_,
        )
        assert result.ok
        assert result.certificate is not None
        assert len(result.certificate.leaves) == suite_tree.n_leaves

    def test_coefficient_on_pinned_feature_caught(self, suite_tree):
        # Seeded mutation: retarget one model term at a feature whose
        # domain is collapsed to a single point.  The coefficient is
        # then unidentifiable -- VERIFY007 by name.
        arena = copy.deepcopy(suite_tree.compiled_)
        used_by_splits = set(
            int(f) for f in arena.feature[arena.feature >= 0]
        )
        invariant_columns = {
            "InstLd", "InstSt", "BrMisPr", "BrPred", "InstOther",
            "L1DM", "L2M", "DtlbL0LdM", "DtlbLdM", "DtlbLdReM", "Dtlb",
        }
        pinned = next(
            i for i, name in enumerate(suite_tree.attributes_)
            if i not in used_by_splits and name not in invariant_columns
        )
        ranges = list(suite_tree.feature_ranges_)
        ranges[pinned] = (ranges[pinned][0], ranges[pinned][0])
        # VERIFY007 looks at leaf models, so mutate a leaf's term.
        leaf_term = next(
            int(arena.term_offset[node])
            for node in np.flatnonzero(arena.feature < 0)
            if arena.term_offset[node + 1] > arena.term_offset[node]
        )
        arena.term_feature[leaf_term] = pinned
        result = verify_arena(arena, suite_tree.attributes_, ranges)
        assert "VERIFY007" in _ids(result.diagnostics)
        assert "VERIFY007" not in _error_ids(result.diagnostics)

    def test_dead_branch_mutation_caught(self, suite_tree):
        arena = copy.deepcopy(suite_tree.compiled_)
        split = int(np.flatnonzero(arena.feature >= 0)[0])
        f = int(arena.feature[split])
        low, high = suite_tree.feature_ranges_[f]
        arena.threshold[split] = high + abs(high) + 1.0
        result = verify_arena(
            arena, suite_tree.attributes_, suite_tree.feature_ranges_
        )
        assert "VERIFY005" in _error_ids(result.diagnostics)

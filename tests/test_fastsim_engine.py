"""The fast suite engine: determinism, freshness, delegation, jitter."""

import dataclasses

import numpy as np
import pytest

from repro.counters.metrics import PREDICTOR_NAMES
from repro.errors import ConfigError, StaleCalibrationError
from repro.fastsim import fast_suite, phase_key
from repro.simulator import MachineConfig
from repro.workloads import PhaseParams, simulate_suite
from repro.workloads.phases import perturbed, perturbed_batch


@pytest.fixture()
def fast_result(fast_profiles, small_calibration):
    return fast_suite(
        fast_profiles,
        sections_per_workload=10,
        seed=11,
        calibration=small_calibration,
    )


class TestFastSuite:
    def test_shape_and_metadata(self, fast_result, fast_profiles):
        dataset = fast_result.dataset
        assert dataset.n_instances == len(fast_profiles) * 10
        assert tuple(dataset.attributes) == PREDICTOR_NAMES
        assert set(dataset.meta["workload"]) \
            == {p.name for p in fast_profiles}
        assert list(dataset.meta["section"][:10]) == list(range(10))
        assert fast_result.failures == []
        assert set(fast_result.cpi_by_workload) \
            == {p.name for p in fast_profiles}

    def test_repeat_runs_bit_identical(
        self, fast_result, fast_profiles, small_calibration
    ):
        again = fast_suite(
            fast_profiles,
            sections_per_workload=10,
            seed=11,
            calibration=small_calibration,
        )
        assert np.array_equal(again.dataset.X, fast_result.dataset.X)
        assert np.array_equal(again.dataset.y, fast_result.dataset.y)

    def test_seed_changes_jittered_sections(
        self, fast_result, fast_profiles, small_calibration
    ):
        other = fast_suite(
            fast_profiles,
            sections_per_workload=10,
            seed=12,
            calibration=small_calibration,
        )
        assert not np.array_equal(other.dataset.y, fast_result.dataset.y)

    def test_zero_jitter_sections_identical_within_phase(
        self, fast_profiles, small_calibration
    ):
        result = fast_suite(
            fast_profiles,
            sections_per_workload=6,
            seed=11,
            jitter=0.0,
            calibration=small_calibration,
        )
        y = result.dataset.y
        # Single-phase workloads at jitter=0: every section is the
        # nominal expectation, so each workload is one constant.
        assert np.ptp(y[:6]) == 0.0
        assert np.ptp(y[6:]) == 0.0

    def test_cpi_respects_issue_width_floor(self, fast_result):
        machine = MachineConfig()
        assert np.all(fast_result.dataset.y >= 1.0 / machine.issue_width)

    def test_progress_fires_once_per_workload(
        self, fast_profiles, small_calibration
    ):
        calls = []
        fast_suite(
            fast_profiles,
            sections_per_workload=10,
            seed=11,
            calibration=small_calibration,
            progress=lambda name, done, total: calls.append(
                (name, done, total)
            ),
        )
        assert calls == [(p.name, 10, 10) for p in fast_profiles]

    def test_stale_machine_refused(self, fast_profiles, small_calibration):
        other = dataclasses.replace(MachineConfig(), rob_size=128)
        with pytest.raises(StaleCalibrationError):
            fast_suite(
                fast_profiles,
                sections_per_workload=4,
                config=other,
                calibration=small_calibration,
            )

    def test_uncovered_profiles_refused(self, small_calibration):
        with pytest.raises(StaleCalibrationError):
            fast_suite(
                sections_per_workload=4, calibration=small_calibration
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"profiles": []},
            {"sections_per_workload": 0},
            {"instructions_per_section": 32},
        ],
    )
    def test_config_errors(self, fast_profiles, small_calibration, kwargs):
        full = {
            "profiles": fast_profiles,
            "sections_per_workload": 4,
            "calibration": small_calibration,
        }
        full.update(kwargs)
        with pytest.raises(ConfigError):
            fast_suite(**full)


class TestSimulateSuiteDelegation:
    def test_engine_fast_delegates(self, fast_profiles, small_calibration):
        via_suite = simulate_suite(
            fast_profiles,
            sections_per_workload=8,
            seed=11,
            engine="fast",
            calibration=small_calibration,
        )
        direct = fast_suite(
            fast_profiles,
            sections_per_workload=8,
            seed=11,
            calibration=small_calibration,
        )
        assert np.array_equal(via_suite.dataset.X, direct.dataset.X)
        assert np.array_equal(via_suite.dataset.y, direct.dataset.y)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="engine"):
            simulate_suite(engine="warp")

    def test_calibration_with_trace_engine_rejected(self, small_calibration):
        with pytest.raises(ConfigError, match="fast"):
            simulate_suite(calibration=small_calibration)

    def test_policy_with_fast_engine_rejected(self, small_calibration):
        from repro.resilience import RunPolicy

        with pytest.raises(ConfigError, match="polic"):
            simulate_suite(
                engine="fast",
                calibration=small_calibration,
                policy=RunPolicy(),
            )


class TestPerturbedBatch:
    def test_zero_scale_returns_nominal(self):
        params = PhaseParams()
        batch = perturbed_batch(params, np.random.default_rng(0), 0.0, 5)
        assert batch == [params] * 5

    def test_zero_draws(self):
        assert perturbed_batch(PhaseParams(), np.random.default_rng(0),
                               0.08, 0) == []

    @pytest.mark.parametrize("scale,n", [(-0.1, 3), (0.1, -1)])
    def test_invalid_arguments(self, scale, n):
        with pytest.raises(ConfigError):
            perturbed_batch(PhaseParams(), np.random.default_rng(0), scale, n)

    def test_draws_are_valid_phase_params(self):
        params = PhaseParams(load_fraction=0.4, store_fraction=0.3,
                             branch_fraction=0.25)
        batch = perturbed_batch(params, np.random.default_rng(3), 0.3, 200)
        for drawn in batch:
            # __post_init__ validation ran; spot-check the mix invariant
            # the renormalization protects.
            mix = (drawn.load_fraction + drawn.store_fraction
                   + drawn.branch_fraction)
            assert mix <= 1.0 + 1e-9

    def test_deterministic_under_seed(self):
        params = PhaseParams()
        a = perturbed_batch(params, np.random.default_rng(7), 0.08, 20)
        b = perturbed_batch(params, np.random.default_rng(7), 0.08, 20)
        assert a == b

    def test_matches_serial_distribution(self):
        """Batch and serial draws agree in distribution, not in stream."""
        params = PhaseParams()
        rng = np.random.default_rng(5)
        batch = perturbed_batch(params, rng, 0.15, 400)
        serial = [perturbed(params, np.random.default_rng(1000 + i), 0.15)
                  for i in range(400)]
        batch_loads = np.array([p.load_fraction for p in batch])
        serial_loads = np.array([p.load_fraction for p in serial])
        assert batch_loads.mean() == pytest.approx(
            serial_loads.mean(), rel=0.05
        )
        assert batch_loads.std() == pytest.approx(
            serial_loads.std(), rel=0.25
        )

    def test_untouched_fields_preserved(self):
        params = PhaseParams(data_footprint=1 << 22, basic_block_length=17)
        for drawn in perturbed_batch(params, np.random.default_rng(2),
                                     0.2, 10):
            assert drawn.data_footprint == params.data_footprint
            assert drawn.basic_block_length == params.basic_block_length

    def test_phase_key_unaffected_by_jitter_draws(self):
        params = PhaseParams()
        key = phase_key(params)
        perturbed_batch(params, np.random.default_rng(0), 0.2, 5)
        assert phase_key(params) == key

"""Tests for the simulated core, its config and the ISA block."""

import numpy as np
import pytest

from repro.counters import validate_counts
from repro.counters import events as ev
from repro.errors import ConfigError, DataError
from repro.simulator import (
    InstructionBlock,
    KIND_BRANCH,
    KIND_LOAD,
    KIND_OTHER,
    KIND_STORE,
    MachineConfig,
    SimulatedCore,
)
from repro.simulator.isa import CODE_REGION_BASE


def make_block(n=64, base_kind=KIND_OTHER, addr_fn=None, **kwargs):
    kinds = np.full(n, base_kind, dtype=np.uint8)
    addrs = np.zeros(n, dtype=np.int64)
    sizes = np.zeros(n, dtype=np.int64)
    if base_kind in (KIND_LOAD, KIND_STORE):
        sizes[:] = 8
        addrs[:] = [addr_fn(i) if addr_fn else i * 8 for i in range(n)]
    defaults = dict(
        kind=kinds,
        pc=np.arange(n, dtype=np.int64) * 4 + CODE_REGION_BASE,
        addr=addrs,
        size=sizes,
        taken=np.zeros(n, bool),
        lcp=np.zeros(n, bool),
        sta=np.zeros(n, bool),
        std=np.zeros(n, bool),
    )
    defaults.update(kwargs)
    return InstructionBlock(**defaults)


class TestMachineConfig:
    def test_default_is_core2duo_geometry(self):
        config = MachineConfig()
        assert config.l1i.size_bytes == 32 * 1024
        assert config.l1d.size_bytes == 32 * 1024
        assert config.l2.size_bytes == 4 * 1024 * 1024
        assert config.frequency_ghz == 2.4

    def test_dtlb_maps_quarter_of_l2(self):
        config = MachineConfig()
        reach = config.dtlb.entries * config.dtlb.page_bytes
        assert reach == config.l2.size_bytes // 4

    def test_tiny_preset_valid(self):
        assert MachineConfig.tiny().l2.size_bytes == 16 * 1024

    def test_invalid_issue_width(self):
        with pytest.raises(ConfigError):
            MachineConfig(issue_width=0)

    def test_line_size_mismatch_rejected(self):
        from repro.simulator import CacheConfig

        with pytest.raises(ConfigError):
            MachineConfig(
                l1d=CacheConfig(32 * 1024, 8, 32),
                l2=CacheConfig(4 * 1024 * 1024, 16, 64),
            )


class TestInstructionBlock:
    def test_length(self):
        assert len(make_block(10)) == 10

    def test_counts(self):
        block = make_block(10, KIND_LOAD)
        assert block.n_loads == 10
        assert block.n_stores == 0

    def test_mismatched_columns_rejected(self):
        with pytest.raises(DataError):
            make_block(10, pc=np.zeros(5, dtype=np.int64))

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            make_block(0)

    def test_zero_size_memory_op_rejected(self):
        with pytest.raises(DataError):
            make_block(4, KIND_LOAD, size=np.zeros(4, dtype=np.int64))

    def test_bad_ilp_rejected(self):
        with pytest.raises(DataError):
            make_block(4, ilp=1.5)

    def test_misaligned_mask(self):
        block = make_block(2, KIND_LOAD, addr_fn=lambda i: 8 * i + (1 if i else 0))
        assert list(block.misaligned_mask()) == [False, True]

    def test_split_mask(self):
        addrs = np.array([0, 60], dtype=np.int64)
        block = make_block(2, KIND_LOAD)
        block.addr = addrs
        assert list(block.split_mask(64)) == [False, True]


class TestSimulatedCore:
    def test_counts_are_complete_and_valid(self, rng):
        core = SimulatedCore(MachineConfig.tiny(), rng=rng)
        result = core.run_block(make_block(128, KIND_LOAD))
        validate_counts(result.counts)

    def test_instruction_count(self, rng):
        core = SimulatedCore(MachineConfig.tiny(), rng=rng)
        result = core.run_block(make_block(128))
        assert result.counts[ev.INST_RETIRED_ANY.name] == 128

    def test_mix_counters(self, rng):
        core = SimulatedCore(MachineConfig.tiny(), rng=rng)
        kinds = np.array(
            [KIND_LOAD] * 10 + [KIND_STORE] * 5 + [KIND_BRANCH] * 3 + [KIND_OTHER] * 2,
            dtype=np.uint8,
        )
        sizes = np.where((kinds == KIND_LOAD) | (kinds == KIND_STORE), 8, 0)
        block = make_block(20, kind=kinds, size=sizes.astype(np.int64))
        result = core.run_block(block)
        assert result.counts[ev.INST_RETIRED_LOADS.name] == 10
        assert result.counts[ev.INST_RETIRED_STORES.name] == 5
        assert result.counts[ev.BR_INST_RETIRED_ANY.name] == 3

    def test_repeated_address_warms_cache(self, rng):
        core = SimulatedCore(MachineConfig.tiny(), rng=rng)
        block = make_block(64, KIND_LOAD, addr_fn=lambda i: 0x40)
        result = core.run_block(block)
        # One compulsory miss, the rest hit.
        assert result.counts[ev.MEM_LOAD_RETIRED_L1D_LINE_MISS.name] <= 1

    def test_streaming_detected_by_prefetcher(self, rng):
        config = MachineConfig(measurement_noise_sd=0.0)
        core = SimulatedCore(config, rng=rng)
        stream = make_block(512, KIND_LOAD, addr_fn=lambda i: 0x100000 + i * 64)
        result = core.run_block(stream)
        miss_rate = result.counts[ev.MEM_LOAD_RETIRED_L1D_LINE_MISS.name] / 512
        # Without prefetch every access misses (new line each time).
        cold_core = SimulatedCore(
            MachineConfig(prefetch_next_line=False, measurement_noise_sd=0.0),
            rng=np.random.default_rng(0),
        )
        cold = cold_core.run_block(stream)
        cold_rate = cold.counts[ev.MEM_LOAD_RETIRED_L1D_LINE_MISS.name] / 512
        assert cold_rate == pytest.approx(1.0)
        assert miss_rate < 0.5

    def test_state_persists_across_blocks(self, rng):
        core = SimulatedCore(MachineConfig.tiny(), rng=rng)
        block = make_block(32, KIND_LOAD, addr_fn=lambda i: (i % 4) * 64)
        first = core.run_block(block)
        second = core.run_block(block)
        assert (
            second.counts[ev.MEM_LOAD_RETIRED_L1D_LINE_MISS.name]
            <= first.counts[ev.MEM_LOAD_RETIRED_L1D_LINE_MISS.name]
        )

    def test_reset_cold_starts(self, rng):
        core = SimulatedCore(MachineConfig.tiny(), rng=rng)
        # Stride of four lines so the stream prefetcher cannot hide
        # the compulsory misses after the reset.
        block = make_block(32, KIND_LOAD, addr_fn=lambda i: (i % 4) * 256)
        core.run_block(block)
        core.reset()
        result = core.run_block(block)
        assert result.counts[ev.MEM_LOAD_RETIRED_L1D_LINE_MISS.name] >= 4

    def test_load_blocks_from_flagged_stores(self, rng):
        core = SimulatedCore(MachineConfig.tiny(), rng=rng)
        n = 16
        kinds = np.array([KIND_STORE, KIND_LOAD] * (n // 2), dtype=np.uint8)
        addrs = np.repeat(np.arange(n // 2, dtype=np.int64) * 8, 2)
        sta = np.zeros(n, bool)
        sta[kinds == KIND_STORE] = True
        sizes = np.full(n, 8, dtype=np.int64)
        block = make_block(n, kind=kinds, sta=sta, size=sizes, addr=addrs)
        result = core.run_block(block)
        assert result.counts[ev.LOAD_BLOCK_STA.name] == n // 2

    def test_lcp_counted(self, rng):
        core = SimulatedCore(MachineConfig.tiny(), rng=rng)
        lcp = np.zeros(64, bool)
        lcp[:7] = True
        result = core.run_block(make_block(64, lcp=lcp))
        assert result.counts[ev.ILD_STALL.name] == 7

    def test_retired_dtlb_subset_of_all_dtlb(self, rng):
        core = SimulatedCore(MachineConfig.tiny(), rng=rng)
        block = make_block(256, KIND_LOAD, addr_fn=lambda i: i * 4096)
        result = core.run_block(block)
        assert (
            result.counts[ev.MEM_LOAD_RETIRED_DTLB_MISS.name]
            <= result.counts[ev.DTLB_MISSES_MISS_LD.name]
            <= result.counts[ev.DTLB_MISSES_ANY.name] + 1e-9
        )

    def test_cycles_positive_and_match_cpi(self, rng):
        core = SimulatedCore(MachineConfig.tiny(), rng=rng)
        result = core.run_block(make_block(64))
        assert result.cycles > 0
        assert result.cpi == pytest.approx(result.cycles / 64)

    def test_noise_disabled_is_deterministic(self):
        config = MachineConfig(measurement_noise_sd=0.0)
        block = make_block(128, KIND_LOAD)
        a = SimulatedCore(config, rng=1).run_block(block)
        b = SimulatedCore(config, rng=2).run_block(block)
        assert a.cycles == b.cycles

    def test_run_blocks_returns_per_block_results(self, rng):
        core = SimulatedCore(MachineConfig.tiny(), rng=rng)
        results = core.run_blocks([make_block(32), make_block(32)])
        assert len(results) == 2

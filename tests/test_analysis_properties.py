"""Property tests for the analysis layer (contributions and what-if).

Two algebraic contracts, checked with hypothesis over sections drawn
from a fitted tree's own training data plus random perturbations:

* the per-event contributions of a section's leaf model, plus the
  intercept, reconstruct the leaf prediction exactly;
* a what-if gain estimate equals re-routing the modified section
  through the tree and predicting with the destination leaf's model
  (clamped at the CPI floor).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis.contribution import leaf_contributions, rank_events
from repro.core.analysis.whatif import CPI_FLOOR, estimate_gain, rank_gains
from repro.core.tree import M5Prime
from repro.errors import DataError
from repro.workloads import simulate_suite

_SUITE = simulate_suite(
    sections_per_workload=10, instructions_per_section=384, seed=13
).dataset
_MODEL = M5Prime(min_instances=12).fit(_SUITE)

section_indices = st.integers(0, _SUITE.n_instances - 1)


class TestContributionSum:
    @settings(max_examples=60, deadline=None)
    @given(section_indices)
    def test_contributions_reconstruct_leaf_prediction(self, index):
        x = _SUITE.X[index]
        leaf = _MODEL.leaf_for(x)
        contributions = leaf_contributions(_MODEL, x)
        total = leaf.model.intercept + sum(c.cycles for c in contributions)
        assert total == pytest.approx(leaf.model.predict_one(x), abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(section_indices)
    def test_fractions_are_cycles_over_prediction(self, index):
        x = _SUITE.X[index]
        predicted = _MODEL.leaf_for(x).model.predict_one(x)
        for contribution in leaf_contributions(_MODEL, x):
            assert contribution.fraction == pytest.approx(
                contribution.cycles / predicted
            )
            assert contribution.cycles == pytest.approx(
                contribution.coefficient * contribution.value
            )

    @settings(max_examples=30, deadline=None)
    @given(section_indices)
    def test_sorted_by_descending_cycles(self, index):
        contributions = leaf_contributions(_MODEL, _SUITE.X[index])
        cycles = [c.cycles for c in contributions]
        assert cycles == sorted(cycles, reverse=True)

    def test_ranking_covers_all_leaf_events(self):
        ranked = rank_events(_MODEL, _SUITE.X[:20])
        per_section_events = set()
        for x in _SUITE.X[:20]:
            per_section_events |= {
                c.event for c in leaf_contributions(_MODEL, x)
            }
        assert {c.event for c in ranked} == per_section_events


class TestWhatIfRefit:
    @settings(max_examples=60, deadline=None)
    @given(
        section_indices,
        st.sampled_from(_SUITE.attributes),
        st.floats(0.0, 1.0, allow_nan=False),
    )
    def test_gain_matches_manual_rerouting(self, index, event, reduction):
        x = _SUITE.X[index]
        result = estimate_gain(_MODEL, x, event, reduction)

        modified = np.array(x, dtype=np.float64, copy=True)
        position = _MODEL.attributes_.index(event)
        modified[position] -= modified[position] * reduction
        expected_leaf = _MODEL.leaf_for(modified)
        expected_cpi = max(
            float(expected_leaf.model.predict_one(modified)), CPI_FLOOR
        )
        assert result.modified_cpi == expected_cpi
        assert result.modified_leaf == expected_leaf.leaf_id

    @settings(max_examples=40, deadline=None)
    @given(section_indices, st.sampled_from(_SUITE.attributes))
    def test_zero_reduction_changes_nothing(self, index, event):
        result = estimate_gain(_MODEL, _SUITE.X[index], event, reduction=0.0)
        assert result.modified_leaf == result.baseline_leaf
        assert result.modified_cpi == pytest.approx(
            max(result.baseline_cpi, CPI_FLOOR)
        )

    @settings(max_examples=40, deadline=None)
    @given(section_indices, st.sampled_from(_SUITE.attributes))
    def test_gain_fraction_definition(self, index, event):
        result = estimate_gain(_MODEL, _SUITE.X[index], event, reduction=1.0)
        if result.baseline_cpi > 0:
            assert result.gain_fraction == pytest.approx(
                (result.baseline_cpi - result.modified_cpi)
                / result.baseline_cpi
            )
        else:
            assert result.gain_fraction == 0.0

    @settings(max_examples=30, deadline=None)
    @given(section_indices)
    def test_linear_gain_zero_for_absent_events(self, index):
        x = _SUITE.X[index]
        leaf = _MODEL.leaf_for(x)
        absent = [
            name for name in _MODEL.attributes_
            if name not in leaf.model.names
        ]
        if not absent:
            return
        result = estimate_gain(_MODEL, x, absent[0], reduction=1.0)
        assert result.linear_gain_fraction == 0.0

    def test_rank_gains_sorted_best_first(self):
        results = rank_gains(_MODEL, _SUITE.X[0], reduction=1.0)
        gains = [r.gain_fraction for r in results]
        assert gains == sorted(gains, reverse=True)
        assert {r.event for r in results} == set(_MODEL.attributes_)

    def test_invalid_inputs_raise(self):
        with pytest.raises(DataError):
            estimate_gain(_MODEL, _SUITE.X[0], "NOT_AN_EVENT")
        with pytest.raises(DataError):
            estimate_gain(_MODEL, _SUITE.X[0], _SUITE.attributes[0],
                          floor=-1.0)

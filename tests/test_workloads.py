"""Tests for phase parameters, schedules, stream synthesis and profiles."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.simulator.isa import CODE_REGION_BASE, KIND_BRANCH, KIND_LOAD, KIND_STORE
from repro.workloads import (
    PhaseParams,
    PhaseSchedule,
    WorkloadProfile,
    perturbed,
    spec_like_suite,
    synthesize_block,
    workload_by_name,
)


class TestPhaseParams:
    def test_defaults_valid(self):
        PhaseParams()

    def test_fraction_out_of_range(self):
        with pytest.raises(ConfigError):
            PhaseParams(load_fraction=1.5)

    def test_mix_exceeding_one(self):
        with pytest.raises(ConfigError):
            PhaseParams(load_fraction=0.6, store_fraction=0.4, branch_fraction=0.2)

    def test_hot_set_larger_than_footprint(self):
        with pytest.raises(ConfigError):
            PhaseParams(data_footprint=1024, hot_set_bytes=2048)

    def test_hot_code_larger_than_code(self):
        with pytest.raises(ConfigError):
            PhaseParams(code_footprint=1024, code_hot_bytes=2048)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PhaseParams().ilp = 0.9


class TestPerturbed:
    def test_zero_scale_is_identity(self):
        params = PhaseParams()
        assert perturbed(params, rng=0, scale=0.0) is params

    def test_results_stay_valid(self):
        params = PhaseParams(load_fraction=0.4, store_fraction=0.3, branch_fraction=0.25)
        for seed in range(30):
            jittered = perturbed(params, rng=seed, scale=0.3)
            mix = (
                jittered.load_fraction
                + jittered.store_fraction
                + jittered.branch_fraction
            )
            assert mix <= 1.0 + 1e-9

    def test_hidden_fields_jittered_less(self):
        params = PhaseParams(ilp=0.5, hot_fraction=0.5)
        ilp_spread = np.std(
            [perturbed(params, rng=s, scale=0.2).ilp for s in range(200)]
        )
        hot_spread = np.std(
            [perturbed(params, rng=s, scale=0.2).hot_fraction for s in range(200)]
        )
        assert ilp_spread < hot_spread

    def test_negative_scale_rejected(self):
        with pytest.raises(ConfigError):
            perturbed(PhaseParams(), rng=0, scale=-0.1)

    def test_deterministic(self):
        a = perturbed(PhaseParams(), rng=3)
        b = perturbed(PhaseParams(), rng=3)
        assert a == b


class TestPhaseSchedule:
    def test_weights_normalized(self):
        schedule = PhaseSchedule([(PhaseParams(), 2.0), (PhaseParams(ilp=0.9), 6.0)])
        assert schedule.weights == pytest.approx([0.25, 0.75])

    def test_contiguous_allocation(self):
        a = PhaseParams(ilp=0.2)
        b = PhaseParams(ilp=0.8)
        schedule = PhaseSchedule([(a, 0.5), (b, 0.5)])
        assignment = [schedule.params_for(i, 10) for i in range(10)]
        assert assignment[:5] == [a] * 5
        assert assignment[5:] == [b] * 5

    def test_phase_index(self):
        a, b = PhaseParams(ilp=0.2), PhaseParams(ilp=0.8)
        schedule = PhaseSchedule([(a, 0.3), (b, 0.7)])
        assert schedule.phase_index_for(0, 10) == 0
        assert schedule.phase_index_for(9, 10) == 1

    def test_out_of_range_section(self):
        schedule = PhaseSchedule([(PhaseParams(), 1.0)])
        with pytest.raises(ConfigError):
            schedule.params_for(5, 5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            PhaseSchedule([])

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ConfigError):
            PhaseSchedule([(PhaseParams(), 0.0)])


class TestSynthesizeBlock:
    def test_length_and_determinism(self):
        a = synthesize_block(PhaseParams(), 512, rng=1)
        b = synthesize_block(PhaseParams(), 512, rng=1)
        assert len(a) == 512
        assert np.array_equal(a.addr, b.addr)
        assert np.array_equal(a.kind, b.kind)

    def test_mix_approximates_fractions(self):
        params = PhaseParams(load_fraction=0.4, store_fraction=0.2, branch_fraction=0.2)
        block = synthesize_block(params, 8192, rng=0)
        assert block.n_loads / 8192 == pytest.approx(0.4, abs=0.03)
        assert block.n_stores / 8192 == pytest.approx(0.2, abs=0.03)
        assert block.n_branches / 8192 == pytest.approx(0.2, abs=0.03)

    def test_addresses_within_footprint(self):
        params = PhaseParams(data_footprint=1 << 16)
        block = synthesize_block(params, 2048, rng=0)
        memory = (block.kind == KIND_LOAD) | (block.kind == KIND_STORE)
        assert np.all(block.addr[memory] < (1 << 16) + 64)
        assert np.all(block.addr[memory] >= 0)

    def test_pcs_in_code_region(self):
        block = synthesize_block(PhaseParams(), 512, rng=0)
        assert np.all(block.pc >= CODE_REGION_BASE)
        assert np.all(block.pc < CODE_REGION_BASE + PhaseParams().code_footprint)

    def test_lcp_fraction_respected(self):
        params = PhaseParams(lcp_fraction=0.25)
        block = synthesize_block(params, 8192, rng=0)
        assert np.mean(block.lcp) == pytest.approx(0.25, abs=0.03)

    def test_misalignment_controlled(self):
        # Disable aliasing: partially-overlapping alias loads are
        # deliberately misaligned and would contaminate the count.
        aligned = synthesize_block(
            PhaseParams(misalign_fraction=0.0, store_load_alias_fraction=0.0),
            4096,
            rng=0,
        )
        assert not np.any(aligned.misaligned_mask())
        skewed = synthesize_block(
            PhaseParams(misalign_fraction=0.5, store_load_alias_fraction=0.0),
            4096,
            rng=0,
        )
        memory = (skewed.kind == KIND_LOAD) | (skewed.kind == KIND_STORE)
        rate = np.count_nonzero(skewed.misaligned_mask()) / max(
            np.count_nonzero(memory), 1
        )
        assert rate == pytest.approx(0.5, abs=0.1)

    def test_aliasing_copies_store_addresses(self):
        params = PhaseParams(
            store_load_alias_fraction=1.0,
            overlap_alias_fraction=0.0,
            misalign_fraction=0.0,
            load_fraction=0.4,
            store_fraction=0.4,
            branch_fraction=0.1,
        )
        block = synthesize_block(params, 2048, rng=0)
        store_addrs = set(block.addr[block.kind == KIND_STORE].tolist())
        load_addrs = block.addr[block.kind == KIND_LOAD]
        # Nearly every load (those with a preceding store) reads a stored address.
        matches = sum(1 for a in load_addrs.tolist() if a in store_addrs)
        assert matches / len(load_addrs) > 0.9

    def test_branch_bias_controls_taken_rate(self):
        params = PhaseParams(branch_bias=0.95, hard_branch_fraction=0.0)
        block = synthesize_block(params, 8192, rng=0)
        taken = block.taken[block.kind == KIND_BRANCH]
        assert np.mean(taken) == pytest.approx(0.95, abs=0.04)

    def test_invalid_length(self):
        with pytest.raises(ConfigError):
            synthesize_block(PhaseParams(), 0)

    def test_scalars_propagated(self):
        params = PhaseParams(ilp=0.7, dependent_miss_fraction=0.4)
        block = synthesize_block(params, 128, rng=0)
        assert block.ilp == 0.7
        assert block.dependent_miss_fraction == 0.4


class TestProfiles:
    def test_suite_has_eleven_workloads(self):
        suite = spec_like_suite()
        assert len(suite) == 11
        names = [profile.name for profile in suite]
        assert len(set(names)) == len(names)

    def test_lookup_by_name(self):
        assert workload_by_name("mcf_like").name == "mcf_like"

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            workload_by_name("doom_like")

    def test_single_phase_constructor(self):
        profile = WorkloadProfile.single_phase("x", PhaseParams(), "desc")
        assert len(profile.schedule) == 1
        assert profile.section_params(0, 10) is profile.schedule.phases[0]

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadProfile("", PhaseSchedule([(PhaseParams(), 1.0)]))

    def test_gcc_has_lcp_phase(self):
        profile = workload_by_name("gcc_like")
        lcp_rates = [phase.lcp_fraction for phase in profile.schedule.phases]
        assert max(lcp_rates) > 0.05
        assert min(lcp_rates) < 0.01

    def test_mcf_is_pointer_chasing(self):
        profile = workload_by_name("mcf_like")
        chasing = profile.schedule.phases[0]
        assert chasing.dependent_miss_fraction > 0.8
        assert chasing.data_footprint > 16 * 1024 * 1024

    def test_cactus_has_large_code_footprint(self):
        profile = workload_by_name("cactus_like")
        stencil = profile.schedule.phases[0]
        assert stencil.code_footprint > 1024 * 1024

"""Tests for the compiled forest arena (repro.serve.forest)."""

import numpy as np
import pytest

from repro.baselines import BaggedM5
from repro.core.tree.node import route
from repro.datasets.synthetic import figure1_dataset
from repro.errors import ConfigError, DataError, NotFittedError
from repro.serve.forest import compile_forest


@pytest.fixture(scope="module")
def data():
    return figure1_dataset(n=240, noise_sd=0.05, rng=5)


@pytest.fixture(scope="module")
def forest(data):
    return BaggedM5(n_estimators=5, min_instances=20, seed=9).fit(data)


@pytest.fixture(scope="module")
def compiled(forest):
    return forest.compiled_


class TestArenaLayout:
    def test_offsets_cover_member_arenas(self, forest, compiled):
        assert compiled.n_trees == len(forest)
        assert compiled.tree_offset[0] == 0
        assert compiled.leaf_offset[0] == 0
        for t, member in enumerate(forest):
            tree = member.compiled_
            assert (compiled.tree_offset[t + 1] - compiled.tree_offset[t]
                    == tree.n_nodes)
            assert (compiled.leaf_offset[t + 1] - compiled.leaf_offset[t]
                    == tree.n_leaves)
        assert compiled.tree_offset[-1] == compiled.n_nodes
        assert compiled.leaf_offset[-1] == compiled.total_leaves

    def test_member_arrays_concatenated_verbatim(self, forest, compiled):
        for t, member in enumerate(forest):
            tree = member.compiled_
            base = int(compiled.tree_offset[t])
            stop = int(compiled.tree_offset[t + 1])
            assert np.array_equal(compiled.feature[base:stop], tree.feature)
            # Leaf nodes carry NaN thresholds.
            assert np.array_equal(
                compiled.threshold[base:stop], tree.threshold, equal_nan=True
            )
            assert np.array_equal(
                compiled.intercept[base:stop], tree.intercept
            )

    def test_children_rebased_into_own_tree(self, compiled):
        for t in range(compiled.n_trees):
            base = int(compiled.tree_offset[t])
            stop = int(compiled.tree_offset[t + 1])
            children = np.r_[compiled.left[base:stop],
                             compiled.right[base:stop]]
            children = children[children >= 0]
            assert np.all((children >= base) & (children < stop))

    def test_leaf_col_leaf_node_bijection(self, compiled):
        leaves = np.flatnonzero(compiled.feature < 0)
        columns = compiled.leaf_col[leaves]
        assert sorted(columns) == list(range(compiled.total_leaves))
        assert np.array_equal(compiled.leaf_node[columns], leaves)
        interior = np.flatnonzero(compiled.feature >= 0)
        assert np.all(compiled.leaf_col[interior] == -1)

    def test_tree_of(self, compiled):
        for t in range(compiled.n_trees):
            assert compiled.tree_of(int(compiled.tree_offset[t])) == t
            assert compiled.tree_of(int(compiled.tree_offset[t + 1]) - 1) == t
        with pytest.raises(DataError):
            compiled.tree_of(compiled.n_nodes)

    def test_serial_and_parallel_fits_compile_identically(self, data):
        serial = BaggedM5(n_estimators=4, min_instances=20, seed=3,
                          n_jobs=1).fit(data)
        parallel = BaggedM5(n_estimators=4, min_instances=20, seed=3,
                            n_jobs=2).fit(data)
        a, b = serial.compiled_, parallel.compiled_
        assert np.array_equal(a.tree_offset, b.tree_offset)
        assert np.array_equal(a.leaf_offset, b.leaf_offset)
        assert np.array_equal(a.feature, b.feature)
        assert np.array_equal(a.threshold, b.threshold, equal_nan=True)
        assert np.array_equal(a.intercept, b.intercept)
        assert np.array_equal(a.term_coefficient, b.term_coefficient)


class TestPrediction:
    def test_per_tree_bit_identical_to_members(self, forest, compiled, data):
        per_tree = compiled.predict_trees(data.X)
        assert per_tree.shape == (compiled.n_trees, data.n_instances)
        for t, member in enumerate(forest):
            assert np.array_equal(per_tree[t], member.compiled_.predict(data.X))

    def test_ensemble_mean_bit_identical_to_stacking(
        self, forest, compiled, data
    ):
        stacked = np.vstack(
            [member.predict(data.X) for member in forest]
        ).mean(axis=0)
        assert np.array_equal(compiled.predict(data.X), stacked)
        assert np.array_equal(forest.predict(data.X), stacked)

    def test_per_tree_matches_interpreted_walk(self, forest, compiled, data):
        per_tree = compiled.predict_trees(data.X)
        for t, member in enumerate(forest):
            walked = np.array([
                route(member.root_, x).model.predict_one(x) for x in data.X
            ])
            assert np.array_equal(per_tree[t], walked)

    def test_route_lands_on_own_tree_leaves(self, compiled, data):
        nodes = compiled.route(data.X)
        assert nodes.shape == (data.n_instances, compiled.n_trees)
        for t in range(compiled.n_trees):
            base, stop = compiled.tree_offset[t], compiled.tree_offset[t + 1]
            assert np.all((nodes[:, t] >= base) & (nodes[:, t] < stop))
            assert np.all(compiled.feature[nodes[:, t]] < 0)

    def test_empty_batch(self, compiled):
        X = np.empty((0, compiled.n_features))
        assert compiled.predict_trees(X).shape == (compiled.n_trees, 0)
        assert compiled.predict(X).shape == (0,)
        assert compiled.route(X).shape == (0, compiled.n_trees)

    def test_width_mismatch(self, compiled):
        with pytest.raises(DataError):
            compiled.predict(np.zeros((3, compiled.n_features + 1)))
        with pytest.raises(DataError):
            compiled.route(np.zeros(compiled.n_features))

    def test_negative_smoothing_k(self, compiled, data):
        with pytest.raises(ConfigError):
            compiled.predict_trees(data.X, smoothing_k=-1.0)

    def test_smoothed_forest_matches_members(self, data):
        forest = BaggedM5(n_estimators=3, min_instances=30, seed=4).fit(data)
        # Members are fitted without smoothing; the arena still supports
        # post-hoc smoothing with an explicit k, matching each member.
        compiled = forest.compiled_
        per_tree = compiled.predict_trees(data.X, smoothing_k=15.0)
        for t, member in enumerate(forest):
            assert np.array_equal(
                per_tree[t], member.compiled_.predict(data.X, smoothing_k=15.0)
            )


class TestLeafIndicator:
    def test_csr_structure(self, compiled, data):
        indicator = compiled.leaf_indicator(data.X)
        n = data.n_instances
        assert indicator.shape == (n, compiled.total_leaves)
        assert np.array_equal(
            indicator.indptr,
            np.arange(n + 1, dtype=np.int64) * compiled.n_trees,
        )
        assert np.all(indicator.data == 1.0)
        # Tree-major columns: strictly increasing within each row.
        columns = indicator.indices.reshape(n, compiled.n_trees)
        assert np.all(np.diff(columns, axis=1) > 0)

    def test_rows_sum_to_n_trees(self, compiled, data):
        dense = compiled.leaf_indicator(data.X).toarray()
        assert np.array_equal(
            dense.sum(axis=1), np.full(data.n_instances, compiled.n_trees)
        )

    def test_columns_within_tree_bands(self, compiled, data):
        columns = compiled.leaf_columns(data.X)
        for t in range(compiled.n_trees):
            assert np.all(columns[:, t] >= compiled.leaf_offset[t])
            assert np.all(columns[:, t] < compiled.leaf_offset[t + 1])


class TestLeafSummary:
    def test_summary_names_tree_and_model(self, compiled):
        summary = compiled.leaf_summary(0)
        assert summary["column"] == 0
        assert summary["tree"] == 0
        assert compiled.leaf_col[summary["node"]] == 0
        assert isinstance(summary["terms"], list)

    def test_out_of_range(self, compiled):
        with pytest.raises(DataError):
            compiled.leaf_summary(compiled.total_leaves)


class TestCompileErrors:
    def test_unfitted_forest(self):
        with pytest.raises(NotFittedError):
            compile_forest(BaggedM5(n_estimators=2))

    def test_smoothing_mismatch(self, data):
        forest = BaggedM5(n_estimators=2, min_instances=30, seed=1).fit(data)
        forest.estimators_[1].smoothing = True
        try:
            with pytest.raises(ConfigError):
                compile_forest(forest)
        finally:
            forest.estimators_[1].smoothing = False


class TestSequenceProtocol:
    def test_len_getitem_iter(self, forest):
        assert len(forest) == forest.n_estimators
        assert list(forest) == [forest[i] for i in range(len(forest))]

    def test_n_leaves_totals(self, forest, compiled):
        assert forest.n_leaves == compiled.total_leaves
        assert forest.mean_leaves_ == pytest.approx(
            compiled.total_leaves / compiled.n_trees
        )

"""Tests for equal-instruction sectioning."""

import pytest

from repro.counters.events import INST_RETIRED_ANY
from repro.datasets import SectionRecorder, section_boundaries
from repro.errors import ConfigError, DataError

INST = INST_RETIRED_ANY.name


class TestSectionBoundaries:
    def test_exact_division(self):
        assert section_boundaries(300, 100) == [(0, 100), (100, 200), (200, 300)]

    def test_remainder_dropped(self):
        assert section_boundaries(250, 100) == [(0, 100), (100, 200)]

    def test_zero_instructions(self):
        assert section_boundaries(0, 100) == []

    def test_invalid_per_section(self):
        with pytest.raises(ConfigError):
            section_boundaries(100, 0)

    def test_negative_total(self):
        with pytest.raises(ConfigError):
            section_boundaries(-1, 100)


class TestSectionRecorder:
    def test_exact_fill_cuts_section(self):
        recorder = SectionRecorder(100)
        recorder.record({INST: 100, "E": 7})
        assert len(recorder.sections) == 1
        assert recorder.sections[0]["E"] == pytest.approx(7)

    def test_accumulates_until_boundary(self):
        recorder = SectionRecorder(100)
        recorder.record({INST: 60, "E": 3})
        assert recorder.sections == []
        recorder.record({INST: 40, "E": 2})
        assert len(recorder.sections) == 1
        assert recorder.sections[0]["E"] == pytest.approx(5)

    def test_straddling_delta_split_proportionally(self):
        recorder = SectionRecorder(100)
        recorder.record({INST: 150, "E": 30})
        # First section takes 100/150 of the delta.
        assert len(recorder.sections) == 1
        assert recorder.sections[0]["E"] == pytest.approx(20)
        assert recorder.pending_instructions == pytest.approx(50)

    def test_multiple_sections_from_one_delta(self):
        recorder = SectionRecorder(100)
        recorder.record({INST: 350, "E": 35})
        assert len(recorder.sections) == 3
        for section in recorder.sections:
            assert section["E"] == pytest.approx(10)

    def test_conservation_of_counts(self):
        recorder = SectionRecorder(64)
        total = 0.0
        for i in range(20):
            recorder.record({INST: 37, "E": float(i)})
            total += i
        sections = recorder.finalize(keep_partial=True)
        assert sum(s["E"] for s in sections) == pytest.approx(total)

    def test_sections_have_exact_instruction_counts(self):
        recorder = SectionRecorder(128)
        for _ in range(10):
            recorder.record({INST: 100, "E": 1})
        for section in recorder.sections:
            assert section[INST] == pytest.approx(128)

    def test_zero_instruction_delta_absorbed(self):
        recorder = SectionRecorder(100)
        recorder.record({INST: 0, "STALL": 9})
        recorder.record({INST: 100})
        assert recorder.sections[0]["STALL"] == pytest.approx(9)

    def test_finalize_partial(self):
        recorder = SectionRecorder(100)
        recorder.record({INST: 130, "E": 13})
        sections = recorder.finalize(keep_partial=True)
        assert len(sections) == 2
        assert sections[1][INST] == pytest.approx(30)

    def test_finalize_without_partial(self):
        recorder = SectionRecorder(100)
        recorder.record({INST: 130, "E": 13})
        assert len(recorder.finalize(keep_partial=False)) == 1

    def test_missing_instruction_count_rejected(self):
        recorder = SectionRecorder(100)
        with pytest.raises(DataError):
            recorder.record({"E": 5})

    def test_negative_instructions_rejected(self):
        recorder = SectionRecorder(100)
        with pytest.raises(DataError):
            recorder.record({INST: -5})

    def test_invalid_section_size(self):
        with pytest.raises(ConfigError):
            SectionRecorder(0)

"""The SERVE0xx lint family: static model-registry auditing."""

import json

import pytest

from repro.cli import main
from repro.datasets.dataset import Dataset
from repro.errors import LintError
from repro.lint import FAMILY_SERVE, lint_registry, run_lint
from repro.serve.registry import ModelRegistry


@pytest.fixture
def registry(tmp_path, suite_tree):
    """A registry holding one published model with an alias."""
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish("cpi-tree", suite_tree, aliases=["prod"])
    return registry


def _rule_ids(report):
    return sorted({d.rule_id for d in report.diagnostics})


def _manifest(registry):
    return json.loads(registry.manifest_path.read_text())


class TestServeRules:
    def test_clean_registry_is_clean(self, registry):
        report = lint_registry(registry.directory)
        assert report.diagnostics == []
        assert report.exit_code(strict=True) == 0

    def test_unreadable_manifest_errors_serve001(self, registry):
        registry.manifest_path.write_text("{not json")
        report = lint_registry(registry.directory)
        assert _rule_ids(report) == ["SERVE001"]
        assert report.exit_code(strict=False) == 2

    def test_wrong_schema_errors_serve001(self, registry):
        registry.manifest_path.write_text(json.dumps({"schema": "other/9"}))
        report = lint_registry(registry.directory)
        assert _rule_ids(report) == ["SERVE001"]

    def test_missing_blob_errors_serve002(self, registry):
        record = registry.records()[0]
        blob = registry.directory / record.blob
        blob.unlink()
        registry.cache.checksum_path(blob).unlink()
        report = lint_registry(registry.directory)
        assert "SERVE002" in _rule_ids(report)
        assert record.spec in report.diagnostics[0].message

    def test_corrupt_blob_errors_serve003(self, registry):
        record = registry.records()[0]
        blob = registry.directory / record.blob
        blob.write_text(blob.read_text()[:40])
        report = lint_registry(registry.directory)
        assert "SERVE003" in _rule_ids(report)
        # The lint is read-only: the blob must NOT get quarantined.
        assert blob.exists()

    def test_manifest_blob_disagreement_errors_serve004(self, registry):
        document = _manifest(registry)
        entry = document["models"]["cpi-tree"]["versions"]["1"]
        entry["attributes"] = list(entry["attributes"][:-1]) + ["Rogue"]
        registry.manifest_path.write_text(json.dumps(document))
        report = lint_registry(registry.directory)
        ids = _rule_ids(report)
        assert "SERVE004" in ids
        assert "Rogue" in " ".join(
            d.message for d in report.diagnostics if d.rule_id == "SERVE004"
        )

    def test_dataset_schema_drift_errors_serve005(self, registry, suite_tree,
                                                  suite_dataset):
        drifted = Dataset(
            suite_dataset.X,
            suite_dataset.y,
            ["New" + a for a in suite_dataset.attributes],
            suite_dataset.target_name,
        )
        report = lint_registry(registry.directory, dataset=drifted)
        assert "SERVE005" in _rule_ids(report)
        message = [
            d.message for d in report.diagnostics if d.rule_id == "SERVE005"
        ][0]
        assert "no longer matches" in message

    def test_reordered_dataset_columns_error_serve005(self, registry,
                                                      suite_dataset):
        names = list(suite_dataset.attributes)
        names[0], names[1] = names[1], names[0]
        reordered = Dataset(
            suite_dataset.X[:, [suite_dataset.attribute_index(n)
                                for n in names]],
            suite_dataset.y,
            names,
            suite_dataset.target_name,
        )
        report = lint_registry(registry.directory, dataset=reordered)
        message = [
            d.message for d in report.diagnostics if d.rule_id == "SERVE005"
        ][0]
        assert "different order" in message

    def test_matching_dataset_is_clean(self, registry, suite_dataset):
        report = lint_registry(registry.directory, dataset=suite_dataset)
        assert report.diagnostics == []

    def test_quarantined_blobs_warn_serve006(self, registry):
        registry.cache.quarantine_directory.mkdir(parents=True, exist_ok=True)
        (registry.cache.quarantine_directory / "model-old.json").write_text(
            "junk"
        )
        report = lint_registry(registry.directory)
        assert _rule_ids(report) == ["SERVE006"]
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1

    def test_dangling_alias_warns_serve007(self, registry):
        document = _manifest(registry)
        document["models"]["cpi-tree"]["aliases"]["prod"] = 9
        registry.manifest_path.write_text(json.dumps(document))
        report = lint_registry(registry.directory)
        assert "SERVE007" in _rule_ids(report)

    def test_empty_registry_directory_is_clean(self, tmp_path):
        report = lint_registry(tmp_path / "nothing-here")
        assert report.diagnostics == []


class TestFamilyResolution:
    def test_serve_family_enabled_by_registry_dir(self, registry):
        report = run_lint(registry_dir=registry.directory)
        assert FAMILY_SERVE in report.families

    def test_serve_family_needs_registry_dir(self, suite_dataset):
        with pytest.raises(LintError, match="registry directory"):
            run_lint(dataset=suite_dataset, families=(FAMILY_SERVE,))


class TestCli:
    def test_lint_registry_clean(self, registry, capsys):
        code = main(["lint", "--registry", str(registry.directory)])
        assert code == 0
        assert "serve" in capsys.readouterr().out

    def test_lint_registry_corrupt_exits_2(self, registry, capsys):
        record = registry.records()[0]
        blob = registry.directory / record.blob
        blob.write_text("tampered")
        code = main(["lint", "--registry", str(registry.directory)])
        assert code == 2
        assert "SERVE003" in capsys.readouterr().out

    def test_list_rules_includes_serve_family(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SERVE001", "SERVE003", "SERVE005", "SERVE007"):
            assert rule_id in out

"""Tests for the SDR split search."""

import numpy as np
import pytest

from repro.core.tree.splitting import find_best_split
from repro.errors import ConfigError


class TestFindBestSplit:
    def test_perfect_step_found(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        split = find_best_split(X, y, min_leaf=2)
        assert split is not None
        assert split.attribute_index == 0
        assert 0.45 < split.threshold < 0.55
        assert split.n_left + split.n_right == 100

    def test_picks_most_discriminative_attribute(self, rng):
        X = rng.uniform(size=(200, 3))
        y = np.where(X[:, 1] > 0.3, 5.0, 0.0) + rng.normal(0, 0.01, 200)
        split = find_best_split(X, y, min_leaf=5)
        assert split.attribute_index == 1

    def test_constant_target_no_split(self, rng):
        X = rng.uniform(size=(50, 2))
        y = np.full(50, 2.0)
        assert find_best_split(X, y) is None

    def test_constant_attributes_no_split(self):
        X = np.ones((50, 2))
        y = np.arange(50, dtype=float)
        assert find_best_split(X, y) is None

    def test_min_leaf_respected(self):
        X = np.linspace(0, 1, 20).reshape(-1, 1)
        y = np.zeros(20)
        y[0] = 100.0  # huge outlier tempts a 1-vs-19 split
        split = find_best_split(X, y, min_leaf=5)
        if split is not None:
            assert split.n_left >= 5
            assert split.n_right >= 5

    def test_too_few_instances(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([1.0, 2.0, 3.0])
        assert find_best_split(X, y, min_leaf=2) is None

    def test_threshold_between_distinct_values(self):
        X = np.array([[1.0], [1.0], [2.0], [2.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        split = find_best_split(X, y, min_leaf=1)
        assert split.threshold == pytest.approx(1.5)

    def test_tied_values_cannot_split(self):
        X = np.ones((10, 1))
        X[5:] = 1.0  # all identical
        y = np.arange(10, dtype=float)
        assert find_best_split(X, y, min_leaf=1) is None

    def test_sdr_positive(self):
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        y = (X[:, 0] > 0.4).astype(float) * 3.0
        split = find_best_split(X, y, min_leaf=2)
        assert split.sdr > 0

    def test_sdr_equals_manual_computation(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        split = find_best_split(X, y, min_leaf=1)
        sd_total = np.std(y)
        expected = sd_total - 0.0  # children are pure
        assert split.sdr == pytest.approx(expected)
        assert split.threshold == pytest.approx(1.5)

    def test_deterministic_tie_break_lowest_attribute(self):
        # Two identical attributes: the lower index must win.
        X = np.linspace(0, 1, 40).reshape(-1, 1)
        X = np.hstack([X, X])
        y = (X[:, 0] > 0.5).astype(float)
        split = find_best_split(X, y, min_leaf=2)
        assert split.attribute_index == 0

    def test_invalid_min_leaf(self):
        with pytest.raises(ConfigError):
            find_best_split(np.ones((4, 1)), np.ones(4), min_leaf=0)

    def test_unsorted_input_handled(self, rng):
        X = rng.permutation(np.linspace(0, 1, 100)).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        split = find_best_split(X, y, min_leaf=2)
        assert 0.45 < split.threshold < 0.55


class TestAdjacentFloatValues:
    def test_threshold_strictly_separates_neighbouring_floats(self):
        # Two distinct but adjacent floats: the midpoint rounds to one of
        # them; the split must still partition strictly.
        lo = 1.0
        hi = np.nextafter(lo, np.inf)
        X = np.array([[lo]] * 5 + [[hi]] * 5)
        y = np.array([0.0] * 5 + [1.0] * 5)
        split = find_best_split(X, y, min_leaf=2)
        assert split is not None
        left = X[:, 0] <= split.threshold
        assert 0 < np.count_nonzero(left) < len(y)

    def test_tree_terminates_on_adjacent_floats(self):
        from repro.core.tree import M5Prime

        lo = 1.0
        hi = np.nextafter(lo, np.inf)
        X = np.array([[lo]] * 8 + [[hi]] * 8)
        y = np.array([0.0] * 8 + [1.0] * 8)
        model = M5Prime(min_instances=2).fit(X, y)
        assert model.depth <= 2
        assert np.allclose(model.predict(X), y, atol=1e-6)


class TestChunkedScanEquivalence:
    """Any chunk size must return the identical split (same tie-breaks)."""

    @pytest.mark.parametrize("chunk_size", [1, 2, 5, 32, 1000])
    def test_chunk_size_does_not_change_result(self, rng, chunk_size):
        X = rng.normal(size=(80, 17))
        y = X[:, 3] * 2.0 + rng.normal(scale=0.2, size=80)
        reference = find_best_split(X, y, min_leaf=5, chunk_size=1)
        assert find_best_split(X, y, min_leaf=5, chunk_size=chunk_size) == reference

    def test_tied_attributes_resolve_to_lowest_index(self):
        # Two identical columns: identical SDR everywhere; the scan must
        # keep attribute 0 regardless of how columns are chunked.
        x = np.linspace(0.0, 1.0, 40)
        X = np.column_stack([x, x])
        y = (x > 0.5).astype(float)
        for chunk_size in (1, 2):
            split = find_best_split(X, y, min_leaf=2, chunk_size=chunk_size)
            assert split.attribute_index == 0

    def test_invalid_chunk_size(self, rng):
        X = rng.normal(size=(20, 3))
        y = rng.normal(size=20)
        with pytest.raises(ConfigError):
            find_best_split(X, y, chunk_size=0)

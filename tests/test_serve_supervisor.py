"""The supervisor over fake workers: restarts, backoff, breaker, rollout."""

import pytest

from repro.errors import FleetError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.retry import RetryPolicy
from repro.serve.supervisor import Supervisor


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class FakeWorker:
    """An in-memory worker the fake fleet can kill or wedge."""

    _next_id = [0]

    def __init__(self, index):
        self.index = index
        self.id = FakeWorker._next_id[0]
        FakeWorker._next_id[0] += 1
        self.alive = True
        self.stopped_gracefully = None


class FakeFleet:
    """Spawn/probe/stop callables with scriptable failures."""

    def __init__(self, clock):
        self.clock = clock
        self.workers = []
        self.spawn_failures = 0  # next N spawns raise
        self.spawn_count = 0

    def spawn(self, index):
        self.spawn_count += 1
        if self.spawn_failures > 0:
            self.spawn_failures -= 1
            raise FleetError(f"injected spawn failure for worker {index}")
        worker = FakeWorker(index)
        self.workers.append(worker)
        return worker

    def probe(self, worker):
        return worker.alive

    def stop(self, worker, graceful):
        worker.alive = False
        worker.stopped_gracefully = graceful

    def sleep(self, seconds):
        self.clock.advance(seconds)


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def fleet(clock):
    return FakeFleet(clock)


def make_supervisor(fleet, clock, n_workers=2, **kwargs):
    kwargs.setdefault(
        "retry",
        RetryPolicy(max_attempts=1, base_delay=0.5, max_delay=8.0, seed=0),
    )
    kwargs.setdefault(
        "breaker", CircuitBreaker(failure_threshold=3, cooldown_s=10.0,
                                  clock=clock),
    )
    return Supervisor(
        spawn=fleet.spawn,
        probe=fleet.probe,
        stop=fleet.stop,
        n_workers=n_workers,
        startup_timeout=5.0,
        clock=clock,
        sleep=fleet.sleep,
        **kwargs,
    )


class TestStart:
    def test_start_fills_every_slot(self, fleet, clock):
        supervisor = make_supervisor(fleet, clock)
        supervisor.start()
        assert len(supervisor.healthy_handles()) == 2
        assert supervisor.status()["healthy_workers"] == 2

    def test_start_failure_raises_and_stops_all(self, fleet, clock):
        fleet.spawn_failures = 10
        supervisor = make_supervisor(fleet, clock)
        with pytest.raises(FleetError):
            supervisor.start()
        assert supervisor.healthy_handles() == []

    def test_n_workers_validated(self, fleet, clock):
        with pytest.raises(FleetError):
            make_supervisor(fleet, clock, n_workers=0)


class TestRestartAndBackoff:
    def test_dead_worker_is_retired_then_restarted(self, fleet, clock):
        supervisor = make_supervisor(fleet, clock)
        supervisor.start()
        victim = supervisor.healthy_handles()[0]
        victim.alive = False

        events = supervisor.tick()
        assert any("unhealthy" in e for e in events)
        assert len(supervisor.healthy_handles()) == 1

        # Before the backoff elapses, nothing respawns.
        assert supervisor.tick() == []
        assert len(supervisor.healthy_handles()) == 1

        clock.advance(10.0)
        events = supervisor.tick()
        assert any("restarted" in e for e in events)
        assert len(supervisor.healthy_handles()) == 2
        status = supervisor.status()
        slot = next(w for w in status["workers"] if w["restarts"] == 1)
        assert slot["consecutive_failures"] == 0

    def test_backoff_schedule_is_deterministic(self, fleet, clock):
        retry = RetryPolicy(max_attempts=1, base_delay=0.5, max_delay=8.0,
                            seed=0)
        supervisor = make_supervisor(fleet, clock, n_workers=1, retry=retry)
        supervisor.start()
        supervisor.healthy_handles()[0].alive = False
        supervisor.tick()
        slot = supervisor.slots[0]
        # tick() schedules with the policy's deterministic delay.
        assert slot.next_attempt_at == pytest.approx(
            clock() + retry.delay_for(1, "worker-0")
        )

    def test_respawn_failure_feeds_the_breaker(self, fleet, clock):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=100.0,
                                 clock=clock)
        supervisor = make_supervisor(fleet, clock, n_workers=1,
                                     breaker=breaker)
        supervisor.start()
        supervisor.healthy_handles()[0].alive = False
        supervisor.tick()  # retire

        fleet.spawn_failures = 10
        clock.advance(20.0)
        supervisor.tick()  # first failed respawn
        assert breaker.state == "closed"
        clock.advance(20.0)
        supervisor.tick()  # second failed respawn trips it
        assert breaker.state == "open"
        assert supervisor.degraded

        # While open, no spawn attempts happen at all.
        before = fleet.spawn_count
        clock.advance(50.0)
        supervisor.tick()
        assert fleet.spawn_count == before

    def test_breaker_half_open_recovery(self, fleet, clock):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=10.0,
                                 clock=clock)
        supervisor = make_supervisor(fleet, clock, n_workers=1,
                                     breaker=breaker)
        supervisor.start()
        supervisor.healthy_handles()[0].alive = False
        supervisor.tick()
        fleet.spawn_failures = 1
        clock.advance(20.0)
        supervisor.tick()  # failed respawn trips the breaker
        assert supervisor.degraded

        # Cooldown elapses -> half-open -> one probe spawn succeeds ->
        # closed again, worker back in rotation.
        clock.advance(30.0)
        events = supervisor.tick()
        assert any("restarted" in e for e in events)
        assert breaker.state == "closed"
        assert not supervisor.degraded
        assert len(supervisor.healthy_handles()) == 1

    def test_probe_recovery_without_restart(self, fleet, clock):
        supervisor = make_supervisor(fleet, clock)
        supervisor.start()
        # A worker that is merely slow (probe fails once, then passes)
        # is retired by design — we only report "healthy again" for a
        # handle still in rotation, so simulate one flapping probe.
        handle = supervisor.healthy_handles()[0]
        assert supervisor.tick() == []  # all healthy: no events
        assert handle in supervisor.healthy_handles()


class TestRollingRestart:
    def test_rotation_never_shrinks(self, fleet, clock):
        supervisor = make_supervisor(fleet, clock)
        supervisor.start()
        old = list(supervisor.healthy_handles())

        observed = []
        original_spawn = fleet.spawn

        def watching_spawn(index):
            observed.append(len(supervisor.healthy_handles()))
            return original_spawn(index)

        supervisor.spawn = watching_spawn
        events = supervisor.rolling_restart()
        assert len(events) == 2
        assert all(n == 2 for n in observed)  # full complement throughout
        new = supervisor.healthy_handles()
        assert len(new) == 2
        assert not set(w.id for w in new) & set(w.id for w in old)
        # The old workers drained gracefully.
        assert all(w.stopped_gracefully for w in old)

    def test_failed_rollout_keeps_the_old_worker(self, fleet, clock):
        supervisor = make_supervisor(fleet, clock, n_workers=1)
        supervisor.start()
        old = supervisor.healthy_handles()[0]
        fleet.spawn_failures = 0

        def bad_spawn(index):
            worker = FakeWorker(index)
            worker.alive = False  # never passes its startup probe
            return worker

        supervisor.spawn = bad_spawn
        with pytest.raises(FleetError, match="remains in rotation"):
            supervisor.rolling_restart()
        assert supervisor.healthy_handles() == [old]
        assert old.alive


class TestStopAll:
    def test_stop_all_empties_rotation(self, fleet, clock):
        supervisor = make_supervisor(fleet, clock)
        supervisor.start()
        supervisor.stop_all(graceful=True)
        assert supervisor.healthy_handles() == []
        assert all(w.stopped_gracefully for w in fleet.workers)

"""The CACHE0xx lint family: artifact-cache integrity auditing."""

import pytest

from repro.cli import main
from repro.errors import LintError
from repro.lint import FAMILY_CACHE, lint_cache, run_lint
from repro.parallel.cache import ArtifactCache


@pytest.fixture
def cache(tmp_path, suite_dataset):
    """A cache holding one checksummed dataset entry."""
    cache = ArtifactCache(tmp_path / "artifacts")
    cache.store_dataset(["lint-cache-test"], suite_dataset)
    return cache


def _rule_ids(report):
    return sorted({d.rule_id for d in report.diagnostics})


def _entry(cache):
    (path,) = cache._entries()
    return path


class TestCacheRules:
    def test_clean_cache_is_clean(self, cache):
        report = lint_cache(cache.directory)
        assert report.diagnostics == []
        assert report.exit_code(strict=True) == 0

    def test_missing_sidecar_warns_cache001(self, cache):
        cache.checksum_path(_entry(cache)).unlink()
        report = lint_cache(cache.directory)
        assert _rule_ids(report) == ["CACHE001"]
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1

    def test_corrupt_entry_errors_cache002(self, cache):
        path = _entry(cache)
        path.write_bytes(path.read_bytes()[:-20] + b"x" * 20)
        report = lint_cache(cache.directory)
        assert "CACHE002" in _rule_ids(report)
        assert report.exit_code(strict=False) == 2

    def test_quarantined_entries_warn_cache003(self, cache):
        cache.quarantine_directory.mkdir(parents=True, exist_ok=True)
        (cache.quarantine_directory / "dataset-old.csv").write_text("junk")
        report = lint_cache(cache.directory)
        assert _rule_ids(report) == ["CACHE003"]
        assert "1 quarantined entry" in report.diagnostics[0].message

    def test_empty_cache_directory_is_clean(self, tmp_path):
        report = lint_cache(tmp_path / "nothing-here")
        assert report.diagnostics == []


class TestFamilyResolution:
    def test_cache_family_enabled_by_cache_dir(self, cache):
        report = run_lint(cache_dir=cache.directory)
        assert report.families == (FAMILY_CACHE,)

    def test_cache_family_needs_cache_dir(self, suite_dataset):
        with pytest.raises(LintError, match="cache directory"):
            run_lint(dataset=suite_dataset, families=(FAMILY_CACHE,))

    def test_no_inputs_still_rejected(self):
        with pytest.raises(LintError):
            run_lint()


class TestCli:
    def test_lint_cache_dir_clean(self, cache, capsys):
        assert main(["lint", "--cache-dir", str(cache.directory)]) == 0
        assert "cache" in capsys.readouterr().out

    def test_lint_cache_dir_corrupt_exits_2(self, cache, capsys):
        path = _entry(cache)
        path.write_bytes(b"not the original bytes")
        assert main(["lint", "--cache-dir", str(cache.directory)]) == 2
        assert "CACHE002" in capsys.readouterr().out

    def test_list_rules_includes_cache_family(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("CACHE001", "CACHE002", "CACHE003"):
            assert rule_id in out

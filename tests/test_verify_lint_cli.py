"""The VERIFY lint family and the ``repro verify`` CLI surface."""

import json

import pytest

from repro.cli import main
from repro.core.tree import M5Prime
from repro.core.tree.linear import LinearModel
from repro.core.tree.node import LeafNode, SplitNode, assign_leaf_ids
from repro.core.tree.serialize import save_model
from repro.lint import lint_verify, run_lint
from repro.serve.registry import ModelRegistry


def _linear(intercept):
    return LinearModel(
        intercept=float(intercept), indices=(), names=(),
        coefficients=(), n_training=8, training_error=0.1,
    )


def _leaf(mean):
    node = LeafNode(8, 0.5, mean)
    node.model = _linear(mean)
    return node


def _dead_branch_model():
    inner = SplitNode(
        8, 0.5, 1.0, attribute_index=0, attribute_name="a",
        threshold=0.9, left=_leaf(1.0), right=_leaf(2.0),
    )
    inner.model = _linear(1.0)
    root = SplitNode(
        16, 0.5, 1.5, attribute_index=0, attribute_name="a",
        threshold=0.5, left=inner, right=_leaf(3.0),
    )
    root.model = _linear(1.5)
    model = M5Prime()
    model.attributes_ = ("a", "b")
    model.target_name_ = "Y"
    model.feature_ranges_ = ((0.0, 1.0), (0.0, 1.0))
    model.root_ = root
    assign_leaf_ids(root)
    return model


class TestLintFamily:
    def test_clean_model_yields_no_verify_findings(self, suite_tree):
        report = lint_verify(suite_tree)
        assert report.families == ("verify",)
        assert report.diagnostics == []
        assert report.n_rules == 8

    def test_family_included_in_full_model_lint(self, suite_tree):
        report = run_lint(model=suite_tree)
        assert "verify" in report.families

    def test_dead_branch_surfaces_through_lint(self):
        report = lint_verify(_dead_branch_model())
        assert any(d.rule_id == "VERIFY005" for d in report.diagnostics)
        assert report.exit_code() == 2


class TestVerifyCli:
    def test_clean_saved_model(self, suite_tree, tmp_path, capsys):
        path = tmp_path / "model.json"
        save_model(suite_tree, path)
        assert main(["verify", "--model", str(path)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and "certificate" in out

    def test_broken_saved_model_exits_2(self, tmp_path, capsys):
        path = tmp_path / "dead.json"
        save_model(_dead_branch_model(), path)
        assert main(["verify", "--model", str(path)]) == 2
        assert "VERIFY005" in capsys.readouterr().out

    def test_json_envelope(self, suite_tree, tmp_path, capsys):
        path = tmp_path / "model.json"
        save_model(suite_tree, path)
        assert main(["verify", "--model", str(path),
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "verify"
        target = document["targets"][0]
        assert target["ok"] is True
        assert target["certificate"]["leaves"]

    def test_registry_sweep(self, suite_tree, tmp_path, capsys):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("cpi-tree", suite_tree)
        assert main(["verify", "--registry", str(tmp_path / "registry")]) == 0
        out = capsys.readouterr().out
        assert "cpi-tree@1" in out and "clean" in out

    def test_registry_catches_tampered_certificate(self, suite_tree,
                                                   tmp_path, capsys):
        registry = ModelRegistry(tmp_path / "registry")
        record = registry.publish("cpi-tree", suite_tree)
        path = registry.directory / record.certificate
        document = json.loads(path.read_text())
        document["output"][1] = document["output"][1] + 5.0
        path.write_text(json.dumps(document))
        assert main(["verify", "--registry", str(tmp_path / "registry")]) == 2
        assert "FAIL" in capsys.readouterr().out

    def test_no_target_is_an_error(self, capsys):
        assert main(["verify"]) == 2
        err = capsys.readouterr().err
        assert "--model" in err and "--corpus" in err

    def test_corpus_smoke(self, capsys):
        code = main(["verify", "--corpus", "quick",
                     "--max-cases", "1", "--rows", "500"])
        assert code == 0
        assert "conformant" in capsys.readouterr().out

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def dataset_csv(tmp_path, suite_dataset):
    from repro.datasets.csvio import save_csv

    path = tmp_path / "sections.csv"
    save_csv(suite_dataset, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_collect_args(self):
        args = build_parser().parse_args(["collect", "--out", "x.csv"])
        assert args.command == "collect"
        assert args.sections == 120


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "mcf_like" in out
        assert "cactus_like" in out

    def test_collect_and_train(self, tmp_path, capsys):
        out_csv = str(tmp_path / "d.csv")
        assert main([
            "collect", "--out", out_csv, "--sections", "6",
            "--instructions", "256", "--seed", "5", "--arff",
        ]) == 0
        assert (tmp_path / "d.arff").exists()
        capsys.readouterr()
        assert main(["train", "--data", out_csv, "--min-instances", "8"]) == 0
        out = capsys.readouterr().out
        assert "LM1" in out
        assert "leaves" in out

    def test_analyze_summary(self, dataset_csv, capsys):
        assert main(["analyze", "--data", dataset_csv, "--min-instances", "12"]) == 0
        out = capsys.readouterr().out
        assert "LM" in out

    def test_analyze_single_section(self, dataset_csv, capsys):
        assert main([
            "analyze", "--data", dataset_csv, "--min-instances", "12",
            "--section", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "class: LM" in out

    def test_analyze_section_out_of_range(self, dataset_csv, capsys):
        assert main([
            "analyze", "--data", dataset_csv, "--section", "99999",
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_evaluate(self, dataset_csv, capsys):
        assert main([
            "evaluate", "--data", dataset_csv, "--learner", "ols", "--folds", "4",
        ]) == 0
        assert "cross validation" in capsys.readouterr().out

    def test_evaluate_m5p(self, dataset_csv, capsys):
        assert main([
            "evaluate", "--data", dataset_csv, "--learner", "m5p",
            "--folds", "4", "--min-instances", "12",
        ]) == 0
        assert "C=" in capsys.readouterr().out

    def test_experiments_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "F2" in out
        assert "A4" in out

    def test_experiments_single(self, capsys):
        assert main(["experiments", "--id", "T1", "--preset", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_missing_file_reports_error(self, capsys):
        assert main(["train", "--data", "/nonexistent/x.csv"]) != 0


class TestNewCommands:
    def test_train_save_and_rules(self, dataset_csv, tmp_path, capsys):
        model_path = str(tmp_path / "model.json")
        assert main([
            "train", "--data", dataset_csv, "--min-instances", "12",
            "--save", model_path, "--rules",
        ]) == 0
        out = capsys.readouterr().out
        assert "RULE 1" in out
        assert "saved model" in out
        import json

        with open(model_path) as handle:
            payload = json.load(handle)
        assert payload["format"] == "repro-m5prime"

    def test_analyze_with_saved_model(self, dataset_csv, tmp_path, capsys):
        model_path = str(tmp_path / "model.json")
        main(["train", "--data", dataset_csv, "--min-instances", "12",
              "--save", model_path])
        capsys.readouterr()
        assert main([
            "analyze", "--data", dataset_csv, "--model", model_path,
            "--section", "0",
        ]) == 0
        assert "class: LM" in capsys.readouterr().out

    def test_report_tiny(self, tmp_path, capsys):
        out_path = str(tmp_path / "report.md")
        # Tiny preset may fail shape checks; any of 0/1 is acceptable here,
        # what matters is that the report file is complete.
        code = main(["report", "--out", out_path, "--preset", "tiny"])
        assert code in (0, 1)
        text = open(out_path).read()
        assert "# Reproduction report" in text
        assert "## T1" in text
        assert "## E3" in text

    def test_evaluate_residuals(self, dataset_csv, capsys):
        assert main([
            "evaluate", "--data", dataset_csv, "--learner", "m5p",
            "--folds", "4", "--min-instances", "12", "--residuals",
        ]) == 0
        out = capsys.readouterr().out
        assert "by workload:" in out
        assert "by tree class:" in out


class TestResilienceCli:
    """The fault-tolerance surface: flags, faults command, exit codes."""

    def test_resilience_flags_parse(self):
        args = build_parser().parse_args([
            "evaluate", "--data", "x.csv", "--resume",
            "--fail-policy", "min_success:0.8",
            "--task-timeout", "30", "--retries", "5",
        ])
        assert args.resume is True
        assert args.fail_policy == "min_success:0.8"
        assert args.task_timeout == 30.0
        assert args.retries == 5

    def test_resilience_flag_defaults(self):
        args = build_parser().parse_args(["compare", "--data", "x.csv"])
        assert args.resume is False
        assert args.fail_policy == "fail_fast"
        assert args.task_timeout is None
        assert args.retries == 3

    def test_faults_inactive(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert main(["faults"]) == 0
        out = capsys.readouterr().out
        assert "inactive" in out
        assert "sim" in out and "checkpoint_write" in out

    def test_faults_describe_spec(self, capsys):
        assert main(["faults", "--spec", "sim:0.2,seed=7"]) == 0
        out = capsys.readouterr().out
        assert "seed 7" in out and "20.0%" in out

    def test_faults_env_spec(self, monkeypatch, capsys):
        from repro.resilience.faults import reset_faults

        monkeypatch.setenv("REPRO_FAULTS", "fold:0.5")
        reset_faults()
        assert main(["faults"]) == 0
        assert "fold" in capsys.readouterr().out
        monkeypatch.delenv("REPRO_FAULTS")
        reset_faults()

    def test_bad_fault_spec_is_clean_single_line_error(self, capsys):
        assert main(["faults", "--spec", "warp_core:0.5"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "unknown fault site" in err
        assert len(err.strip().splitlines()) == 1

    def test_bad_fail_policy_is_clean_error(self, dataset_csv, capsys):
        assert main([
            "evaluate", "--data", dataset_csv, "--fail-policy", "bogus",
        ]) == 2
        assert "unknown failure policy" in capsys.readouterr().err

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        from repro import cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "workloads", interrupted)
        assert main(["workloads"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume" in err
        assert len(err.strip().splitlines()) == 1

    def test_multiline_error_collapsed_to_one_line(self, monkeypatch, capsys):
        from repro import cli
        from repro.errors import ReproError

        def failing(args):
            raise ReproError("first line\nsecond line\nthird")

        monkeypatch.setitem(cli._COMMANDS, "workloads", failing)
        assert main(["workloads"]) == 2
        err = capsys.readouterr().err
        assert len(err.strip().splitlines()) == 1
        assert "first line second line third" in err

    def test_cache_info_lists_checkpoint_runs(self, monkeypatch, tmp_path, capsys):
        from repro.resilience import CheckpointStore

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        CheckpointStore().store("demo-run", "unit-a", {"x": 1})
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "demo-run" in out
        assert "1 unit(s)" in out

    def test_cache_clear_removes_checkpoints(self, monkeypatch, tmp_path, capsys):
        from repro.resilience import CheckpointStore

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store = CheckpointStore()
        store.store("demo-run", "unit-a", {"x": 1})
        assert main(["cache", "clear"]) == 0
        assert "checkpoint" in capsys.readouterr().out
        assert store.runs() == {}

    def test_evaluate_json_includes_failed_units_key(self, dataset_csv, capsys):
        import json

        assert main([
            "evaluate", "--data", dataset_csv, "--learner", "ols",
            "--folds", "3", "--format", "json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["failed_units"] == []

    def test_compare_json_envelope(self, dataset_csv, capsys):
        import json

        assert main([
            "compare", "--data", dataset_csv, "--folds", "3",
            "--min-instances", "12", "--format", "json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "compare"
        assert document["format"] == "repro-report"
        assert set(document["ranking"]) == set(document["methods"])
        assert document["failed_units"] == []


class TestConformanceCommands:
    def test_conformance_quick_subset(self, capsys):
        assert main([
            "conformance", "--max-cases", "3", "--skip-metamorphic",
        ]) == 0
        out = capsys.readouterr().out
        assert "conformant" in out
        assert "3 case(s)" in out

    def test_conformance_json_envelope(self, capsys):
        import json

        assert main([
            "conformance", "--max-cases", "2", "--skip-metamorphic",
            "--format", "json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["format"] == "repro-report"
        assert document["kind"] == "conformance"
        assert document["clean"] is True
        assert document["n_cases"] == 2

    def test_fuzz_smoke(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["fuzz", "--iterations", "12", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "0 crash(es)" in out

    def test_fuzz_single_target_json(self, tmp_path, monkeypatch, capsys):
        import json

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main([
            "fuzz", "--target", "csv", "--iterations", "10",
            "--format", "json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "conformance"
        assert document["clean"] is True

"""Tests for k-fold splitting and synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import Dataset, kfold_indices, train_test_split
from repro.datasets.splits import kfold_splits
from repro.datasets.synthetic import (
    PiecewiseRegion,
    constant_dataset,
    figure1_dataset,
    figure1_regions,
    interaction_dataset,
    linear_dataset,
    piecewise_linear_dataset,
    step_dataset,
)
from repro.errors import ConfigError


class TestKFold:
    def test_partition_is_exact(self):
        folds = kfold_indices(103, 10, rng=0)
        combined = np.sort(np.concatenate(folds))
        assert np.array_equal(combined, np.arange(103))

    def test_fold_sizes_balanced(self):
        folds = kfold_indices(103, 10, rng=0)
        sizes = sorted(len(fold) for fold in folds)
        assert sizes[0] >= sizes[-1] - 1

    def test_deterministic_given_seed(self):
        a = kfold_indices(50, 5, rng=7)
        b = kfold_indices(50, 5, rng=7)
        for fa, fb in zip(a, b):
            assert np.array_equal(fa, fb)

    def test_too_few_instances(self):
        with pytest.raises(ConfigError):
            kfold_indices(3, 4)

    def test_too_few_folds(self):
        with pytest.raises(ConfigError):
            kfold_indices(10, 1)

    def test_splits_are_complements(self):
        for train, test in kfold_splits(40, 4, rng=0):
            assert len(np.intersect1d(train, test)) == 0
            assert len(train) + len(test) == 40


class TestTrainTestSplit:
    def _dataset(self, n=20):
        return Dataset(np.arange(n, dtype=float).reshape(-1, 1), np.arange(n, dtype=float), ("a",))

    def test_sizes(self):
        train, test = train_test_split(self._dataset(), 0.25, rng=0)
        assert test.n_instances == 5
        assert train.n_instances == 15

    def test_disjoint_and_complete(self):
        train, test = train_test_split(self._dataset(), 0.3, rng=0)
        union = sorted(list(train.y) + list(test.y))
        assert union == list(range(20))

    def test_invalid_fraction(self):
        with pytest.raises(ConfigError):
            train_test_split(self._dataset(), 1.0)

    def test_extreme_fraction_clamped(self):
        train, test = train_test_split(self._dataset(), 0.001, rng=0)
        assert test.n_instances == 1


class TestSynthetic:
    def test_figure1_regions_cover_unit_cube(self, rng):
        regions = figure1_regions()
        for _ in range(200):
            x = rng.uniform(0, 1, 4)
            assert sum(region.contains(x) for region in regions) == 1

    def test_figure1_dataset_is_noiseless_piecewise(self):
        ds = figure1_dataset(n=200, noise_sd=0.0, rng=0)
        regions = figure1_regions()
        for x, y in zip(ds.X, ds.y):
            region = next(r for r in regions if r.contains(x))
            assert y == pytest.approx(region.value(x))

    def test_figure1_deterministic(self):
        a = figure1_dataset(n=50, rng=5)
        b = figure1_dataset(n=50, rng=5)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.y, b.y)

    def test_linear_dataset_exact_without_noise(self):
        ds = linear_dataset([2.0, -1.0], intercept=0.5, n=100, rng=0)
        expected = 0.5 + ds.X @ np.array([2.0, -1.0])
        assert np.allclose(ds.y, expected)

    def test_step_dataset_levels(self):
        ds = step_dataset(threshold=0.5, low_value=0.0, high_value=2.0, n=300, rng=0)
        low = ds.y[ds.X[:, 0] < 0.5]
        high = ds.y[ds.X[:, 0] >= 0.5]
        assert np.all(low == 0.0)
        assert np.all(high == 2.0)

    def test_interaction_dataset_product(self):
        ds = interaction_dataset(n=100, rng=0)
        assert np.allclose(ds.y, ds.X[:, 0] * ds.X[:, 1])

    def test_constant_dataset_flat(self):
        ds = constant_dataset(value=1.5, n=50)
        assert np.all(ds.y == 1.5)

    def test_uncovered_region_rejected(self, rng):
        region = PiecewiseRegion((0, 0), (0.5, 0.5), 0.0, (1.0, 1.0))
        with pytest.raises(ConfigError):
            piecewise_linear_dataset([region], ("X1", "X2"), 50, rng=rng)

    def test_empty_regions_rejected(self):
        with pytest.raises(ConfigError):
            piecewise_linear_dataset([], ("X1",), 10)

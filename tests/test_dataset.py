"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.datasets import Dataset
from repro.errors import DataError


def small_dataset():
    return Dataset(
        X=[[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]],
        y=[1.0, 2.0, 3.0],
        attributes=("a", "b"),
        meta={"workload": ["x", "x", "y"]},
    )


class TestConstruction:
    def test_shapes(self):
        ds = small_dataset()
        assert ds.n_instances == 3
        assert ds.n_attributes == 2
        assert len(ds) == 3

    def test_mismatched_y_rejected(self):
        with pytest.raises(DataError):
            Dataset([[1.0]], [1.0, 2.0], ("a",))

    def test_wrong_attribute_count_rejected(self):
        with pytest.raises(DataError):
            Dataset([[1.0, 2.0]], [1.0], ("a",))

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(DataError):
            Dataset([[1.0, 2.0]], [1.0], ("a", "a"))

    def test_target_clashing_with_attribute_rejected(self):
        with pytest.raises(DataError):
            Dataset([[1.0]], [1.0], ("CPI",), target_name="CPI")

    def test_nan_rejected(self):
        with pytest.raises(DataError):
            Dataset([[float("nan")]], [1.0], ("a",))

    def test_meta_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            Dataset([[1.0]], [1.0], ("a",), meta={"workload": ["x", "y"]})

    def test_from_rows(self):
        ds = Dataset.from_rows(
            [{"a": 1.0, "CPI": 2.0}, {"a": 3.0, "CPI": 4.0}], ("a",)
        )
        assert ds.y[1] == 4.0

    def test_from_rows_empty_rejected(self):
        with pytest.raises(DataError):
            Dataset.from_rows([], ("a",))


class TestAccess:
    def test_attribute_index(self):
        assert small_dataset().attribute_index("b") == 1

    def test_unknown_attribute(self):
        with pytest.raises(DataError):
            small_dataset().attribute_index("zzz")

    def test_column(self):
        assert list(small_dataset().column("a")) == [1.0, 3.0, 5.0]

    def test_repr_mentions_shape(self):
        assert "n_instances=3" in repr(small_dataset())


class TestTransforms:
    def test_subset_by_indices(self):
        sub = small_dataset().subset([0, 2])
        assert sub.n_instances == 2
        assert list(sub.meta["workload"]) == ["x", "y"]

    def test_subset_by_mask(self):
        ds = small_dataset()
        sub = ds.subset(ds.y > 1.5)
        assert sub.n_instances == 2

    def test_select_attributes(self):
        sub = small_dataset().select_attributes(["b"])
        assert sub.attributes == ("b",)
        assert list(sub.X[:, 0]) == [2.0, 4.0, 6.0]

    def test_with_meta(self):
        ds = small_dataset().with_meta(phase=[0, 1, 1])
        assert "phase" in ds.meta
        assert "workload" in ds.meta

    def test_concat(self):
        ds = small_dataset()
        combined = Dataset.concat([ds, ds])
        assert combined.n_instances == 6
        assert list(combined.meta["workload"]) == ["x", "x", "y"] * 2

    def test_concat_incompatible_attributes(self):
        other = Dataset([[1.0]], [1.0], ("z",))
        with pytest.raises(DataError):
            Dataset.concat([small_dataset(), other])

    def test_concat_incompatible_target(self):
        other = Dataset([[1.0, 2.0]], [1.0], ("a", "b"), target_name="T")
        with pytest.raises(DataError):
            Dataset.concat([small_dataset(), other])

    def test_concat_empty_rejected(self):
        with pytest.raises(DataError):
            Dataset.concat([])

    def test_shuffled_preserves_pairs(self, rng):
        ds = small_dataset()
        shuffled = ds.shuffled(rng)
        # Every (x-row, y) pair must survive the permutation.
        original = {tuple(row) + (target,) for row, target in zip(ds.X, ds.y)}
        permuted = {
            tuple(row) + (target,) for row, target in zip(shuffled.X, shuffled.y)
        }
        assert original == permuted


class TestStats:
    def test_describe_includes_target(self):
        summary = small_dataset().describe()
        assert summary["CPI"]["mean"] == pytest.approx(2.0)
        assert summary["a"]["min"] == 1.0
        assert summary["b"]["max"] == 6.0

    def test_target_sd(self):
        assert small_dataset().target_sd() == pytest.approx(np.std([1, 2, 3]))

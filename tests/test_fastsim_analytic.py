"""The fast engine's vectorized closed forms against the scalar ones.

:mod:`repro.fastsim.analytic` re-derives the scalar expectations of
:mod:`repro.simulator.analytic` as column operations.  The two must
agree exactly wherever they overlap — a silent divergence would move
every fast prediction while the FAST00x gates still pass (the anchors
would absorb a constant shift but not a parameter-dependent one).
"""

import numpy as np
import pytest

from repro.counters.metrics import PREDICTOR_NAMES
from repro.errors import ConfigError
from repro.fastsim import (
    EXTRA_FEATURE_NAMES,
    RESIDUAL_FEATURE_NAMES,
    ParamMatrix,
    analytic_sections,
    branch_mispredict_rate,
    data_miss_rates,
    expected_cpi,
    expected_rate_matrix,
    predictor_matrix,
    residual_features,
)
from repro.simulator import MachineConfig
from repro.simulator.analytic import (
    expected_branch_mispredict_rate,
    expected_data_miss_rates,
    expected_dtlb_walk_rate,
)
from repro.workloads import PhaseParams


def sample_phases():
    return [
        PhaseParams(),
        PhaseParams(hot_fraction=1.0, hot_set_bytes=8 << 10,
                    data_footprint=8 << 10),
        PhaseParams(hot_fraction=0.0, stride_fraction=0.0,
                    data_footprint=32 << 20, hot_set_bytes=4 << 10),
        PhaseParams(hot_fraction=0.0, stride_fraction=1.0,
                    data_footprint=32 << 20, hot_set_bytes=4 << 10),
        PhaseParams(branch_bias=0.85, hard_branch_fraction=0.3,
                    branch_fraction=0.3),
        PhaseParams(load_fraction=0.45, store_fraction=0.25,
                    lcp_fraction=0.2, misalign_fraction=0.1),
    ]


class TestAgainstScalarForms:
    def test_data_miss_rates_match_scalar(self):
        phases = sample_phases()
        config = MachineConfig()
        rates = data_miss_rates(ParamMatrix(phases), config)
        for i, params in enumerate(phases):
            scalar = expected_data_miss_rates(params, config)
            assert rates["l1d"][i] == pytest.approx(scalar["l1d"], abs=1e-12)
            assert rates["l2"][i] == pytest.approx(scalar["l2"], abs=1e-12)

    def test_walk_rate_matches_scalar(self):
        phases = sample_phases()
        config = MachineConfig()
        rates = data_miss_rates(ParamMatrix(phases), config)
        for i, params in enumerate(phases):
            assert rates["walk"][i] == pytest.approx(
                expected_dtlb_walk_rate(params, config), abs=1e-12
            )

    def test_mispredict_rate_matches_scalar(self):
        phases = sample_phases()
        rates = branch_mispredict_rate(ParamMatrix(phases))
        for i, params in enumerate(phases):
            assert rates[i] == pytest.approx(
                expected_branch_mispredict_rate(params), abs=1e-12
            )

    def test_prefetch_toggle_tracks_scalar(self):
        params = PhaseParams(hot_fraction=0.0, stride_fraction=1.0,
                             data_footprint=32 << 20, hot_set_bytes=4 << 10)
        config = MachineConfig(prefetch_next_line=False)
        rates = data_miss_rates(ParamMatrix([params]), config)
        scalar = expected_data_miss_rates(params, config)
        assert rates["l1d"][0] == pytest.approx(scalar["l1d"], abs=1e-12)


class TestRateMatrix:
    def test_every_predictor_present_and_sane(self):
        phases = sample_phases()
        rates = expected_rate_matrix(ParamMatrix(phases))
        for name in PREDICTOR_NAMES:
            column = rates[name]
            assert column.shape == (len(phases),)
            assert np.all(np.isfinite(column))
            assert np.all(column >= 0.0)
            # Per-instruction rates of retired-instruction subsets.
            assert np.all(column <= 1.0 + 1e-9)

    def test_hierarchy_inequalities(self):
        rates = expected_rate_matrix(ParamMatrix(sample_phases()))
        assert np.all(rates["L2M"] <= rates["L1DM"] + 1e-12)
        assert np.all(rates["L2IM"] <= rates["L1IM"] + 1e-12)
        assert np.all(rates["DtlbLdReM"] <= rates["DtlbLdM"] + 1e-12)

    def test_predictor_matrix_column_order(self):
        phases = sample_phases()
        rates = expected_rate_matrix(ParamMatrix(phases))
        matrix = predictor_matrix(rates)
        assert matrix.shape == (len(phases), len(PREDICTOR_NAMES))
        for j, name in enumerate(PREDICTOR_NAMES):
            assert np.array_equal(matrix[:, j], rates[name])


class TestExpectedCpi:
    def test_floor_is_issue_width(self):
        config = MachineConfig()
        pm = ParamMatrix(sample_phases())
        cpi = expected_cpi(pm, expected_rate_matrix(pm, config), config)
        assert np.all(cpi >= 1.0 / config.issue_width - 1e-12)
        assert np.all(np.isfinite(cpi))

    def test_memory_bound_phase_costs_more(self):
        resident = PhaseParams(hot_fraction=1.0, hot_set_bytes=8 << 10,
                               data_footprint=8 << 10)
        thrashing = PhaseParams(hot_fraction=0.0, stride_fraction=0.0,
                                data_footprint=64 << 20,
                                hot_set_bytes=4 << 10)
        pm = ParamMatrix([resident, thrashing])
        cpi = expected_cpi(pm, expected_rate_matrix(pm))
        assert cpi[1] > 2.0 * cpi[0]


class TestFeatures:
    def test_feature_names_and_shape(self):
        phases = sample_phases()
        predictors, cpi, features = analytic_sections(phases)
        assert predictors.shape == (len(phases), len(PREDICTOR_NAMES))
        assert cpi.shape == (len(phases),)
        assert features.shape == (len(phases), len(RESIDUAL_FEATURE_NAMES))
        assert RESIDUAL_FEATURE_NAMES[: len(PREDICTOR_NAMES)] == PREDICTOR_NAMES
        assert RESIDUAL_FEATURE_NAMES[len(PREDICTOR_NAMES):] \
            == EXTRA_FEATURE_NAMES

    def test_byte_sized_features_are_log2(self):
        params = PhaseParams(data_footprint=1 << 20)
        pm = ParamMatrix([params])
        rates = expected_rate_matrix(pm)
        cpi = expected_cpi(pm, rates)
        features = residual_features(pm, rates, cpi)
        column = RESIDUAL_FEATURE_NAMES.index("Logdata_footprint")
        assert features[0, column] == pytest.approx(20.0)

    def test_analytic_cpi_is_a_feature(self):
        phases = sample_phases()
        _, cpi, features = analytic_sections(phases)
        column = RESIDUAL_FEATURE_NAMES.index("AnalyticCPI")
        assert np.array_equal(features[:, column], cpi)

    def test_empty_params_rejected(self):
        with pytest.raises(ConfigError):
            ParamMatrix([])

"""Dataset-family lint rules: one clean and one violating fixture per rule."""

import numpy as np
import pytest

from repro.lint import LintConfig, Table, lint_dataset


def table(columns, y, target_name="CPI"):
    names = tuple(columns)
    X = np.column_stack([np.asarray(v, dtype=float) for v in columns.values()])
    return Table(
        attributes=names,
        X=X,
        y=np.asarray(y, dtype=float),
        target_name=target_name,
    )


@pytest.fixture
def clean_table():
    return table(
        {"a": [0.1, 0.4, 0.2, 0.9], "b": [3.0, 1.0, 7.0, 2.0]},
        [0.7, 1.3, 0.9, 2.1],
    )


class TestCleanData:
    def test_clean_table_lints_clean(self, clean_table):
        report = lint_dataset(clean_table)
        assert report.is_clean, [d.render() for d in report.diagnostics]
        assert report.families == ("dataset",)

    def test_accepts_real_dataset(self, suite_dataset):
        assert lint_dataset(suite_dataset).n_errors == 0


class TestData001NonFinite:
    def test_nan_in_attribute(self):
        t = table({"a": [1.0, float("nan"), 3.0]}, [1.0, 2.0, 3.0])
        found = lint_dataset(t).by_rule("DATA001")
        assert found and found[0].location == "column a"
        assert "rows 1" in found[0].message

    def test_inf_in_target(self):
        t = table({"a": [1.0, 2.0, 3.0]}, [1.0, float("inf"), 3.0])
        found = lint_dataset(t).by_rule("DATA001")
        assert found and found[0].location == "column CPI"


class TestData002ConstantColumn:
    def test_constant_column_flagged(self):
        t = table({"a": [2.0, 2.0, 2.0], "b": [1.0, 2.0, 3.0]},
                  [1.0, 2.0, 3.0])
        found = lint_dataset(t).by_rule("DATA002")
        assert found and found[0].location == "column a"


class TestData003DuplicateColumns:
    def test_identical_columns_flagged(self):
        t = table({"a": [1.0, 2.0, 3.0], "b": [1.0, 2.0, 3.0]},
                  [1.0, 2.0, 3.0])
        found = lint_dataset(t).by_rule("DATA003")
        assert found and "a and b are identical" in found[0].message


class TestData004RatioBounds:
    def test_ratio_above_one(self):
        t = table({"L2M": [0.1, 1.5, 0.2]}, [1.0, 2.0, 3.0])
        found = lint_dataset(t).by_rule("DATA004")
        assert found and "outside [0, 1]" in found[0].message

    def test_negative_ratio(self):
        t = table({"L2M": [0.1, -0.5, 0.2]}, [1.0, 2.0, 3.0])
        assert lint_dataset(t).by_rule("DATA004")

    def test_non_table1_column_ignored(self):
        t = table({"weird": [0.0, 5.0, -3.0]}, [1.0, 2.0, 3.0])
        assert not lint_dataset(t).by_rule("DATA004")


class TestData005Hierarchy:
    def test_l2_exceeding_l1d(self):
        t = table(
            {"L1DM": [0.01, 0.02, 0.03], "L2M": [0.005, 0.05, 0.01]},
            [1.0, 2.0, 3.0],
        )
        found = lint_dataset(t).by_rule("DATA005")
        assert len(found) == 1
        assert found[0].location == "invariant metric-l2-exceeds-l1d"
        assert "rows 1" in found[0].message

    def test_partial_column_set_not_flagged(self):
        # L2M alone cannot express the L2M <= L1DM relation
        t = table({"L2M": [0.9, 0.9, 0.9]}, [1.0, 2.0, 3.0])
        assert not lint_dataset(t).by_rule("DATA005")

    def test_mix_sum_above_one(self):
        t = table(
            {
                "InstLd": [0.5, 0.3], "InstSt": [0.4, 0.2],
                "BrMisPr": [0.2, 0.01], "BrPred": [0.2, 0.1],
                "InstOther": [0.2, 0.3],
            },
            [1.0, 2.0],
        )
        found = lint_dataset(t).by_rule("DATA005")
        locations = [d.location for d in found]
        assert "invariant metric-mix-exceeds-one" in locations


class TestData006TargetPositivity:
    def test_nonpositive_cpi(self):
        t = table({"a": [1.0, 2.0, 3.0]}, [1.0, -0.5, 0.0])
        found = lint_dataset(t).by_rule("DATA006")
        assert found and "rows 1, 2" in found[0].message

    def test_only_applies_to_cpi(self):
        t = table({"a": [1.0, 2.0]}, [-1.0, 1.0], target_name="Y")
        assert not lint_dataset(t).by_rule("DATA006")


class TestData007TargetOutliers:
    def test_extreme_outlier_flagged(self):
        y = [0.8, 0.9, 1.0, 1.1, 1.2, 0.95, 1.05, 1.15, 1e6]
        t = table({"a": list(range(9))}, y)
        found = lint_dataset(t).by_rule("DATA007")
        assert found and "rows 8" in found[0].message

    def test_heavy_tail_tolerated_in_log_space(self):
        # a 6x CPI spread is a legitimate workload contrast, not noise
        y = [0.5, 0.7, 0.9, 1.1, 0.6, 0.8, 1.0, 3.0, 6.5]
        t = table({"a": list(range(9))}, y)
        assert not lint_dataset(t).by_rule("DATA007")

    def test_too_few_rows_skips(self):
        t = table({"a": [1.0, 2.0, 3.0]}, [1.0, 1.0, 100.0])
        assert not lint_dataset(t).by_rule("DATA007")


class TestData008TargetLeakage:
    def test_affine_copy_of_target_flagged(self):
        y = [1.0, 2.0, 3.0, 4.0, 5.0]
        t = table(
            {"a": [2 * v + 1 for v in y], "b": [3.0, 1.0, 4.0, 1.0, 5.0]},
            y,
        )
        found = lint_dataset(t).by_rule("DATA008")
        assert len(found) == 1
        assert found[0].location == "column a"

    def test_threshold_configurable(self):
        y = [1.0, 2.0, 3.0, 4.0, 5.0]
        t = table({"a": [1.1, 1.9, 3.2, 3.8, 5.1]}, y)
        assert not lint_dataset(t).by_rule("DATA008")
        config = LintConfig(leakage_corr=0.9)
        assert lint_dataset(t, config=config).by_rule("DATA008")

"""Certificates: serialization round trips and empirical containment."""

import numpy as np
import pytest

from repro.core.tree import M5Prime
from repro.errors import DataError
from repro.verify import CERTIFICATE_SCHEMA, VerificationCertificate, verify_model


@pytest.fixture(scope="module")
def certified(suite_tree):
    result = verify_model(suite_tree)
    assert result.ok and result.certificate is not None
    return result.certificate


def _uniform_in_domain(model, rows, seed):
    low = np.array([lo for lo, _ in model.feature_ranges_])
    high = np.array([hi for _, hi in model.feature_ranges_])
    generator = np.random.default_rng(seed)
    return generator.uniform(low, high, size=(rows, low.shape[0]))


class TestSerialization:
    def test_json_round_trip_is_exact(self, certified):
        restored = VerificationCertificate.from_json(certified.to_json())
        assert restored == certified

    def test_schema_stamped(self, certified):
        assert certified.to_dict()["schema"] == CERTIFICATE_SCHEMA

    def test_wrong_schema_rejected(self, certified):
        document = certified.to_dict()
        document["schema"] = "repro-verify-cert/999"
        with pytest.raises(DataError):
            VerificationCertificate.from_dict(document)

    def test_malformed_document_rejected(self, certified):
        document = certified.to_dict()
        del document["leaves"]
        with pytest.raises(DataError):
            VerificationCertificate.from_dict(document)
        with pytest.raises(DataError):
            VerificationCertificate.from_json("not json {")

    def test_output_is_hull_of_leaves(self, certified):
        lows = [leaf.output[0] for leaf in certified.leaves]
        highs = [leaf.output[1] for leaf in certified.leaves]
        assert certified.output == (min(lows), max(highs))

    def test_unknown_leaf_lookup_raises(self, certified):
        with pytest.raises(DataError):
            certified.leaf(10_000)


class TestCheckPredictions:
    def test_clean_batch_has_no_violations(self, certified):
        leaf = certified.leaves[0]
        inside = (leaf.output[0] + leaf.output[1]) / 2.0
        violations = certified.check_predictions(
            np.array([leaf.leaf_id]), np.array([inside])
        )
        assert violations == []

    def test_escaped_nan_and_unknown_rows_flagged(self, certified):
        leaf = certified.leaves[0]
        ids = np.array([leaf.leaf_id, leaf.leaf_id, 10_000])
        values = np.array([leaf.output[1] + 1.0, np.nan, 0.0])
        assert certified.check_predictions(ids, values) == [0, 1, 2]

    def test_length_mismatch_raises(self, certified):
        with pytest.raises(DataError):
            certified.check_predictions(np.array([1]), np.array([0.0, 1.0]))


class TestEmpiricalContainment:
    """The acceptance criterion: certified intervals hold on 10k rows."""

    def test_raw_model_predictions_inside_bounds(self, suite_tree, certified):
        X = _uniform_in_domain(suite_tree, 10_000, seed=42)
        violations = certified.check_predictions(
            suite_tree.leaf_ids(X), suite_tree.predict(X)
        )
        assert violations == []

    def test_smoothed_model_predictions_inside_bounds(self, suite_dataset):
        model = M5Prime(min_instances=12, smoothing=True).fit(suite_dataset)
        result = verify_model(model)
        assert result.ok and result.certificate is not None
        assert result.certificate.smoothing_k == model.smoothing_k
        X = _uniform_in_domain(model, 10_000, seed=43)
        violations = result.certificate.check_predictions(
            model.leaf_ids(X), model.predict(X)
        )
        assert violations == []

    def test_whole_model_hull_contains_batch(self, suite_tree, certified):
        X = _uniform_in_domain(suite_tree, 2_000, seed=44)
        predictions = suite_tree.predict(X)
        low, high = certified.output
        assert np.all(predictions >= low) and np.all(predictions <= high)

"""FAST00x harness plumbing: corpus construction and the FAST001 gate.

The full drift run (calibrate the default suite, average oracle
replicas) is CI's ``repro fastsim check`` job; these tests cover the
cheap contracts — the corpus covers every distinct suite phase, stale
calibrations stop the run at FAST001 before any engine leg executes,
and tolerances are what the issue specified.
"""

import pytest

from repro.conformance import FastsimTolerance, corpus_profiles, run_fastsim
from repro.fastsim import phase_key, suite_phases
from repro.workloads import spec_like_suite


class TestCorpus:
    def test_one_single_phase_workload_per_distinct_phase(self):
        corpus = corpus_profiles()
        phases = suite_phases()
        assert len(corpus) == len(phases)
        assert len({p.name for p in corpus}) == len(corpus)
        for profile, params in zip(corpus, phases):
            assert len(profile.schedule.phases) == 1
            assert phase_key(profile.schedule.phases[0]) == phase_key(params)

    def test_covers_every_suite_phase(self):
        corpus_keys = {
            phase_key(p.schedule.phases[0]) for p in corpus_profiles()
        }
        for profile in spec_like_suite():
            for params in profile.schedule.phases:
                assert phase_key(params) in corpus_keys

    def test_explicit_profiles_narrow_the_corpus(self, fast_profiles):
        corpus = corpus_profiles(fast_profiles)
        assert len(corpus) == len(fast_profiles)


class TestTolerance:
    def test_issue_gates(self):
        tolerance = FastsimTolerance()
        assert tolerance.section_p95 == pytest.approx(0.05)
        assert tolerance.workload_mean == pytest.approx(0.04)


class TestStaleCalibrationGate:
    def test_fast001_stops_the_run(self, small_calibration):
        """A stale calibration fails FAST001 and nothing else runs.

        The tiny-profile calibration covers none of the default suite's
        phases, so the harness must refuse it up front instead of
        reporting bogus drift numbers.
        """
        report = run_fastsim(seed=7, calibration=small_calibration)
        assert report.exit_code() != 0
        rule_ids = {d.rule_id for d in report.diagnostics}
        assert rule_ids == {"FAST001"}
        # Early return: only the freshness check was counted, no corpus
        # cases ran.
        assert report.n_checks == 1
        assert report.n_cases == 0

    def test_fast001_names_the_mismatch(self, small_calibration):
        report = run_fastsim(seed=7, calibration=small_calibration)
        messages = " ".join(d.message for d in report.diagnostics)
        assert "uncalibrated" in messages or "fingerprint" in messages

"""Tests for the Table I event/metric catalogue and derivation."""

import pytest

from repro.counters import (
    ALL_EVENTS,
    ALL_METRICS,
    EVENT_BY_NAME,
    METRIC_BY_NAME,
    PREDICTOR_METRICS,
    TARGET_METRIC,
    metric_row,
    metric_vector,
    sections_to_dataset,
    validate_counts,
)
from repro.counters import events as ev
from repro.errors import DataError, MissingEventError


def make_counts(**overrides):
    """A complete, consistent raw-count snapshot for one section."""
    counts = {event.name: 0.0 for event in ALL_EVENTS}
    counts[ev.INST_RETIRED_ANY.name] = 1000.0
    counts[ev.CPU_CLK_UNHALTED_CORE.name] = 800.0
    counts[ev.INST_RETIRED_LOADS.name] = 300.0
    counts[ev.INST_RETIRED_STORES.name] = 100.0
    counts[ev.BR_INST_RETIRED_ANY.name] = 150.0
    counts[ev.BR_INST_RETIRED_MISPRED.name] = 15.0
    counts.update(overrides)
    return counts


class TestCatalogue:
    def test_21_raw_events(self):
        assert len(ALL_EVENTS) == 21

    def test_event_names_unique(self):
        names = [event.name for event in ALL_EVENTS]
        assert len(set(names)) == len(names)

    def test_20_predictors_plus_target(self):
        assert len(PREDICTOR_METRICS) == 20
        assert len(ALL_METRICS) == 21
        assert ALL_METRICS[0] is TARGET_METRIC

    def test_table1_order(self):
        names = [metric.name for metric in PREDICTOR_METRICS]
        assert names[:5] == ["InstLd", "InstSt", "BrMisPr", "BrPred", "InstOther"]
        assert names[-1] == "LCP"

    def test_lookup_maps(self):
        assert EVENT_BY_NAME["L1I_MISSES"].name == "L1I_MISSES"
        assert METRIC_BY_NAME["CPI"] is TARGET_METRIC

    def test_every_metric_has_formula(self):
        for metric in ALL_METRICS:
            assert metric.formula
            assert metric.description

    def test_str_forms(self):
        assert str(ev.L1I_MISSES) == "L1I_MISSES"
        assert "L2M = " in str(METRIC_BY_NAME["L2M"])


class TestFormulas:
    def test_cpi(self):
        counts = make_counts()
        assert TARGET_METRIC.compute(counts) == pytest.approx(0.8)

    def test_simple_ratio(self):
        counts = make_counts(**{ev.L1I_MISSES.name: 20.0})
        assert METRIC_BY_NAME["L1IM"].compute(counts) == pytest.approx(0.02)

    def test_br_pred_subtracts_mispredicts(self):
        counts = make_counts()
        assert METRIC_BY_NAME["BrPred"].compute(counts) == pytest.approx(0.135)

    def test_inst_other_complement(self):
        counts = make_counts()
        # 1000 - (300 + 100 + 150) = 450
        assert METRIC_BY_NAME["InstOther"].compute(counts) == pytest.approx(0.45)

    def test_mix_metrics_sum_to_one(self):
        counts = make_counts()
        mix = sum(
            METRIC_BY_NAME[name].compute(counts)
            for name in ("InstLd", "InstSt", "BrPred", "BrMisPr", "InstOther")
        )
        assert mix == pytest.approx(1.0)


class TestValidation:
    def test_missing_event_names_the_event(self):
        counts = make_counts()
        del counts[ev.ILD_STALL.name]
        with pytest.raises(MissingEventError) as excinfo:
            validate_counts(counts)
        assert excinfo.value.event_name == ev.ILD_STALL.name

    def test_negative_count_rejected(self):
        counts = make_counts(**{ev.L1I_MISSES.name: -1.0})
        with pytest.raises(DataError):
            validate_counts(counts)

    def test_zero_instructions_rejected(self):
        counts = make_counts(**{ev.INST_RETIRED_ANY.name: 0.0})
        with pytest.raises(DataError):
            validate_counts(counts)


class TestDerivation:
    def test_vector_in_table_order(self):
        counts = make_counts(**{ev.INST_RETIRED_LOADS.name: 500.0})
        vector = metric_vector(counts)
        assert vector.shape == (20,)
        assert vector[0] == pytest.approx(0.5)  # InstLd first

    def test_row_contains_target(self):
        row = metric_row(make_counts())
        assert row["CPI"] == pytest.approx(0.8)
        assert len(row) == 21

    def test_sections_to_dataset(self):
        sections = [
            make_counts(),
            make_counts(**{ev.CPU_CLK_UNHALTED_CORE.name: 1600.0}),
        ]
        dataset = sections_to_dataset(sections, workloads=["a", "b"])
        assert dataset.n_instances == 2
        assert dataset.y[1] == pytest.approx(1.6)
        assert list(dataset.meta["workload"]) == ["a", "b"]

    def test_sections_to_dataset_empty_rejected(self):
        with pytest.raises(DataError):
            sections_to_dataset([])

    def test_sections_to_dataset_label_mismatch(self):
        with pytest.raises(DataError):
            sections_to_dataset([make_counts()], workloads=["a", "b"])
